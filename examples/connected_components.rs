//! Connected components — an extension beyond the paper's three
//! primitives showing that the SCU's five operations cover other
//! frontier algorithms unchanged: min-label propagation has exactly
//! the expansion/contraction + compaction structure of BFS.
//!
//! ```text
//! cargo run --release --example connected_components
//! ```

use scu::algos::cc;
use scu::algos::runner::{run, Algorithm, Mode};
use scu::algos::SystemKind;
use scu::graph::{Dataset, GraphBuilder};

fn main() {
    // A road network plus a few disconnected islands.
    let road = Dataset::Ca.build(1.0 / 64.0, 11);
    let n = road.num_nodes();
    let mut b = GraphBuilder::new(n + 30);
    for (s, d, w) in road.iter_edges() {
        b.add_edge(s, d, w);
    }
    for island in 0..10u32 {
        let base = n as u32 + island * 3;
        b.add_undirected(base, base + 1, 1);
        b.add_undirected(base + 1, base + 2, 1);
    }
    let g = b.build();
    println!(
        "graph: {} nodes, {} edges (road network + 10 islands)",
        g.num_nodes(),
        g.num_edges()
    );

    let base = run(Algorithm::Cc, &g, SystemKind::Tx1, Mode::GpuBaseline);
    let enh = run(Algorithm::Cc, &g, SystemKind::Tx1, Mode::ScuEnhanced);
    assert_eq!(base.values, enh.values);

    let labels: Vec<u32> = base.values.iter().map(|&x| x as u32).collect();
    let components = cc::reference::count_components(&labels);
    println!(
        "found {components} components in {} label-propagation rounds",
        base.report.iterations
    );

    println!(
        "baseline GPU : {:>9.1} us  ({:.0}% stream compaction)",
        base.report.total_time_ns() / 1000.0,
        base.report.compaction_fraction() * 100.0
    );
    println!(
        "GPU + SCU    : {:>9.1} us  (speedup {:.2}x, energy {:.2}x, filter dropped {:.0}% of insertions)",
        enh.report.total_time_ns() / 1000.0,
        enh.report.speedup_vs(&base.report),
        enh.report.energy_reduction_vs(&base.report),
        enh.report.scu.filter.drop_rate() * 100.0
    );
    println!(
        "\nthe same five SCU operations that serve BFS/SSSP/PR handled CC without change —\n\
         the unit is programmable, not algorithm-specific (paper section 3.1)."
    );
}

//! Road-network routing: SSSP over the `ca` (California road network)
//! class with the near-far worklist, comparing all four machine
//! variants and showing where the enhanced SCU's unique-best-cost
//! filtering and destination-line grouping help.
//!
//! ```text
//! cargo run --release --example sssp_roadmap
//! ```

use scu::algos::runner::{run, Algorithm, Mode};
use scu::algos::SystemKind;
use scu::graph::Dataset;

fn main() {
    let graph = Dataset::Ca.build(1.0 / 32.0, 7);
    println!(
        "road network: {} junctions, {} road segments",
        graph.num_nodes(),
        graph.num_edges()
    );

    let base = run(Algorithm::Sssp, &graph, SystemKind::Tx1, Mode::GpuBaseline);
    println!(
        "\nshortest paths from junction 0 computed in {} near/far rounds",
        base.report.iterations
    );
    let reachable: Vec<u64> = base
        .values
        .iter()
        .copied()
        .filter(|&d| d != u32::MAX as u64)
        .collect();
    println!(
        "reachable junctions: {} (max cost {}, mean cost {:.1})",
        reachable.len(),
        reachable.iter().max().unwrap(),
        reachable.iter().sum::<u64>() as f64 / reachable.len() as f64
    );

    println!(
        "\n{:<16} {:>12} {:>9} {:>10} {:>12}",
        "machine", "time (us)", "speedup", "energy(x)", "GPU insts"
    );
    for mode in [
        Mode::GpuBaseline,
        Mode::ScuBasic,
        Mode::ScuFilteringOnly,
        Mode::ScuEnhanced,
    ] {
        let out = run(Algorithm::Sssp, &graph, SystemKind::Tx1, mode);
        assert_eq!(out.values, base.values, "all machines must agree");
        println!(
            "{:<16} {:>12.1} {:>8.2}x {:>9.2}x {:>12}",
            mode.to_string(),
            out.report.total_time_ns() / 1000.0,
            out.report.speedup_vs(&base.report),
            out.report.energy_reduction_vs(&base.report),
            out.report.gpu_thread_insts(),
        );
    }

    let enh = run(Algorithm::Sssp, &graph, SystemKind::Tx1, Mode::ScuEnhanced);
    println!(
        "\nenhanced SCU: filter dropped {:.0}% of relaxations; grouping built {} groups (mean size {:.1})",
        enh.report.scu.filter.drop_rate() * 100.0,
        enh.report.scu.group.groups,
        enh.report.scu.group.mean_group_size()
    );
}

//! Driving the SCU device directly: a design-space walk over the two
//! scalability knobs of §5.1 — pipeline width (RTL parameter) and
//! filtering hash size (runtime parameter) — using the raw compaction
//! API rather than the full graph algorithms.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use scu::graph::Dataset;
use scu::mem::buffer::{DeviceAllocator, DeviceArray};
use scu::mem::system::{MemorySystem, MemorySystemConfig};
use scu::unit::{FilterHash, FilterMode, ScuConfig, ScuDevice};

fn main() {
    // Workload: expand one synthetic BFS frontier of the kron graph.
    let graph = Dataset::Kron.build(1.0 / 64.0, 42);
    let mut alloc = DeviceAllocator::new();
    let edges = DeviceArray::from_vec(&mut alloc, graph.edges().to_vec());

    // Frontier = the 1024 highest-degree nodes (a realistic hot
    // frontier with many duplicate destinations).
    let mut by_degree: Vec<u32> = (0..graph.num_nodes() as u32).collect();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(graph.degree(v)));
    let frontier: Vec<u32> = by_degree.into_iter().take(1024).collect();
    let indexes = DeviceArray::from_vec(
        &mut alloc,
        frontier
            .iter()
            .map(|&v| graph.row_offsets()[v as usize])
            .collect(),
    );
    let counts = DeviceArray::from_vec(
        &mut alloc,
        frontier.iter().map(|&v| graph.degree(v)).collect(),
    );
    let total: usize = frontier.iter().map(|&v| graph.degree(v) as usize).sum();
    println!(
        "frontier of {} nodes expands to {total} edges\n",
        frontier.len()
    );

    // --- Knob 1: pipeline width. ---
    println!(
        "{:<16} {:>12} {:>14}",
        "pipeline width", "op time (us)", "elements/cycle"
    );
    for width in [1u32, 2, 4, 8] {
        let mut cfg = ScuConfig::tx1();
        cfg.pipeline_width = width;
        let mut scu = ScuDevice::new(cfg);
        let mut mem = MemorySystem::new(MemorySystemConfig::tx1());
        let mut dst: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, total);
        let op = scu.access_expansion_compaction(
            &mut mem,
            &edges,
            &indexes,
            &counts,
            frontier.len(),
            None,
            None,
            &mut dst,
        );
        println!(
            "{width:<16} {:>12.1} {:>14.2}",
            op.time_ns / 1000.0,
            op.data_elements as f64 / op.scu_cycles as f64
        );
    }

    // --- Knob 2: filtering hash size. ---
    println!(
        "\n{:<16} {:>12} {:>12}",
        "hash size (KB)", "dropped", "drop rate"
    );
    for kb in [8u64, 33, 132, 528] {
        let mut cfg = ScuConfig::tx1();
        cfg.filter_bfs_hash.size_bytes = kb * 1024;
        let mut scu = ScuDevice::new(cfg.clone());
        let mut mem = MemorySystem::new(MemorySystemConfig::tx1());
        let mut hash = FilterHash::new(&mut alloc, cfg.filter_bfs_hash);
        let mut flags: DeviceArray<u8> = DeviceArray::zeroed(&mut alloc, total);
        scu.filter_pass_expansion(
            &mut mem,
            &edges,
            None,
            &indexes,
            &counts,
            frontier.len(),
            None,
            FilterMode::Unique,
            &mut hash,
            &mut flags,
        );
        let s = hash.stats();
        println!(
            "{kb:<16} {:>12} {:>11.1}%",
            s.dropped,
            s.drop_rate() * 100.0
        );
    }
    println!("\nlarger tables catch more duplicates; the paper sizes them to the L2 (Table 2).");
}

//! Social-network BFS: traverse a scale-free graph level by level on
//! both platforms and watch the duplicate problem the SCU's filtering
//! solves — hub-heavy graphs generate edge frontiers several times
//! larger than the set of distinct nodes they reach.
//!
//! ```text
//! cargo run --release --example bfs_traversal
//! ```

use scu::algos::bfs;
use scu::algos::runner::{run, Algorithm, Mode};
use scu::algos::SystemKind;
use scu::graph::Dataset;

fn main() {
    let graph = Dataset::Kron.build(1.0 / 32.0, 42);
    println!(
        "scale-free network: {} nodes, {} edges, max degree {}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.max_degree()
    );

    // Level populations from the reference BFS.
    let dist = bfs::reference::distances(&graph, 0);
    let max_level = dist
        .iter()
        .copied()
        .filter(|&d| d != u32::MAX)
        .max()
        .unwrap_or(0);
    println!("\nlevel populations (reference BFS from node 0):");
    for level in 0..=max_level {
        let count = dist.iter().filter(|&&d| d == level).count();
        // The edge frontier feeding this level is the out-degree sum of
        // the previous level — the duplicate-rich stream the SCU filters.
        let expanded: usize = dist
            .iter()
            .enumerate()
            .filter(|(_, &d)| d + 1 == level.max(1) && level > 0)
            .map(|(v, _)| graph.degree(v as u32) as usize)
            .sum();
        println!(
            "  level {level}: {count:>6} nodes{}",
            if level > 0 {
                format!(
                    "  (edge frontier into it: {expanded:>8} - {:>4.1}x duplicates+visited)",
                    expanded as f64 / count.max(1) as f64
                )
            } else {
                String::new()
            }
        );
    }

    println!("\nend-to-end traversal on both platforms:");
    for kind in [SystemKind::Gtx980, SystemKind::Tx1] {
        let base = run(Algorithm::Bfs, &graph, kind, Mode::GpuBaseline);
        let enh = run(Algorithm::Bfs, &graph, kind, Mode::ScuEnhanced);
        assert_eq!(base.values, enh.values);
        println!(
            "  {kind:<7}: {:>9.1} us -> {:>9.1} us  (speedup {:.2}x, energy {:.2}x, filter dropped {:.0}%)",
            base.report.total_time_ns() / 1000.0,
            enh.report.total_time_ns() / 1000.0,
            enh.report.speedup_vs(&base.report),
            enh.report.energy_reduction_vs(&base.report),
            enh.report.scu.filter.drop_rate() * 100.0,
        );
    }
}

//! Quickstart: build a graph, run BFS on the simulated TX1 with and
//! without the SCU, and print what the unit buys you.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use scu::algos::runner::{run, Algorithm, Mode};
use scu::algos::SystemKind;
use scu::graph::Dataset;

fn main() {
    // A 1/64-scale Graph500 Kronecker graph (the paper's `kron`).
    let graph = Dataset::Kron.build(1.0 / 64.0, 42);
    println!(
        "graph: {} nodes, {} edges (avg degree {:.1})",
        graph.num_nodes(),
        graph.num_edges(),
        graph.avg_degree()
    );

    // Baseline: the GPU does its own stream compaction.
    let base = run(Algorithm::Bfs, &graph, SystemKind::Tx1, Mode::GpuBaseline);
    // Enhanced SCU: compaction offloaded, duplicates filtered in
    // hardware (Algorithm 4 of the paper).
    let scu = run(Algorithm::Bfs, &graph, SystemKind::Tx1, Mode::ScuEnhanced);

    // Same answers on both machines.
    assert_eq!(base.values, scu.values);

    let reached = base
        .values
        .iter()
        .filter(|&&d| d != u32::MAX as u64)
        .count();
    println!(
        "BFS from node 0 reaches {reached} nodes in {} iterations",
        base.report.iterations
    );

    println!(
        "baseline GPU : {:>10.1} us  ({:.0}% of it in stream compaction)",
        base.report.total_time_ns() / 1000.0,
        base.report.compaction_fraction() * 100.0
    );
    println!(
        "GPU + SCU    : {:>10.1} us  ({:.0}% of it in the SCU)",
        scu.report.total_time_ns() / 1000.0,
        scu.report.scu.time_ns / scu.report.total_time_ns() * 100.0
    );
    println!(
        "speedup {:.2}x, energy reduction {:.2}x, GPU instructions cut to {:.0}%",
        scu.report.speedup_vs(&base.report),
        scu.report.energy_reduction_vs(&base.report),
        scu.report.gpu_thread_insts() as f64 / base.report.gpu_thread_insts() as f64 * 100.0
    );
    println!(
        "the SCU's filter dropped {} duplicate/visited elements ({:.0}% of its input)",
        scu.report.scu.filter.dropped,
        scu.report.scu.filter.drop_rate() * 100.0
    );
}

//! k-core decomposition — the extension primitive built around the
//! SCU's *Bitmask Constructor*: every peeling round is one hardware
//! compare of the support vector against k, one compaction of the
//! falling nodes, and one expansion of their edges.
//!
//! ```text
//! cargo run --release --example kcore_peeling
//! ```

use scu::algos::runner::{run, Algorithm, Mode};
use scu::algos::SystemKind;
use scu::graph::Dataset;

fn main() {
    let graph = Dataset::Kron.build(1.0 / 32.0, 21);
    println!(
        "scale-free network: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    let base = run(Algorithm::KCore, &graph, SystemKind::Tx1, Mode::GpuBaseline);
    let scu = run(Algorithm::KCore, &graph, SystemKind::Tx1, Mode::ScuBasic);
    assert_eq!(base.values, scu.values);

    // Coreness histogram.
    let max_core = *base.values.iter().max().unwrap();
    println!("\ncoreness distribution (max core = {max_core}):");
    for k in 0..=max_core.min(12) {
        let count = base.values.iter().filter(|&&c| c == k).count();
        if count > 0 {
            println!("  core {k:>3}: {count:>6} nodes");
        }
    }
    if max_core > 12 {
        let count = base.values.iter().filter(|&&c| c > 12).count();
        println!("  core >12: {count:>6} nodes");
    }

    println!(
        "\npeeled in {} rounds; baseline {:.1} us ({:.0}% compaction) -> SCU {:.1} us (speedup {:.2}x)",
        base.report.iterations,
        base.report.total_time_ns() / 1000.0,
        base.report.compaction_fraction() * 100.0,
        scu.report.total_time_ns() / 1000.0,
        scu.report.speedup_vs(&base.report),
    );
    println!(
        "the SCU ran {} operations; every round used the Bitmask Constructor's\n\
         compare-against-k (paper Figure 6, first operation).",
        scu.report.scu.ops
    );
}

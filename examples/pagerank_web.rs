//! PageRank over a scale-free collaboration network on both simulated
//! platforms — the case where the SCU helps least (§4.6: every node is
//! active every iteration, so filtering/grouping don't apply).
//!
//! ```text
//! cargo run --release --example pagerank_web
//! ```

use scu::algos::runner::{run, Algorithm, Mode};
use scu::algos::SystemKind;
use scu::graph::Dataset;

fn main() {
    let graph = Dataset::Cond.build(1.0 / 4.0, 3);
    println!(
        "collaboration network: {} authors, {} links",
        graph.num_nodes(),
        graph.num_edges()
    );

    let base = run(
        Algorithm::PageRank,
        &graph,
        SystemKind::Tx1,
        Mode::GpuBaseline,
    );

    // Top-5 ranked nodes (ranks were quantised to 1e-9 by the runner).
    let mut ranked: Vec<(usize, u64)> = base.values.iter().copied().enumerate().collect();
    ranked.sort_by_key(|&(_, r)| std::cmp::Reverse(r));
    println!(
        "\ntop-5 authors by rank (converged in {} iterations):",
        base.report.iterations
    );
    for (node, rank) in ranked.iter().take(5) {
        println!(
            "  node {node:>6}  rank {:.4}  degree {}",
            *rank as f64 / 1e9,
            graph.degree(*node as u32)
        );
    }

    println!("\nSCU offload of the expansion phase (Algorithm 3):");
    for kind in [SystemKind::Gtx980, SystemKind::Tx1] {
        let b = run(Algorithm::PageRank, &graph, kind, Mode::GpuBaseline);
        let s = run(Algorithm::PageRank, &graph, kind, Mode::ScuBasic);
        assert_eq!(b.values, s.values);
        println!(
            "  {kind:<7}: speedup {:.2}x, energy reduction {:.2}x  \
             (paper: ~1.05x on TX1, small slowdown on GTX980 - PR gains least)",
            s.report.speedup_vs(&b.report),
            s.report.energy_reduction_vs(&b.report),
        );
    }
}

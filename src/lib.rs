//! # scu — facade crate for the SCU reproduction workspace
//!
//! Re-exports every sub-crate of the reproduction of *SCU: A GPU Stream
//! Compaction Unit for Graph Processing* (ISCA 2019) under one roof, so
//! examples and downstream users can depend on a single crate.
//!
//! See the README for the architecture overview and `DESIGN.md` for the
//! paper-to-module mapping.

pub use scu_algos as algos;
pub use scu_bench as bench;
pub use scu_core as unit;
pub use scu_energy as energy;
pub use scu_gpu as gpu;
pub use scu_graph as graph;
pub use scu_harness as harness;
pub use scu_mem as mem;
pub use scu_store as store;

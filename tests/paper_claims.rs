//! Qualitative paper claims that must hold in the reproduction —
//! the *shape* checks of `EXPERIMENTS.md`, asserted at test scale.
//! Absolute factors are checked loosely; signs and orderings strictly.

use scu::algos::runner::{run_with, Algorithm, Mode};
use scu::algos::SystemKind;
use scu::energy::area::{gpu_area, ScuAreaModel};
use scu::graph::Dataset;

fn bench(algo: Algorithm, d: Dataset, kind: SystemKind, mode: Mode) -> scu::algos::RunReport {
    let g = d.build(1.0 / 64.0, 42);
    run_with(algo, &g, kind, mode, 3).report
}

#[test]
fn claim_fig1_compaction_is_a_major_time_share() {
    // Paper: 25-55% of baseline time in stream compaction.
    for kind in SystemKind::ALL {
        for algo in [Algorithm::Bfs, Algorithm::Sssp] {
            let r = bench(algo, Dataset::Kron, kind, Mode::GpuBaseline);
            let f = r.compaction_fraction();
            assert!((0.2..0.85).contains(&f), "{algo} {kind}: fraction {f}");
        }
    }
}

#[test]
fn claim_enhanced_scu_speeds_up_bfs_and_sssp_on_tx1() {
    for algo in [Algorithm::Bfs, Algorithm::Sssp] {
        let base = bench(algo, Dataset::Kron, SystemKind::Tx1, Mode::GpuBaseline);
        let enh = bench(algo, Dataset::Kron, SystemKind::Tx1, Mode::ScuEnhanced);
        let sp = enh.speedup_vs(&base);
        assert!(sp > 1.2, "{algo}: TX1 speedup {sp}");
    }
}

#[test]
fn claim_tx1_gains_exceed_gtx980_gains() {
    // Paper: 2.32x average on TX1 vs 1.37x on GTX980.
    let algo = Algorithm::Bfs;
    let tx1 = {
        let b = bench(algo, Dataset::Kron, SystemKind::Tx1, Mode::GpuBaseline);
        bench(algo, Dataset::Kron, SystemKind::Tx1, Mode::ScuEnhanced).speedup_vs(&b)
    };
    let gtx = {
        let b = bench(algo, Dataset::Kron, SystemKind::Gtx980, Mode::GpuBaseline);
        bench(algo, Dataset::Kron, SystemKind::Gtx980, Mode::ScuEnhanced).speedup_vs(&b)
    };
    assert!(tx1 > gtx, "TX1 {tx1} should beat GTX980 {gtx}");
}

#[test]
fn claim_pagerank_benefits_least() {
    // Paper: PR ~1.05x on TX1, small slowdown on GTX980 — in any case
    // far below the BFS gain.
    let pr = {
        let b = bench(
            Algorithm::PageRank,
            Dataset::Kron,
            SystemKind::Tx1,
            Mode::GpuBaseline,
        );
        bench(
            Algorithm::PageRank,
            Dataset::Kron,
            SystemKind::Tx1,
            Mode::ScuBasic,
        )
        .speedup_vs(&b)
    };
    let bfs = {
        let b = bench(
            Algorithm::Bfs,
            Dataset::Kron,
            SystemKind::Tx1,
            Mode::GpuBaseline,
        );
        bench(
            Algorithm::Bfs,
            Dataset::Kron,
            SystemKind::Tx1,
            Mode::ScuEnhanced,
        )
        .speedup_vs(&b)
    };
    assert!((0.5..1.6).contains(&pr), "PR speedup {pr} should be near 1");
    assert!(bfs > pr, "BFS {bfs} must beat PR {pr}");
}

#[test]
fn claim_filtering_slashes_gpu_workload() {
    // Paper: GPU instructions cut by >70% for BFS and SSSP.
    for algo in [Algorithm::Bfs, Algorithm::Sssp] {
        let base = bench(algo, Dataset::Kron, SystemKind::Tx1, Mode::GpuBaseline);
        let enh = bench(algo, Dataset::Kron, SystemKind::Tx1, Mode::ScuEnhanced);
        let ratio = enh.gpu_thread_insts() as f64 / base.gpu_thread_insts() as f64;
        assert!(ratio < 0.3, "{algo}: instruction ratio {ratio}");
    }
}

#[test]
fn claim_enhanced_scu_saves_energy() {
    // Paper: 84.7% / 69% savings on average; we require substantial
    // savings on the duplicate-rich dataset.
    for kind in SystemKind::ALL {
        let base = bench(Algorithm::Bfs, Dataset::Kron, kind, Mode::GpuBaseline);
        let enh = bench(Algorithm::Bfs, Dataset::Kron, kind, Mode::ScuEnhanced);
        let er = enh.energy_reduction_vs(&base);
        assert!(er > 2.0, "{kind}: energy reduction {er}");
    }
}

#[test]
fn claim_grouping_improves_coalescing_over_filtering_only() {
    // Paper Figure 12: +27% coalescing on SSSP/TX1.
    let fo = bench(
        Algorithm::Sssp,
        Dataset::Kron,
        SystemKind::Tx1,
        Mode::ScuFilteringOnly,
    );
    let enh = bench(
        Algorithm::Sssp,
        Dataset::Kron,
        SystemKind::Tx1,
        Mode::ScuEnhanced,
    );
    assert!(
        enh.gpu_coalescing() < fo.gpu_coalescing(),
        "grouped {} vs filtering-only {}",
        enh.gpu_coalescing(),
        fo.gpu_coalescing()
    );
}

#[test]
fn claim_basic_scu_gives_modest_gains() {
    // Figure 11's characterisation: the basic SCU alone is worth
    // roughly 1.5x speedup and 2x energy; the enhanced features carry
    // the rest. We check basic lands between break-even and the
    // enhanced result on energy.
    for algo in [Algorithm::Bfs, Algorithm::Sssp] {
        let base = bench(algo, Dataset::Kron, SystemKind::Tx1, Mode::GpuBaseline);
        let basic = bench(algo, Dataset::Kron, SystemKind::Tx1, Mode::ScuBasic);
        let enh = bench(algo, Dataset::Kron, SystemKind::Tx1, Mode::ScuEnhanced);
        let basic_er = basic.energy_reduction_vs(&base);
        let enh_er = enh.energy_reduction_vs(&base);
        assert!(basic_er > 1.0, "{algo}: basic energy reduction {basic_er}");
        assert!(
            enh_er > basic_er,
            "{algo}: enhanced {enh_er} vs basic {basic_er}"
        );
    }
}

#[test]
fn claim_area_overhead_is_small() {
    // Paper §6.4: 13.27 mm2 (3.3%) and 3.65 mm2 (4.1%).
    let m = ScuAreaModel::default();
    assert!((m.area_mm2(4) - 13.27).abs() < 0.05);
    assert!((m.area_mm2(1) - 3.65).abs() < 0.05);
    assert!(m.overhead(4, gpu_area::GTX980_MM2) < 0.05);
    assert!(m.overhead(1, gpu_area::TX1_MM2) < 0.06);
}

#[test]
fn claim_bandwidth_utilisation_below_peak() {
    // Paper Figure 13: graph applications fall short of saturating
    // memory bandwidth.
    for kind in SystemKind::ALL {
        let r = bench(Algorithm::Bfs, Dataset::Kron, kind, Mode::GpuBaseline);
        let u = r.bandwidth_utilization();
        assert!(u < 1.0, "{kind}: utilization {u}");
        assert!(u > 0.0);
    }
}

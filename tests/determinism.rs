//! The whole stack is deterministic: identical inputs produce
//! identical answers *and* identical measurements, which is what makes
//! the figure reproductions stable.

use scu::algos::runner::{run, Algorithm, Mode};
use scu::algos::SystemKind;
use scu::graph::Dataset;

#[test]
fn identical_runs_produce_identical_reports() {
    let g = Dataset::Kron.build(1.0 / 256.0, 13);
    for mode in [Mode::GpuBaseline, Mode::ScuEnhanced] {
        let a = run(Algorithm::Bfs, &g, SystemKind::Tx1, mode);
        let b = run(Algorithm::Bfs, &g, SystemKind::Tx1, mode);
        assert_eq!(a.values, b.values);
        assert_eq!(a.report.total_time_ns(), b.report.total_time_ns(), "{mode}");
        assert_eq!(a.report.gpu_thread_insts(), b.report.gpu_thread_insts());
        assert_eq!(a.report.dram_bytes(), b.report.dram_bytes());
        assert_eq!(a.report.energy.total_pj(), b.report.energy.total_pj());
    }
}

#[test]
fn generator_determinism_flows_through_measurement() {
    let a = Dataset::Cond.build(1.0 / 256.0, 21);
    let b = Dataset::Cond.build(1.0 / 256.0, 21);
    assert_eq!(a, b);
    let ra = run(Algorithm::Sssp, &a, SystemKind::Gtx980, Mode::ScuEnhanced);
    let rb = run(Algorithm::Sssp, &b, SystemKind::Gtx980, Mode::ScuEnhanced);
    assert_eq!(ra.report.scu.filter.dropped, rb.report.scu.filter.dropped);
    assert_eq!(ra.report.iterations, rb.report.iterations);
}

#[test]
fn different_seeds_differ() {
    let a = Dataset::Cond.build(1.0 / 256.0, 1);
    let b = Dataset::Cond.build(1.0 / 256.0, 2);
    assert_ne!(a, b, "seeds must matter");
}

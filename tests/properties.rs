//! Property-based tests over cross-crate invariants: the SCU's
//! compaction operations against independent functional specifications,
//! filtering soundness, grouping permutations, and full-algorithm
//! agreement on random graphs.

use proptest::prelude::*;

use scu::algos::{bfs, cc, kcore, sssp, System, SystemKind};
use scu::graph::GraphBuilder;
use scu::mem::buffer::{DeviceAllocator, DeviceArray};
use scu::mem::cache::{AccessKind, Cache, CacheConfig};
use scu::mem::line::LineSize;
use scu::mem::system::{MemorySystem, MemorySystemConfig};
use scu::unit::cyclesim::{CycleSim, StreamWorkload};
use scu::unit::{CompareOp, FilterHash, FilterMode, GroupHash, ScuConfig, ScuDevice};

/// Reference LRU cache: per-set MRU-ordered lists of `(tag, dirty)`.
///
/// The production [`Cache`] stores all ways in one flat slice and picks
/// victims with a single timestamp scan; this model is the obviously
/// correct formulation (move-to-front on hit, pop-back on overflow)
/// that the flat layout must match access for access.
struct ModelLru {
    line: LineSize,
    sets: Vec<Vec<(u64, bool)>>,
    assoc: usize,
}

impl ModelLru {
    fn new(cfg: CacheConfig) -> Self {
        ModelLru {
            line: cfg.line_size,
            sets: vec![Vec::new(); cfg.num_sets() as usize],
            assoc: cfg.associativity as usize,
        }
    }

    /// Returns `(hit, dirty_eviction)`.
    fn access(&mut self, addr: u64, write: bool) -> (bool, bool) {
        let lines = self.line.index_of(addr);
        let num_sets = self.sets.len() as u64;
        let set = &mut self.sets[(lines % num_sets) as usize];
        let tag = lines / num_sets;
        if let Some(i) = set.iter().position(|&(t, _)| t == tag) {
            let (t, d) = set.remove(i);
            set.insert(0, (t, d || write));
            return (true, false);
        }
        let mut dirty_eviction = false;
        if set.len() == self.assoc {
            let (_, d) = set.pop().expect("full set is non-empty");
            dirty_eviction = d;
        }
        set.insert(0, (tag, write));
        (false, dirty_eviction)
    }

    fn resident(&self, addr: u64) -> bool {
        let lines = self.line.index_of(addr);
        let set = &self.sets[(lines % self.sets.len() as u64) as usize];
        let tag = lines / self.sets.len() as u64;
        set.iter().any(|&(t, _)| t == tag)
    }
}

fn fresh() -> (ScuDevice, MemorySystem, DeviceAllocator) {
    (
        ScuDevice::new(ScuConfig::tx1()),
        MemorySystem::new(MemorySystemConfig::tx1()),
        DeviceAllocator::new(),
    )
}

/// The `SimThreads` knob is byte-invisible: every algorithm × device
/// config produces an identical serialised [`scu::algos::CellResult`]
/// (answer fingerprint, full report, phase rows) and an identical
/// timeline digest at 1, 2 and 4 timing lanes. This is the contract
/// that keeps the knob out of the content-addressed cache key.
///
/// Not a proptest: the matrix is exact (5 algorithms × 3 configs × 3
/// thread counts) and the assertion is equality of serialised bytes.
#[test]
fn sim_threads_knob_is_byte_invisible() {
    use scu::algos::runner::{Algorithm, Mode};
    use scu::algos::{Cell, SimThreads};
    use scu::bench::ExperimentConfig;
    use scu::graph::Dataset;

    let mut cfg = ExperimentConfig::from_env();
    cfg.scale = 1.0 / 256.0;
    // GTX980 exercises 16-way lanes; TX1 caps the fan-out at its 2 SMs.
    let combos = [
        (SystemKind::Tx1, Mode::GpuBaseline),
        (SystemKind::Tx1, Mode::ScuEnhanced),
        (SystemKind::Gtx980, Mode::ScuEnhanced),
    ];
    let algos = [
        Algorithm::Bfs,
        Algorithm::Sssp,
        Algorithm::PageRank,
        Algorithm::Cc,
        Algorithm::KCore,
    ];

    let run_matrix = |threads: usize| -> Vec<(String, String, u64)> {
        SimThreads::set(threads);
        let mut out = Vec::new();
        for &(system, mode) in &combos {
            for &algo in &algos {
                let cell = Cell {
                    algorithm: algo,
                    dataset: Dataset::Kron,
                    system,
                    mode,
                    pr_iters: cfg.pr_iters,
                    scale: cfg.scale,
                    seed: 42,
                    scu_config: Some(cfg.scu_config(system)),
                };
                let result = cell.run();
                let json = serde_json::to_string(&serde_json::to_value(&result))
                    .expect("CellResult serialises");
                out.push((cell.id(), json, result.timeline_digest));
            }
        }
        out
    };

    let sequential = run_matrix(1);
    for threads in [2usize, 4] {
        let threaded = run_matrix(threads);
        for (seq, par) in sequential.iter().zip(&threaded) {
            assert_eq!(
                seq, par,
                "cell diverged between --sim-threads 1 and {threads}"
            );
        }
        assert_eq!(sequential.len(), threaded.len());
    }
    SimThreads::set(1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn data_compaction_equals_iterator_filter(
        data in prop::collection::vec(0u32..1000, 0..300),
        flags in prop::collection::vec(0u8..2, 300),
    ) {
        let (mut scu, mut mem, mut alloc) = fresh();
        let n = data.len();
        let src = DeviceArray::from_vec(&mut alloc, data.clone());
        let f = DeviceArray::from_vec(&mut alloc, flags[..n].to_vec());
        let mut dst: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, n.max(1));
        let op = scu.data_compaction_n(&mut mem, &src, n, Some(&f), None, &mut dst, 0);
        let expect: Vec<u32> = data.iter().zip(&flags[..n])
            .filter(|(_, &fl)| fl != 0).map(|(&d, _)| d).collect();
        prop_assert_eq!(op.elements_out as usize, expect.len());
        prop_assert_eq!(&dst.as_slice()[..expect.len()], &expect[..]);
    }

    #[test]
    fn bitmask_constructor_equals_comparison(
        data in prop::collection::vec(0u32..100, 1..200),
        reference in 0u32..100,
    ) {
        let (mut scu, mut mem, mut alloc) = fresh();
        let n = data.len();
        let src = DeviceArray::from_vec(&mut alloc, data.clone());
        let mut flags: DeviceArray<u8> = DeviceArray::zeroed(&mut alloc, n);
        scu.bitmask_construct(&mut mem, &src, n, CompareOp::Ge, reference, &mut flags);
        for (i, &d) in data.iter().enumerate() {
            prop_assert_eq!(flags.get(i) != 0, d >= reference);
        }
    }

    #[test]
    fn replication_equals_repeat_spec(
        pairs in prop::collection::vec((0u32..50, 0u32..5), 0..100),
    ) {
        let (mut scu, mut mem, mut alloc) = fresh();
        let n = pairs.len();
        let data: Vec<u32> = pairs.iter().map(|&(d, _)| d).collect();
        let counts: Vec<u32> = pairs.iter().map(|&(_, c)| c).collect();
        let total: usize = counts.iter().sum::<u32>() as usize;
        let src = DeviceArray::from_vec(&mut alloc, data.clone());
        let cnt = DeviceArray::from_vec(&mut alloc, counts.clone());
        let mut dst: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, total.max(1));
        let op = scu.replication_compaction(&mut mem, &src, &cnt, n, None, None, &mut dst);
        let expect: Vec<u32> = pairs.iter()
            .flat_map(|&(d, c)| std::iter::repeat_n(d, c as usize)).collect();
        prop_assert_eq!(op.elements_out as usize, expect.len());
        prop_assert_eq!(&dst.as_slice()[..expect.len()], &expect[..]);
    }

    #[test]
    fn expansion_equals_slice_concatenation(
        src_data in prop::collection::vec(0u32..1000, 32..256),
        slices in prop::collection::vec((0usize..16, 0usize..8), 0..40),
    ) {
        let (mut scu, mut mem, mut alloc) = fresh();
        let m = src_data.len();
        let valid: Vec<(u32, u32)> = slices.iter()
            .map(|&(s, l)| ((s % (m - 8)) as u32, l as u32)).collect();
        let src = DeviceArray::from_vec(&mut alloc, src_data.clone());
        let idx = DeviceArray::from_vec(&mut alloc, valid.iter().map(|&(s, _)| s).collect());
        let cnt = DeviceArray::from_vec(&mut alloc, valid.iter().map(|&(_, l)| l).collect());
        let total: usize = valid.iter().map(|&(_, l)| l as usize).sum();
        let mut dst: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, total.max(1));
        let op = scu.access_expansion_compaction(
            &mut mem, &src, &idx, &cnt, valid.len(), None, None, &mut dst);
        let expect: Vec<u32> = valid.iter()
            .flat_map(|&(s, l)| src_data[s as usize..s as usize + l as usize].to_vec())
            .collect();
        prop_assert_eq!(op.elements_out as usize, expect.len());
        prop_assert_eq!(&dst.as_slice()[..expect.len()], &expect[..]);
    }

    #[test]
    fn filtering_never_drops_first_occurrence_and_never_keeps_true_duplicates_adjacent(
        ids in prop::collection::vec(0u32..64, 1..300),
    ) {
        // Soundness: with a table far larger than the ID universe there
        // are no collisions, so the filter must keep exactly the first
        // occurrence of every ID.
        let (mut scu, mut mem, mut alloc) = fresh();
        let mut hash = FilterHash::new(&mut alloc, ScuConfig::tx1().filter_bfs_hash);
        let n = ids.len();
        let src = DeviceArray::from_vec(&mut alloc, ids.clone());
        let mut flags: DeviceArray<u8> = DeviceArray::zeroed(&mut alloc, n);
        scu.filter_pass_data(&mut mem, &src, n, None, FilterMode::Unique, None,
            &mut hash, &mut flags);
        let mut seen = std::collections::HashSet::new();
        for (i, &id) in ids.iter().enumerate() {
            let first = seen.insert(id);
            prop_assert_eq!(flags.get(i) != 0, first, "element {} id {}", i, id);
        }
    }

    #[test]
    fn grouping_is_always_a_permutation(
        ids in prop::collection::vec(0u32..512, 1..300),
    ) {
        let (mut scu, mut mem, mut alloc) = fresh();
        let mut hash = GroupHash::new(&mut alloc, ScuConfig::tx1().grouping_hash);
        let target: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 512);
        let n = ids.len();
        let src = DeviceArray::from_vec(&mut alloc, ids.clone());
        let mut order: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, n);
        let op = scu.group_pass_data(&mut mem, &src, n, None, &target, &mut hash, &mut order);
        prop_assert_eq!(op.elements_out as usize, n);
        let mut positions: Vec<u32> = order.as_slice().to_vec();
        positions.sort_unstable();
        let expect: Vec<u32> = (0..n as u32).collect();
        prop_assert_eq!(positions, expect);
    }

    #[test]
    fn flat_cache_matches_reference_lru_model(
        line_shift in 5u32..8,          // 32/64/128-byte lines
        set_shift in 0u32..4,           // 1..8 sets
        assoc in 1u32..5,
        stream in prop::collection::vec((0u64..4096, 0u8..2), 1..400),
    ) {
        let line = LineSize::new(1 << line_shift).expect("power of two");
        let size = (1u64 << set_shift) * assoc as u64 * line.bytes() as u64;
        let cfg = CacheConfig::new(size, line, assoc).expect("valid geometry");
        let mut cache = Cache::new(cfg);
        let mut model = ModelLru::new(cfg);

        let mut writes = 0u64;
        let mut hits = 0u64;
        let mut writebacks = 0u64;
        for (i, &(addr, write_flag)) in stream.iter().enumerate() {
            let write = write_flag != 0;
            let kind = if write { AccessKind::Write } else { AccessKind::Read };
            let out = cache.access(addr, kind);
            let (hit, dirty_eviction) = model.access(addr, write);
            prop_assert_eq!(out.hit, hit, "access {} at {:#x}", i, addr);
            prop_assert_eq!(
                out.dirty_eviction, dirty_eviction,
                "access {} at {:#x}", i, addr
            );
            writes += write as u64;
            hits += hit as u64;
            writebacks += dirty_eviction as u64;
        }

        let stats = cache.stats();
        prop_assert_eq!(stats.accesses, stream.len() as u64);
        prop_assert_eq!(stats.writes, writes);
        prop_assert_eq!(stats.hits, hits);
        prop_assert_eq!(stats.misses, stream.len() as u64 - hits);
        prop_assert_eq!(stats.writebacks, writebacks);

        // Residency agrees line-for-line across the touched range.
        for addr in (0..4096u64).step_by(line.bytes() as usize) {
            prop_assert_eq!(cache.probe(addr), model.resident(addr), "probe {:#x}", addr);
        }
    }

    #[test]
    fn cyclesim_never_beats_the_analytic_bounds(
        elements in 1_000u64..50_000,
        width in 1u32..8,
        latency in 1u32..200,
        bw_centi in 5u64..400, // lines/cycle x100
    ) {
        // The cycle-stepped pipeline can never finish faster than the
        // analytic lower bounds the device model charges, and should
        // land within 40% of their max (slack covers ramp-up and the
        // bandwidth/latency interaction).
        let mut cfg = ScuConfig::tx1();
        cfg.pipeline_width = width;
        let bw = bw_centi as f64 / 100.0;
        let r = CycleSim::new(&cfg).run(StreamWorkload {
            elements,
            elem_bytes: 4,
            mem_latency_cycles: latency,
            lines_per_cycle: bw,
        });
        let lines = (elements * 4).div_ceil(128);
        let pipeline = elements.div_ceil(width as u64) as f64;
        let bandwidth = lines as f64 / bw;
        let littles_law = lines as f64 * latency as f64
            / cfg.coalescer_in_flight as f64;
        let mut bounds = [pipeline, bandwidth, littles_law];
        bounds.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
        let bound = bounds[0];
        let ratio = r.cycles as f64 / bound;
        // Never faster than the max bound, never slower than their sum
        // (the regimes can alternate but not overlap-miss entirely).
        prop_assert!(
            ratio >= 0.99 && (r.cycles as f64) <= pipeline + bandwidth + littles_law + 64.0,
            "cycles {} vs bound {} (ratio {})",
            r.cycles, bound, ratio
        );
        // When one regime clearly dominates, the analytic bound must be
        // tight.
        if bounds[0] > 2.5 * bounds[1] {
            prop_assert!(
                ratio < 1.25,
                "dominant-regime cycles {} vs bound {} (ratio {})",
                r.cycles, bound, ratio
            );
        }
    }

    #[test]
    fn extension_algorithms_agree_on_random_graphs(
        edges in prop::collection::vec((0u32..30, 0u32..30, 1u32..10), 1..150),
    ) {
        let n = 30;
        let mut b = GraphBuilder::new(n);
        for &(s, d, w) in &edges {
            if s != d {
                b.add_edge(s, d, w);
            }
        }
        let g = b.build();

        let expect = cc::reference::labels(&g);
        let mut sys = System::with_scu(SystemKind::Tx1);
        let (got, _) = cc::scu::run(&mut sys, &g, true);
        prop_assert_eq!(&got, &expect);

        let expect = kcore::reference::coreness(&g);
        let mut sys = System::with_scu(SystemKind::Tx1);
        let (got, _) = kcore::scu::run(&mut sys, &g);
        prop_assert_eq!(&got, &expect);
    }

    #[test]
    fn random_graphs_agree_across_machines(
        edges in prop::collection::vec((0u32..40, 0u32..40, 1u32..10), 1..200),
    ) {
        let n = 40;
        let mut b = GraphBuilder::new(n);
        for &(s, d, w) in &edges {
            if s != d {
                b.add_edge(s, d, w);
            }
        }
        let g = b.build();

        let expect = bfs::reference::distances(&g, 0);
        let mut sys = System::with_scu(SystemKind::Tx1);
        let (got, _) = bfs::scu::run(&mut sys, &g, 0, true);
        prop_assert_eq!(&got, &expect);

        let expect = sssp::reference::distances(&g, 0);
        let mut sys = System::with_scu(SystemKind::Tx1);
        let (got, _) = sssp::scu::run(&mut sys, &g, 0, sssp::ScuVariant::enhanced());
        prop_assert_eq!(&got, &expect);
    }
}

//! Integration tests for the parallel experiment harness: the
//! determinism, fault-isolation, and caching guarantees the
//! reproduction binaries rely on.

use std::path::PathBuf;
use std::sync::Arc;

use scu::bench::experiments::matrix::Matrix;
use scu::bench::ExperimentConfig;
use scu_algos::runner::Mode;
use scu_harness::{Harness, Job, JobGraph, Outcome};
use serde_json::Value;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scu-harness-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tiny() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::tiny();
    cfg.scale = 1.0 / 256.0;
    cfg
}

const MODES: [Mode; 2] = [Mode::GpuBaseline, Mode::ScuEnhanced];

/// Serialises a matrix the way `export_json` does — the byte stream
/// that must not depend on scheduling.
fn matrix_bytes(m: &Matrix) -> String {
    let rows: Vec<Value> = m
        .entries()
        .iter()
        .map(|e| {
            Value::Object(vec![
                (
                    "cell".to_string(),
                    Value::Str(format!(
                        "{}/{}/{}/{}",
                        e.algo.name(),
                        e.dataset.name(),
                        e.system.name(),
                        e.mode.name()
                    )),
                ),
                ("values_fnv".to_string(), Value::U64(e.values_fnv)),
                ("report".to_string(), serde_json::to_value(&e.report)),
            ])
        })
        .collect();
    serde_json::to_string_pretty(&Value::Array(rows)).unwrap()
}

#[test]
fn parallel_sweep_is_byte_identical_to_sequential() {
    let cfg = tiny();
    let (seq, s1) = Matrix::collect_with(&cfg, &MODES, &Harness::new().jobs(1), None);
    let (par, s2) = Matrix::collect_with(&cfg, &MODES, &Harness::new().jobs(8), None);
    assert!(s1.summary.all_done() && s2.summary.all_done());
    assert_eq!(seq.entries().len(), par.entries().len());
    assert_eq!(matrix_bytes(&seq), matrix_bytes(&par));
}

#[test]
fn panicking_cell_fails_alone_and_the_sweep_completes() {
    let mut graph = JobGraph::new();
    for i in 0..8u64 {
        if i == 3 {
            graph.push(Job::new("cell-3", || panic!("injected cell fault")));
        } else {
            graph.push(Job::new(format!("cell-{i}"), move || Value::U64(i)));
        }
    }
    let sweep = Harness::new().jobs(4).run(&graph);
    assert_eq!(sweep.summary.done, 7);
    assert_eq!(sweep.summary.failed.len(), 1);
    assert_eq!(sweep.summary.failed[0].0, "cell-3");
    assert!(
        sweep.summary.failed[0].1.contains("injected cell fault"),
        "panic message captured: {:?}",
        sweep.summary.failed[0].1
    );
    for (i, outcome) in sweep.outcomes.iter().enumerate() {
        match outcome {
            Outcome::Failed { .. } => assert_eq!(i, 3),
            Outcome::Done { value, .. } => assert_eq!(value, &Value::U64(i as u64)),
            other => panic!("cell-{i}: unexpected outcome {other:?}"),
        }
    }
    let rendered = sweep.summary.render();
    assert!(rendered.contains("7/8"));
    assert!(rendered.contains("FAILED    cell-3"));
}

#[test]
fn dependents_of_a_failed_cell_are_skipped_not_run() {
    let mut graph = JobGraph::new();
    let a = graph.push(Job::new("broken", || panic!("boom")));
    let ran = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let flag = Arc::clone(&ran);
    graph.push(
        Job::new("dependent", move || {
            flag.store(true, std::sync::atomic::Ordering::SeqCst);
            Value::Null
        })
        .after(&[a]),
    );
    let sweep = Harness::new().jobs(2).run(&graph);
    assert_eq!(sweep.summary.skipped, vec!["dependent".to_string()]);
    assert!(
        !ran.load(std::sync::atomic::Ordering::SeqCst),
        "skipped cell must not execute"
    );
}

#[test]
fn second_run_is_served_entirely_from_cache() {
    let dir = scratch("warm-matrix");
    let cfg = tiny();
    let harness = Harness::new().jobs(4).cache_dir(&dir);
    let (cold, s_cold) = Matrix::collect_with(&cfg, &MODES, &harness, None);
    assert!(s_cold.summary.all_done());
    assert_eq!(s_cold.summary.cached, 0, "first run computes everything");
    assert_eq!(s_cold.cache_stats.stores as usize, cold.entries().len());

    let (warm, s_warm) = Matrix::collect_with(&cfg, &MODES, &harness, None);
    assert!(
        s_warm.summary.fully_cached(),
        "rerun must be 100% cache hits"
    );
    assert_eq!(s_warm.cache_stats.hits as usize, warm.entries().len());
    assert_eq!(s_warm.cache_stats.misses, 0);
    assert_eq!(
        matrix_bytes(&cold),
        matrix_bytes(&warm),
        "cache round-trip is lossless"
    );

    // A different configuration must not hit the same cache entries.
    let mut other = cfg.clone();
    other.seed += 1;
    let (_, s_other) = Matrix::collect_with(&other, &MODES, &harness, None);
    assert_eq!(
        s_other.summary.cached, 0,
        "seed participates in the cache key"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn filter_runs_only_matching_cells() {
    let cfg = tiny();
    let (m, sweep) = Matrix::collect_with(&cfg, &MODES, &Harness::new(), Some("PR/kron"));
    assert!(sweep.summary.all_done());
    assert_eq!(m.entries().len(), 4, "PR on kron: 2 systems x 2 modes");
    assert!(m
        .entries()
        .iter()
        .all(|e| e.algo.name() == "PR" && e.dataset.name() == "kron"));
}

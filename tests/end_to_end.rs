//! Cross-crate end-to-end tests: every algorithm, on every machine
//! variant and platform, must produce the reference answers.

use scu::algos::runner::{run, Algorithm, Mode};
use scu::algos::{bfs, pagerank, sssp, SystemKind};
use scu::graph::Dataset;

const MODES: [Mode; 4] = [
    Mode::GpuBaseline,
    Mode::ScuBasic,
    Mode::ScuFilteringOnly,
    Mode::ScuEnhanced,
];

#[test]
fn bfs_exact_on_every_dataset_and_machine() {
    for dataset in Dataset::ALL {
        let g = dataset.build(1.0 / 512.0, 5);
        let expect = bfs::reference::distances(&g, 0);
        for kind in SystemKind::ALL {
            for mode in MODES {
                let out = run(Algorithm::Bfs, &g, kind, mode);
                let got: Vec<u32> = out.values.iter().map(|&x| x as u32).collect();
                assert_eq!(got, expect, "BFS {dataset} {kind} {mode}");
            }
        }
    }
}

#[test]
fn sssp_exact_on_every_dataset_and_machine() {
    for dataset in Dataset::ALL {
        let g = dataset.build(1.0 / 512.0, 5);
        let expect = sssp::reference::distances(&g, 0);
        for kind in SystemKind::ALL {
            for mode in MODES {
                let out = run(Algorithm::Sssp, &g, kind, mode);
                let got: Vec<u32> = out.values.iter().map(|&x| x as u32).collect();
                assert_eq!(got, expect, "SSSP {dataset} {kind} {mode}");
            }
        }
    }
}

#[test]
fn pagerank_matches_reference_on_every_machine() {
    for dataset in [Dataset::Cond, Dataset::Kron, Dataset::Ca] {
        let g = dataset.build(1.0 / 512.0, 5);
        let (expect, _) = pagerank::reference::ranks(&g, 20);
        for kind in SystemKind::ALL {
            for mode in [Mode::GpuBaseline, Mode::ScuBasic] {
                let out = run(Algorithm::PageRank, &g, kind, mode);
                for (i, (&q, &r)) in out.values.iter().zip(&expect).enumerate() {
                    let got = q as f64 / 1e9;
                    assert!(
                        (got - r).abs() < 1e-6,
                        "PR {dataset} {kind} {mode} node {i}: {got} vs {r}"
                    );
                }
            }
        }
    }
}

#[test]
fn extension_algorithms_exact_across_machines() {
    for dataset in [Dataset::Ca, Dataset::Kron, Dataset::Human] {
        let g = dataset.build(1.0 / 512.0, 5);
        for algo in [Algorithm::Cc, Algorithm::KCore] {
            let base = run(algo, &g, SystemKind::Tx1, Mode::GpuBaseline);
            for kind in SystemKind::ALL {
                for mode in MODES {
                    let out = run(algo, &g, kind, mode);
                    assert_eq!(out.values, base.values, "{algo} {dataset} {kind} {mode}");
                }
            }
        }
    }
}

#[test]
fn different_sources_also_agree() {
    let g = Dataset::Delaunay.build(1.0 / 512.0, 9);
    for src in [1u32, (g.num_nodes() / 2) as u32, (g.num_nodes() - 1) as u32] {
        let expect = bfs::reference::distances(&g, src);
        let mut sys = scu::algos::System::with_scu(SystemKind::Tx1);
        let (got, _) = bfs::scu::run(&mut sys, &g, src, true);
        assert_eq!(got, expect, "source {src}");

        let expect = sssp::reference::distances(&g, src);
        let mut sys = scu::algos::System::with_scu(SystemKind::Tx1);
        let (got, _) = sssp::scu::run(&mut sys, &g, src, sssp::ScuVariant::enhanced());
        assert_eq!(got, expect, "source {src}");
    }
}

#[test]
fn empty_and_singleton_graphs_are_handled() {
    use scu::graph::GraphBuilder;
    // A single node with no edges.
    let g = GraphBuilder::new(1).build();
    let out = run(Algorithm::Bfs, &g, SystemKind::Tx1, Mode::ScuEnhanced);
    assert_eq!(out.values, vec![0]);
    let out = run(Algorithm::Sssp, &g, SystemKind::Tx1, Mode::ScuEnhanced);
    assert_eq!(out.values, vec![0]);

    // Two components: the second stays unreached.
    let mut b = GraphBuilder::new(4);
    b.add_edge(0, 1, 3).add_edge(2, 3, 4);
    let g = b.build();
    let out = run(Algorithm::Bfs, &g, SystemKind::Tx1, Mode::ScuEnhanced);
    assert_eq!(out.values, vec![0, 1, u32::MAX as u64, u32::MAX as u64]);
}

//! Fault-injection integration tests: failpoints driving every
//! [`Outcome`] variant through the real harness, crash-resume through
//! the journal, and cache-corruption quarantine — including a property
//! test that no corrupted blob is ever silently accepted.

use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

use proptest::prelude::*;
use scu::bench::experiments::matrix::Matrix;
use scu::bench::ExperimentConfig;
use scu_algos::runner::Mode;
use scu_harness::{cancel, failpoint, Harness, Job, JobGraph, Outcome, ResultCache};
use serde_json::Value;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scu-fault-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tiny() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::tiny();
    cfg.scale = 1.0 / 256.0;
    cfg
}

/// Tests arming the *global* `cell-run` site (or the global cancel
/// flag) serialise on this lock; tests using private site names run
/// freely in parallel.
fn global_sites() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

const MODES: [Mode; 2] = [Mode::GpuBaseline, Mode::ScuEnhanced];

fn matrix_fnvs(m: &Matrix) -> Vec<(String, u64)> {
    m.entries()
        .iter()
        .map(|e| {
            (
                format!(
                    "{}/{}/{}/{}",
                    e.algo.name(),
                    e.dataset.name(),
                    e.system.name(),
                    e.mode.name()
                ),
                e.values_fnv,
            )
        })
        .collect()
}

#[test]
fn failpoints_drive_every_outcome_variant() {
    let _fp = failpoint::scoped(
        "it-fail=panic(injected hard fault);it-flaky=panic(injected flake)@1;it-slow=delay(400)",
    );
    let mut g = JobGraph::new();
    g.push(Job::new("ok", || {
        failpoint::apply("it-ok-unarmed");
        Value::U64(1)
    }));
    let fail = g.push(Job::new("fail", || {
        failpoint::apply("it-fail");
        Value::U64(2)
    }));
    g.push(Job::new("flaky", || {
        failpoint::apply("it-flaky");
        Value::U64(3)
    }));
    g.push(Job::new("slow", || {
        failpoint::apply("it-slow");
        Value::U64(4)
    }));
    g.push(Job::new("dependent", move || Value::U64(5)).after(&[fail]));
    let sweep = Harness::new()
        .jobs(2)
        .retries(1)
        .backoff(
            std::time::Duration::from_millis(1),
            std::time::Duration::from_millis(10),
        )
        .timeout(std::time::Duration::from_millis(80))
        .run(&g);

    assert!(sweep.outcomes[0].is_done() && !sweep.outcomes[0].was_retried());
    // "fail" fires on every hit, so both attempts panic.
    match &sweep.outcomes[1] {
        Outcome::Failed { error, retries } => {
            assert!(error.contains("injected hard fault"));
            assert_eq!(retries.len(), 1, "the one allowed retry also failed");
        }
        other => panic!("fail: unexpected outcome {other:?}"),
    }
    // "flaky" fires on the first hit only: retried, then ok.
    assert!(sweep.outcomes[2].was_retried());
    assert_eq!(sweep.outcomes[2].value(), Some(&Value::U64(3)));
    // "slow" sleeps 400 ms against an 80 ms budget on every attempt.
    assert!(matches!(sweep.outcomes[3], Outcome::TimedOut { .. }));
    assert!(matches!(sweep.outcomes[4], Outcome::Skipped { .. }));
    assert_eq!(sweep.summary.retried, vec!["flaky".to_string()]);
    assert_eq!(sweep.summary.timed_out, vec!["slow".to_string()]);
}

#[test]
fn sigint_style_cancellation_drains_and_resume_finishes() {
    let _guard = global_sites();
    cancel::reset();
    let manifest = scratch("cancel").join("manifest.json");

    // First sweep: the third cell raises the cancel flag mid-run, as
    // the SIGINT handler would; with one worker the rest never start.
    let build = |trigger: bool| {
        let mut g = JobGraph::new();
        for i in 0..6u64 {
            let key = Value::Object(vec![("cancel-cell".into(), Value::U64(i))]);
            g.push(
                Job::new(format!("cell-{i}"), move || {
                    if trigger && i == 2 {
                        cancel::cancel();
                    }
                    Value::U64(i * i)
                })
                .with_cache_key(key),
            );
        }
        g
    };
    let first = Harness::new()
        .jobs(1)
        .manifest(&manifest)
        .handle_sigint(true)
        .run(&build(true));
    assert!(first.summary.was_interrupted());
    assert_eq!(first.summary.done, 3, "in-flight cells drained");
    assert_eq!(first.summary.cancelled.len(), 3);
    cancel::reset();

    // Resume: journaled cells are pre-resolved, the rest run now.
    let resumed = Harness::new()
        .jobs(1)
        .manifest(&manifest)
        .resume(true)
        .run(&build(false));
    assert!(resumed.summary.all_done());
    assert_eq!(resumed.summary.cached, 3, "journaled cells not re-run");
    for (i, o) in resumed.outcomes.iter().enumerate() {
        assert_eq!(o.value(), Some(&Value::U64((i * i) as u64)));
    }
    let _ = std::fs::remove_dir_all(manifest.parent().unwrap());
}

#[test]
fn interrupted_matrix_resumes_to_byte_identical_results() {
    let _guard = global_sites();
    let dir = scratch("resume-matrix");
    let manifest = dir.join("manifest.json");
    let cfg = tiny();

    // Reference: one clean uninterrupted sweep.
    let (reference, s) = Matrix::collect_with(
        &cfg,
        &MODES,
        &Harness::new().jobs(2).retries(0),
        Some("BFS/"),
    );
    assert!(s.summary.all_done());

    // "Interrupted" sweep: every cell-run past the 4th panics, so the
    // journal holds only a prefix — the moral equivalent of a kill.
    {
        let _fp = failpoint::scoped("cell-run=panic(injected kill)@5+");
        let (_, broken) = Matrix::collect_with(
            &cfg,
            &MODES,
            &Harness::new().jobs(1).retries(0).manifest(&manifest),
            Some("BFS/"),
        );
        assert!(!broken.summary.all_done());
        assert_eq!(broken.summary.done, 4);
    }

    // Resume with the fault gone: only the missing cells execute, and
    // the grid comes back identical to the uninterrupted reference.
    let (resumed, s2) = Matrix::collect_with(
        &cfg,
        &MODES,
        &Harness::new()
            .jobs(2)
            .retries(0)
            .manifest(&manifest)
            .resume(true),
        Some("BFS/"),
    );
    assert!(s2.summary.all_done());
    assert_eq!(s2.summary.cached, 4, "journaled prefix served, not re-run");
    assert_eq!(matrix_fnvs(&reference), matrix_fnvs(&resumed));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flaky_cell_run_recovers_via_retry() {
    let _guard = global_sites();
    let _fp = failpoint::scoped("cell-run=panic(transient cell fault)@1");
    let cfg = tiny();
    let (m, sweep) = Matrix::collect_with(
        &cfg,
        &MODES,
        &Harness::new().jobs(1).retries(2).backoff(
            std::time::Duration::from_millis(1),
            std::time::Duration::from_millis(10),
        ),
        Some("BFS/kron"),
    );
    assert!(sweep.summary.all_done(), "{}", sweep.summary.render());
    assert_eq!(sweep.summary.retried.len(), 1, "first cell flaked once");
    assert_eq!(m.entries().len(), 4);
}

#[test]
fn corrupt_cache_blob_is_quarantined_and_recomputed() {
    let dir = scratch("quarantine");
    // Explicitly the legacy per-file layout: this test pokes blob
    // files by path. (The LSM layout's corruption handling is covered
    // by scu-store's own fuzz suite.)
    let cache = ResultCache::open_legacy(&dir).unwrap();
    let key = Value::Object(vec![("cell".into(), Value::Str("q-test".into()))]);
    let value = Value::Object(vec![("metric".into(), Value::U64(42))]);
    cache.store(&key, &value).unwrap();

    // Flip one byte in the stored blob.
    let blob = dir.join(format!("{}.json", ResultCache::digest_of(&key)));
    let mut bytes = std::fs::read(&blob).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&blob, &bytes).unwrap();

    assert_eq!(cache.load(&key), None, "corrupt blob must read as a miss");
    assert!(!blob.exists(), "blob moved out of the cache");
    let quarantined = std::fs::read_dir(cache.quarantine_dir()).unwrap().count();
    assert_eq!(quarantined, 1, "blob moved into quarantine");
    assert_eq!(cache.stats().quarantined, 1);

    // The cache stays usable: a fresh store round-trips again.
    cache.store(&key, &value).unwrap();
    assert_eq!(cache.load(&key), Some(value));
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Satellite property: a cache blob put through a random
    /// truncation or byte-flip is either rejected (and quarantined) or
    /// read back byte-identical — never silently accepted as a
    /// different value.
    #[test]
    fn cache_corruption_is_never_silently_accepted(
        cut in 0usize..400,
        flip_at in 0usize..400,
        flip_with in 1u8..=255,
        truncate in 0u8..2,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "scu-fault-prop-{}-{cut}-{flip_at}-{flip_with}-{truncate}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open_legacy(&dir).unwrap();
        let key = Value::Object(vec![("cell".into(), Value::U64(7))]);
        let value = Value::Object(vec![
            ("metric".into(), Value::F64(3.25)),
            ("count".into(), Value::U64(123_456)),
            ("label".into(), Value::Str("BFS/kron/TX1".into())),
        ]);
        cache.store(&key, &value).unwrap();
        let blob = dir.join(format!("{}.json", ResultCache::digest_of(&key)));
        let original = std::fs::read(&blob).unwrap();

        let mut mutated = original.clone();
        if truncate == 1 {
            mutated.truncate(cut.min(mutated.len()));
        } else {
            let i = flip_at % mutated.len();
            mutated[i] ^= flip_with;
        }
        std::fs::write(&blob, &mutated).unwrap();

        match cache.load(&key) {
            // Accepted: only legitimate if the mutation was a no-op.
            Some(v) => {
                prop_assert_eq!(&mutated, &original, "accepted a mutated blob");
                prop_assert_eq!(v, value.clone());
            }
            // Rejected: the blob must be quarantined, not just dropped.
            None => {
                prop_assert!(!blob.exists());
                let n = std::fs::read_dir(cache.quarantine_dir())
                    .map(|d| d.count())
                    .unwrap_or(0);
                prop_assert_eq!(n, 1, "rejected blob quarantined");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Cross-crate tests of the functional-trace cache: the semantic-key /
//! timing-key split that decides when a recorded trace may be replayed,
//! and the poisoned-trace path — a corrupt stored trace must degrade to
//! cold recording with a byte-identical result, never a wrong one.

use std::path::PathBuf;
use std::sync::Mutex;

use proptest::prelude::*;

use scu::algos::cell::Cell;
use scu::algos::runner::{Algorithm, Mode};
use scu::algos::{trace_cache, SystemKind};
use scu::graph::Dataset;
use scu::harness::trace_bridge;
use scu::harness::ResultCache;

/// The reference cell the key properties mutate away from. SCU mode so
/// hash-table geometry participates in the semantic key.
fn base_cell() -> Cell {
    Cell {
        algorithm: Algorithm::Bfs,
        dataset: Dataset::Kron,
        system: SystemKind::Tx1,
        mode: Mode::ScuEnhanced,
        pr_iters: 3,
        scale: 1.0 / 256.0,
        seed: 7,
        scu_config: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Timing-only knobs (frequencies, buffer depths, issue costs,
    /// DRAM efficiency) must never move the semantic key — they change
    /// *when* things happen, not *what* the kernels compute — while
    /// the result-cache key must see every one of them.
    #[test]
    fn timing_knobs_never_move_the_semantic_key(
        knob in 0usize..10,
        delta in 1u32..64,
    ) {
        let base = base_cell();
        let mut cfg = base.system.scu_config();
        match knob {
            0 => cfg.freq_ghz += f64::from(delta) * 0.01,
            1 => cfg.pipeline_width += delta,
            2 => cfg.vector_buffer_bytes += delta * 128,
            3 => cfg.fifo_request_buffer_bytes += delta * 128,
            4 => cfg.hash_request_buffer_bytes += delta * 128,
            5 => cfg.coalescer_in_flight += delta,
            6 => cfg.coalescer_merge_window += delta,
            7 => cfg.op_setup_cycles += delta,
            8 => cfg.op_issue_ns += f64::from(delta),
            9 => cfg.dram_efficiency *= 1.0 - f64::from(delta) * 0.001,
            _ => unreachable!(),
        }
        let mut tweaked = base.clone();
        tweaked.scu_config = Some(cfg);
        prop_assert_eq!(
            tweaked.semantic_key_string(),
            base.semantic_key_string(),
            "knob {} is timing-only and must not invalidate traces",
            knob
        );
        prop_assert!(
            tweaked.cache_key() != base.cache_key(),
            "knob {} changes timing, so results must not be shared",
            knob
        );
    }

    /// Functional knobs — algorithm, dataset, graph scale/seed, system,
    /// hash-table geometry — each must move the semantic key: any of
    /// them can change what the kernels compute, so a recorded trace
    /// must not be replayed across the change.
    #[test]
    fn functional_knobs_always_move_the_semantic_key(
        knob in 0usize..6,
        pick in 0u64..1_000_000,
    ) {
        let base = base_cell();
        let mut c = base.clone();
        match knob {
            0 => c.seed = base.seed.wrapping_add(1 + pick),
            1 => c.scale = base.scale * (1.0 + (pick as f64 + 1.0) * 1e-6),
            2 => {
                let others = [
                    Algorithm::Sssp,
                    Algorithm::Cc,
                    Algorithm::KCore,
                    Algorithm::PageRank,
                ];
                c.algorithm = others[(pick % 4) as usize];
            }
            3 => {
                let others: Vec<Dataset> = Dataset::ALL
                    .into_iter()
                    .filter(|d| d.name() != base.dataset.name())
                    .collect();
                c.dataset = others[(pick as usize) % others.len()];
            }
            4 => {
                // Hash-table geometry is functional: eviction decides
                // which duplicates survive filtering, which changes the
                // frontier contents, not just their timing.
                let mut cfg = base.system.scu_config();
                cfg.filter_bfs_hash.size_bytes *= 2;
                c.scu_config = Some(cfg);
            }
            5 => c.system = SystemKind::Gtx980,
            _ => unreachable!(),
        }
        prop_assert!(
            c.semantic_key_string() != base.semantic_key_string(),
            "knob {} changes what the kernels compute; sharing a trace would be wrong",
            knob
        );
    }
}

/// The trace cache is process-global state; the tests below serialise
/// on this lock so a parallel test run cannot interleave sessions.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scu-trace-itest-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small cell for the end-to-end runs (distinct from `base_cell` so
/// its semantic key never collides with the key-property tests).
fn run_cell() -> Cell {
    Cell {
        algorithm: Algorithm::Bfs,
        dataset: Dataset::Kron,
        system: SystemKind::Tx1,
        mode: Mode::ScuEnhanced,
        pr_iters: 3,
        scale: 1.0 / 512.0,
        seed: 11,
        scu_config: None,
    }
}

/// Corrupting the stored trace must degrade to cold recording — byte
/// for byte the cold result, never a wrong one — and the re-recording
/// heals the entry so the next run replays again.
#[test]
fn poisoned_stored_trace_falls_back_cold_and_heals() {
    let _guard = TRACE_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let dir = scratch_dir("poison");
    let cache = ResultCache::open(&dir).expect("open store");
    let backend = cache.backend();
    trace_bridge::install(Some(backend.clone()), true);

    let cell = run_cell();
    let cold = cell.run();
    let o = trace_cache::last_cell_outcome().expect("session ran");
    assert!(!o.hit && o.stored, "first run records and stores");

    // Overwrite the stored trace with bytes the store layer accepts
    // (valid envelope digest) but the blob verifier must reject.
    backend
        .put_trace(&cell.semantic_key_string(), b"not a trace blob")
        .expect("store accepts the write");

    let before = trace_cache::stats().poisoned;
    let fallback = cell.run();
    assert_eq!(fallback, cold, "poisoned trace never changes the result");
    let o = trace_cache::last_cell_outcome().expect("session ran");
    assert!(o.poisoned, "the outcome reports the verification failure");
    assert!(!o.hit, "a rejected trace is not a hit");
    assert!(o.stored, "the cold re-recording heals the entry");
    assert_eq!(trace_cache::stats().poisoned, before + 1);

    let warm = cell.run();
    assert_eq!(warm, cold, "the healed entry replays byte-identically");
    let o = trace_cache::last_cell_outcome().expect("session ran");
    assert!(o.hit && !o.poisoned && o.bytes_replayed > 0);

    trace_bridge::install(None, true);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--no-trace-cache` (cache disabled) and warm replay must agree with
/// the plain uncached run — the cache can only move wall-clock.
#[test]
fn disabled_warm_and_cold_runs_agree() {
    let _guard = TRACE_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let dir = scratch_dir("agree");
    let cache = ResultCache::open(&dir).expect("open store");

    let mut cell = run_cell();
    cell.seed = 13; // distinct semantic key from the poison test
    trace_bridge::install(None, false);
    let disabled = cell.run();
    assert!(
        trace_cache::last_cell_outcome().is_none()
            || trace_cache::last_cell_outcome().unwrap().key != cell.semantic_key_string(),
        "no session opens while the cache is disabled"
    );

    trace_bridge::install(Some(cache.backend()), true);
    let cold = cell.run();
    let warm = cell.run();
    assert_eq!(disabled, cold);
    assert_eq!(disabled, warm);
    assert!(trace_cache::last_cell_outcome().expect("session ran").hit);

    trace_bridge::install(None, true);
    let _ = std::fs::remove_dir_all(&dir);
}

//! Offline stand-in for `proptest`.
//!
//! The build environment has no network and no registry cache, so the
//! real proptest cannot be resolved. This crate keeps the calling
//! convention of the subset the workspace's property tests use —
//! [`proptest!`], [`prop_assert!`]/[`prop_assert_eq!`],
//! `prop::collection::vec`, integer-range strategies, tuple strategies
//! and [`ProptestConfig::with_cases`] — and runs each property over a
//! fixed number of deterministically generated cases.
//!
//! Differences from real proptest, deliberately accepted: no input
//! shrinking on failure (the failing values are printed instead), no
//! persisted regression files, and case generation is seeded from the
//! test's name, so failures reproduce exactly on re-run.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub use rand::RngExt;

/// The deterministic case generator handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds the stream from the test name, so every run of a given
    /// test sees the same cases.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// Per-property configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Length specification for [`prop::collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

/// Strategy combinators, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};
        use rand::RngExt;

        /// A vector strategy: `len` drawn from `size`, elements from
        /// `element`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates vectors whose length falls in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let len = rng.rng().random_range(self.size.lo..self.size.hi_exclusive);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Asserts a condition inside a property, printing context on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property, printing context on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` runs
/// its body over [`ProptestConfig::cases`] generated argument tuples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{@inner $cfg; $($rest)*}
    };
    (@inner $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut prop_rng = $crate::TestRng::deterministic(stringify!($name));
                for prop_case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut prop_rng);)*
                    let detail = || {
                        let mut s = format!("case {prop_case}:");
                        $(s.push_str(&format!(" {} = {:?};", stringify!($arg), &$arg));)*
                        s
                    };
                    $crate::eprintln_on_panic(&detail, || $body);
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!{@inner $crate::ProptestConfig::default(); $($rest)*}
    };
}

/// Runs `body`, printing `detail()` before propagating a panic — the
/// stand-in for proptest's failure-case reporting (without shrinking).
pub fn eprintln_on_panic<D: Fn() -> String>(detail: &D, body: impl FnOnce()) {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
    if let Err(payload) = outcome {
        eprintln!("proptest stub failing input — {}", detail());
        std::panic::resume_unwind(payload);
    }
}

/// The glob import real proptest users write.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_respect_size_range(
            v in prop::collection::vec(0u32..10, 3..7),
        ) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn tuples_compose(
            pair in (0u8..2, 5usize..6),
            triple in (0u32..4, 0u32..4, 1u32..2),
        ) {
            prop_assert!(pair.0 < 2);
            prop_assert_eq!(pair.1, 5);
            prop_assert_eq!(triple.2, 1);
        }
    }

    #[test]
    fn default_config_runs() {
        // No `#[test]` on the inner fn: attributes are optional in the
        // macro, and a nested test item would be unnameable anyway.
        proptest! {
            fn inner(x in 0u64..100) {
                prop_assert!(x < 100);
            }
        }
        inner();
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let mut a = TestRng::deterministic("same");
        let mut b = TestRng::deterministic("same");
        let sa = (0u32..1000).sample(&mut a);
        let sb = (0u32..1000).sample(&mut b);
        assert_eq!(sa, sb);
    }

    // The macro must call the named tests; vec_lengths... carries
    // #[test] through $meta, so nothing extra to do here.
}

//! # scu-server — simulation-as-a-service for the experiment matrix
//!
//! A persistent daemon that serves the reproduction's 240-cell
//! (algorithm × dataset × system × mode) matrix over HTTP, so repeated
//! and overlapping investigations share one simulator, one result
//! cache, and one journal instead of each CLI invocation paying cold
//! costs alone.
//!
//! The pieces:
//!
//! - [`scheduler`] — the new subsystem: dedups requested cells against
//!   the on-disk cache, **coalesces identical in-flight cells across
//!   clients** (N clients with overlapping matrices compute each
//!   unique cell exactly once), batches cold cells through one shared
//!   [`scu_harness::Harness`] (inheriting retries, fault isolation,
//!   journaling, and the jobs × sim-threads core clamp), and streams
//!   per-cell completions to every waiting sweep.
//! - [`server`] — a hand-rolled HTTP/1.1 front end over
//!   [`std::net::TcpListener`] (the offline build has no hyper):
//!   sweep submission, status, chunked event streams, cache reads,
//!   metrics.
//! - [`client`] — the blocking client the CLI passthrough
//!   (`run_one --remote`) and the end-to-end tests use, with
//!   capped-exponential-backoff retries on transient errors.
//! - [`api`] / [`http`] — the JSON request surface and the protocol
//!   plumbing.
//!
//! The server is hardened for hostile and degraded conditions: socket
//! read/write timeouts plus a per-request wall-clock deadline
//! (slowloris-proof), a bounded connection queue and pending-cell
//! admission cap that shed overload with `503`/`429 Retry-After`,
//! per-sweep deadlines that cancel unresolved cells, and mid-stream
//! disconnect detection that releases orphaned sweeps. The failure
//! model and its failpoint sites are documented in DESIGN.md §3e.
//!
//! Results served over HTTP are byte-identical to `run_one`'s: both
//! paths build cells through
//! [`scu_algos::experiment::ExperimentConfig::cell`], so cache keys
//! and result serialisations are shared end to end.

pub mod api;
pub mod client;
pub mod http;
pub mod scheduler;
pub mod server;

pub use client::{Client, ClientError};
pub use http::ReadLimits;
pub use scheduler::{
    Counters, Scheduler, SchedulerConfig, SweepState, DEFAULT_MAX_PENDING_CELLS,
    DEFAULT_MAX_RETAINED_SWEEPS,
};
pub use server::{Server, ServerConfig, ServerHandle};

//! Blocking HTTP client for the sweep daemon.
//!
//! One request per connection, mirroring the server's
//! `Connection: close` discipline. [`Client::stream_events`] decodes
//! the chunked NDJSON event stream incrementally, invoking the
//! callback per event as it arrives — the CLI passthrough and the
//! tests both watch sweeps live through it.
//!
//! Transient failures — connection/socket errors, `429`, and
//! "overloaded" `503`s — are retried with the harness's
//! capped-exponential-backoff policy ([`scu_harness::capped_backoff`],
//! default 2 retries, 100 ms base, 2 s cap). Non-transient errors
//! (4xx rejections, "shutting down" 503s) surface immediately, and an
//! event stream never retries once events have started flowing.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use scu_harness::capped_backoff;
use serde_json::Value;

/// Client-side failures, with the HTTP error body when there was one.
#[derive(Debug)]
pub enum ClientError {
    /// Connection or socket-level failure.
    Io(std::io::Error),
    /// Non-2xx response: status code and the server's error message.
    Http(u16, String),
    /// The response did not parse as the protocol promises.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection failed: {e}"),
            ClientError::Http(status, msg) => write!(f, "server returned {status}: {msg}"),
            ClientError::Protocol(msg) => write!(f, "malformed response: {msg}"),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connection-per-request client bound to one server address.
#[derive(Debug, Clone)]
pub struct Client {
    host: String,
    retries: u32,
    backoff: Duration,
    backoff_cap: Duration,
}

/// Whether an error is worth retrying: the server may come back
/// (socket-level failure), asked us to retry (`429`), or shed us under
/// load (`503` "overloaded"). A "shutting down" `503` and all 4xx
/// rejections are final.
fn is_transient(e: &ClientError) -> bool {
    match e {
        ClientError::Io(_) => true,
        ClientError::Http(429, _) => true,
        ClientError::Http(503, msg) => msg.contains("overloaded"),
        _ => false,
    }
}

impl Client {
    /// Accepts `http://host:port`, `host:port`, with or without a
    /// trailing slash.
    pub fn new(url: &str) -> Client {
        let host = url
            .trim()
            .trim_start_matches("http://")
            .trim_end_matches('/')
            .to_string();
        Client {
            host,
            retries: 2,
            backoff: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(2),
        }
    }

    /// Retry budget for transient errors (default 2; 0 = single shot).
    pub fn with_retries(mut self, retries: u32) -> Client {
        self.retries = retries;
        self
    }

    /// Base backoff (doubles per attempt) and its cap, mirroring the
    /// harness executor's knobs.
    pub fn with_backoff(mut self, base: Duration, cap: Duration) -> Client {
        self.backoff = base;
        self.backoff_cap = cap;
        self
    }

    /// `GET /healthz`.
    pub fn health(&self) -> Result<Value, ClientError> {
        self.request("GET", "/healthz", None)
    }

    /// `GET /metrics`.
    pub fn metrics(&self) -> Result<Value, ClientError> {
        self.request("GET", "/metrics", None)
    }

    /// `POST /sweeps`; returns the new sweep's id.
    pub fn submit(&self, body: &Value) -> Result<u64, ClientError> {
        let response = self.request("POST", "/sweeps", Some(body))?;
        response
            .get("id")
            .and_then(Value::as_u64)
            .ok_or_else(|| ClientError::Protocol("sweep response carries no id".to_string()))
    }

    /// `GET /sweeps/{id}`.
    pub fn sweep(&self, id: u64) -> Result<Value, ClientError> {
        self.request("GET", &format!("/sweeps/{id}"), None)
    }

    /// `GET /sweeps/{id}/results`.
    pub fn results(&self, id: u64) -> Result<Value, ClientError> {
        self.request("GET", &format!("/sweeps/{id}/results"), None)
    }

    /// `DELETE /sweeps/{id}`.
    pub fn cancel(&self, id: u64) -> Result<Value, ClientError> {
        self.request("DELETE", &format!("/sweeps/{id}"), None)
    }

    /// `GET /cells/{id}` — `Ok(None)` when the cell is not cached.
    pub fn cell(&self, cell_id: &str) -> Result<Option<Value>, ClientError> {
        match self.request("GET", &format!("/cells/{cell_id}"), None) {
            Ok(v) => Ok(Some(v)),
            Err(ClientError::Http(404, msg)) if msg.contains("not cached") => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Streams `GET /sweeps/{id}/events`, invoking `on_event` per
    /// event as it arrives; returns when the server closes the stream.
    pub fn stream_events(
        &self,
        id: u64,
        mut on_event: impl FnMut(&Value),
    ) -> Result<(), ClientError> {
        // Only the connection phase retries: once events flow, a retry
        // would replay the stream from the start and duplicate them.
        let mut reader = self.retrying(|| self.open_event_stream(id))?;
        // Chunk boundaries and event boundaries are independent;
        // accumulate bytes and peel complete newline-terminated events.
        let mut buffer = String::new();
        loop {
            let mut size_line = String::new();
            if reader.read_line(&mut size_line)? == 0 {
                break; // server closed without the final chunk; treat as end
            }
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| ClientError::Protocol(format!("bad chunk size '{size_line}'")))?;
            if size == 0 {
                break;
            }
            let mut chunk = vec![0u8; size + 2]; // payload + CRLF
            reader.read_exact(&mut chunk)?;
            chunk.truncate(size);
            buffer.push_str(
                std::str::from_utf8(&chunk)
                    .map_err(|_| ClientError::Protocol("event chunk is not UTF-8".to_string()))?,
            );
            while let Some(newline) = buffer.find('\n') {
                let line: String = buffer.drain(..=newline).collect();
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                let event: Value = serde_json::from_str(line)
                    .map_err(|e| ClientError::Protocol(format!("bad event JSON: {e:?}")))?;
                on_event(&event);
            }
        }
        Ok(())
    }

    /// Submits nothing new — streams an existing sweep's events until
    /// it closes, then returns its final status.
    pub fn wait(&self, id: u64) -> Result<Value, ClientError> {
        self.stream_events(id, |_| {})?;
        self.sweep(id)
    }

    /// Opens the event-stream connection and reads the response head;
    /// the returned reader is positioned at the first chunk.
    fn open_event_stream(&self, id: u64) -> Result<BufReader<TcpStream>, ClientError> {
        let mut stream = TcpStream::connect(&self.host)?;
        write!(
            stream,
            "GET /sweeps/{id}/events HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n\r\n",
            self.host
        )?;
        stream.flush()?;
        let mut reader = BufReader::new(stream);
        let (status, chunked, _content_length) = read_response_head(&mut reader)?;
        if status != 200 {
            let body = read_plain_body(&mut reader, None)?;
            return Err(ClientError::Http(status, error_message(&body)));
        }
        if !chunked {
            return Err(ClientError::Protocol(
                "event stream is not chunked".to_string(),
            ));
        }
        Ok(reader)
    }

    /// Runs `attempt` up to `1 + retries` times, sleeping the shared
    /// capped-exponential backoff between transient failures.
    fn retrying<T>(
        &self,
        mut attempt: impl FnMut() -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut failures = 0usize;
        loop {
            match attempt() {
                Err(e) if failures < self.retries as usize && is_transient(&e) => {
                    std::thread::sleep(capped_backoff(self.backoff, self.backoff_cap, failures));
                    failures += 1;
                }
                other => return other,
            }
        }
    }

    /// One request, one response body parsed as JSON, with transient
    /// errors retried.
    fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&Value>,
    ) -> Result<Value, ClientError> {
        self.retrying(|| self.request_once(method, path, body))
    }

    /// A single request attempt.
    fn request_once(
        &self,
        method: &str,
        path: &str,
        body: Option<&Value>,
    ) -> Result<Value, ClientError> {
        let mut stream = TcpStream::connect(&self.host)?;
        match body {
            Some(value) => {
                let text = serde_json::to_string(value).expect("serialising a Value cannot fail");
                write!(
                    stream,
                    "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{text}",
                    self.host,
                    text.len(),
                )?;
            }
            None => {
                write!(
                    stream,
                    "{method} {path} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n\r\n",
                    self.host
                )?;
            }
        }
        stream.flush()?;
        let mut reader = BufReader::new(stream);
        let (status, chunked, content_length) = read_response_head(&mut reader)?;
        let text = if chunked {
            read_chunked_body(&mut reader)?
        } else {
            read_plain_body(&mut reader, content_length)?
        };
        let value: Value = serde_json::from_str(&text)
            .map_err(|e| ClientError::Protocol(format!("response is not JSON: {e:?}")))?;
        if (200..300).contains(&status) {
            Ok(value)
        } else {
            Err(ClientError::Http(status, error_message(&text)))
        }
    }
}

/// Pulls the server's `{"error": ...}` message out of a body, falling
/// back to the raw text.
fn error_message(body: &str) -> String {
    serde_json::from_str::<Value>(body)
        .ok()
        .and_then(|v| v.get("error").and_then(Value::as_str).map(String::from))
        .unwrap_or_else(|| body.trim().to_string())
}

/// Parses the status line and headers; returns (status, chunked,
/// content-length).
fn read_response_head(
    reader: &mut BufReader<TcpStream>,
) -> Result<(u16, bool, Option<usize>), ClientError> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        // The server accepted and dropped us without a byte (accept
        // fault, crash): a connection-level failure, hence retryable.
        return Err(ClientError::Io(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed before a response arrived",
        )));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::Protocol(format!("bad status line '{status_line}'")))?;
    let mut chunked = false;
    let mut content_length = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line.trim().is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            if name == "transfer-encoding" && value.eq_ignore_ascii_case("chunked") {
                chunked = true;
            } else if name == "content-length" {
                content_length = value.parse().ok();
            }
        }
    }
    Ok((status, chunked, content_length))
}

fn read_plain_body(
    reader: &mut BufReader<TcpStream>,
    content_length: Option<usize>,
) -> Result<String, ClientError> {
    let mut body = Vec::new();
    match content_length {
        Some(len) => {
            body.resize(len, 0);
            reader.read_exact(&mut body)?;
        }
        None => {
            reader.read_to_end(&mut body)?;
        }
    }
    String::from_utf8(body).map_err(|_| ClientError::Protocol("body is not UTF-8".to_string()))
}

fn read_chunked_body(reader: &mut BufReader<TcpStream>) -> Result<String, ClientError> {
    let mut body = String::new();
    loop {
        let mut size_line = String::new();
        if reader.read_line(&mut size_line)? == 0 {
            break;
        }
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| ClientError::Protocol(format!("bad chunk size '{size_line}'")))?;
        if size == 0 {
            break;
        }
        let mut chunk = vec![0u8; size + 2];
        reader.read_exact(&mut chunk)?;
        chunk.truncate(size);
        body.push_str(
            std::str::from_utf8(&chunk)
                .map_err(|_| ClientError::Protocol("chunk is not UTF-8".to_string()))?,
        );
    }
    Ok(body)
}

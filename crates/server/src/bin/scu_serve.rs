//! The sweep daemon.
//!
//! ```text
//! scu_serve [--addr HOST] [--port N] [harness flags]
//! ```
//!
//! Binds `HOST:N` (default `127.0.0.1:7878`; port 0 asks the OS for an
//! ephemeral port) and prints the resolved address on stdout so
//! scripts can scrape it. The shared harness flags (`--jobs`,
//! `--sim-threads`, `--no-cache`, `--retries`) configure the batch
//! harness; `SCU_SCALE`/`SCU_SEED` configure the served matrix exactly
//! like the CLI sweeps.
//!
//! Hardening knobs: `--max-pending N` caps queued cells (excess sweeps
//! get `429 Retry-After`), `--max-conns N` caps connections waiting
//! for a handler (excess get `503`), `--max-retained N` caps how many
//! finished sweeps stay queryable in memory (older ones evict;
//! results survive in the cache), and `--request-deadline SECS`
//! bounds how long one request may take to arrive in full (the
//! slowloris cutoff).
//!
//! The first SIGINT drains gracefully: new submissions are refused,
//! the running batch finishes and reaches the cache and journal, event
//! streams close, and the process exits 0. A second SIGINT kills
//! immediately (the handler re-arms the default disposition).

use scu_harness::CliArgs;
use scu_server::{Scheduler, SchedulerConfig, Server, ServerConfig};

const USAGE: &str = "scu_serve options:\n  \
    --addr HOST       bind address (default: 127.0.0.1)\n  \
    --port N          bind port (default: 7878; 0 = OS-assigned)\n  \
    --max-pending N   cap on queued cells before sweeps are shed with 429\n  \
    --max-conns N     cap on connections waiting for a handler (shed with 503)\n  \
    --max-retained N  cap on finished sweeps kept queryable in memory\n  \
    --request-deadline SECS\n                    \
    wall-clock budget for reading one request (slowloris cutoff)\n\
plus the shared harness flags (--jobs, --sim-threads, --no-cache, --retries)";

fn main() {
    let args = CliArgs::from_env();
    let mut addr = "127.0.0.1".to_string();
    let mut port = 7878u16;
    let mut scheduler_cfg = SchedulerConfig::from_cli(&args);
    let mut server_cfg = ServerConfig::default();
    let mut rest = args.rest.iter();
    while let Some(arg) = rest.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (arg.as_str(), None),
        };
        let mut value = |what: &str| -> String {
            inline
                .clone()
                .or_else(|| rest.next().cloned())
                .unwrap_or_else(|| {
                    eprintln!("{flag} expects {what}\n{USAGE}");
                    std::process::exit(2);
                })
        };
        match flag {
            "--addr" => addr = value("a bind address"),
            "--port" => {
                let v = value("a port number");
                port = v.parse().unwrap_or_else(|_| {
                    eprintln!("--port expects a number 0-65535, got '{v}'\n{USAGE}");
                    std::process::exit(2);
                });
            }
            "--max-pending" => {
                let v = value("a cell count");
                scheduler_cfg.max_pending_cells = parse_or_die(flag, &v, "a positive number");
            }
            "--max-conns" => {
                let v = value("a connection count");
                server_cfg.max_queued_conns = parse_or_die(flag, &v, "a positive number");
            }
            "--max-retained" => {
                let v = value("a sweep count");
                scheduler_cfg.max_retained_sweeps = parse_or_die(flag, &v, "a positive number");
            }
            "--request-deadline" => {
                let v = value("a number of seconds");
                let secs: f64 = parse_or_die(flag, &v, "a number of seconds");
                if !secs.is_finite() || secs <= 0.0 {
                    eprintln!("--request-deadline expects a positive number of seconds\n{USAGE}");
                    std::process::exit(2);
                }
                server_cfg.request_deadline = std::time::Duration::from_secs_f64(secs);
            }
            "--help" | "-h" => {
                println!("{USAGE}\n{}", scu_harness::cli::USAGE);
                return;
            }
            other => {
                eprintln!("unexpected argument '{other}'\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    scu_algos::SimThreads::set(args.sim_threads);
    if let Err(e) = scu_algos::ExperimentConfig::from_env().validate() {
        eprintln!("{e}");
        std::process::exit(2);
    }
    // Build-once graphs survive daemon restarts: the artifact store
    // mmaps the same files every sweep, every restart.
    scu_algos::mount_graph_artifacts(
        (!args.no_graph_artifacts).then(|| scu_harness::session::DEFAULT_GRAPH_DIR.into()),
    );
    let scheduler = Scheduler::new(scheduler_cfg);
    let server = match Server::bind_with(&format!("{addr}:{port}"), scheduler, server_cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {addr}:{port}: {e}");
            std::process::exit(1);
        }
    };
    // Scraped by scripts and the CI smoke test; keep the shape stable,
    // and flush explicitly — stdout is block-buffered into a pipe.
    println!("scu-serve listening on http://{}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    scu_harness::cancel::install_sigint_handler();
    let handle = server.handle();
    std::thread::Builder::new()
        .name("scu-sigint-watch".to_string())
        .spawn(move || {
            while !scu_harness::cancel::cancelled() {
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
            eprintln!("scu-serve: SIGINT — draining in-flight cells");
            handle.shutdown();
        })
        .expect("spawning the SIGINT watcher");

    server.run();
    eprintln!("scu-serve: drained and journaled; goodbye");
}

fn parse_or_die<T: std::str::FromStr>(flag: &str, v: &str, what: &str) -> T {
    v.parse().unwrap_or_else(|_| {
        eprintln!("{flag} expects {what}, got '{v}'\n{USAGE}");
        std::process::exit(2);
    })
}

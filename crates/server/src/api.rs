//! The sweep-request JSON surface and its validation.
//!
//! A `POST /sweeps` body names cells one of two ways:
//!
//! ```json
//! {"filter": "BFS/kron"}
//! {"filter": "BFS/", "modes": ["gpu", "scu-enhanced"]}
//! {"cells": [{"algorithm": "BFS", "dataset": "kron",
//!             "system": "TX1", "mode": "scu-enhanced"}]}
//! ```
//!
//! Either shape may add `"deadline_secs": N` — a wall-clock budget for
//! the whole sweep, after which unresolved cells report `cancelled`.
//!
//! Either way the request resolves to cells of the server's own
//! experiment matrix — the same 240-cell plan the CLI sweeps run — so
//! a served result is byte-identical to `run_one`'s and shares its
//! cache entry. Requests naming anything outside the matrix are
//! rejected with a message listing the bad name.

use scu_algos::cell::Cell;
use scu_algos::experiment::{plan_cells, ExperimentConfig, ALL_MODES};
use scu_algos::runner::{Algorithm, Mode};
use scu_algos::SystemKind;
use scu_graph::Dataset;
use serde_json::Value;

/// Resolves a `POST /sweeps` body to planned cells, in request order,
/// duplicates removed.
///
/// # Errors
///
/// Returns a human-readable message for malformed JSON shapes, unknown
/// algorithm/dataset/system/mode names, filters matching nothing, and
/// empty cell lists.
pub fn parse_sweep_request(body: &Value, cfg: &ExperimentConfig) -> Result<Vec<Cell>, String> {
    let cells = match (body.get("filter"), body.get("cells")) {
        (Some(_), Some(_)) => {
            return Err("request must name either 'filter' or 'cells', not both".to_string())
        }
        (Some(filter), None) => from_filter(filter, body.get("modes"), cfg)?,
        (None, Some(specs)) => from_specs(specs, cfg)?,
        (None, None) => {
            return Err("request must carry a 'filter' string or a 'cells' array".to_string())
        }
    };
    let mut seen = Vec::new();
    let mut unique = Vec::new();
    for cell in cells {
        let id = cell.id();
        if !seen.contains(&id) {
            seen.push(id);
            unique.push(cell);
        }
    }
    Ok(unique)
}

/// Upper bound on `deadline_secs` — roughly thirty years. Anything
/// larger is indistinguishable from "no deadline" for a sweep, and
/// values past ~1.8e19 would panic `Duration::from_secs_f64`, so the
/// bound keeps hostile bodies on the 400 path instead of a worker
/// thread's unwind path.
pub const MAX_DEADLINE_SECS: f64 = 1e9;

/// The optional `deadline_secs` field: a positive number of seconds of
/// wall clock the whole sweep may take before the scheduler
/// force-cancels whatever has not resolved.
///
/// # Errors
///
/// Returns a message when the field is present but not a positive
/// number of at most [`MAX_DEADLINE_SECS`] seconds.
pub fn parse_deadline(body: &Value) -> Result<Option<std::time::Duration>, String> {
    let Some(field) = body.get("deadline_secs") else {
        return Ok(None);
    };
    let secs = field
        .as_f64()
        .or_else(|| field.as_u64().map(|n| n as f64))
        .filter(|s| s.is_finite() && *s > 0.0 && *s <= MAX_DEADLINE_SECS)
        .ok_or_else(|| {
            format!("'deadline_secs' must be a positive number of seconds (at most {MAX_DEADLINE_SECS:e})")
        })?;
    Ok(Some(std::time::Duration::from_secs_f64(secs)))
}

fn from_filter(
    filter: &Value,
    modes: Option<&Value>,
    cfg: &ExperimentConfig,
) -> Result<Vec<Cell>, String> {
    let filter = filter
        .as_str()
        .ok_or_else(|| "'filter' must be a string".to_string())?;
    let modes: Vec<Mode> = match modes {
        None => ALL_MODES.to_vec(),
        Some(list) => list
            .as_array()
            .ok_or_else(|| "'modes' must be an array of mode names".to_string())?
            .iter()
            .map(|m| {
                let name = m
                    .as_str()
                    .ok_or_else(|| "'modes' entries must be strings".to_string())?;
                Mode::from_name(name).ok_or_else(|| format!("unknown mode '{name}'"))
            })
            .collect::<Result<_, String>>()?,
    };
    if modes.is_empty() {
        return Err("'modes' must not be empty".to_string());
    }
    let cells = plan_cells(cfg, &modes, Some(filter));
    if cells.is_empty() {
        return Err(format!(
            "filter '{filter}' matches no cell of the experiment matrix"
        ));
    }
    Ok(cells)
}

fn from_specs(specs: &Value, cfg: &ExperimentConfig) -> Result<Vec<Cell>, String> {
    let specs = specs
        .as_array()
        .ok_or_else(|| "'cells' must be an array".to_string())?;
    if specs.is_empty() {
        return Err("'cells' must not be empty".to_string());
    }
    specs
        .iter()
        .map(|spec| parse_cell_spec(spec, cfg))
        .collect()
}

fn parse_cell_spec(spec: &Value, cfg: &ExperimentConfig) -> Result<Cell, String> {
    let name = |field: &str| -> Result<&str, String> {
        spec.get(field)
            .and_then(Value::as_str)
            .ok_or_else(|| format!("cell spec is missing the '{field}' string"))
    };
    let algorithm = name("algorithm")
        .and_then(|n| Algorithm::from_name(n).ok_or_else(|| format!("unknown algorithm '{n}'")))?;
    let dataset = name("dataset")
        .and_then(|n| Dataset::from_name(n).ok_or_else(|| format!("unknown dataset '{n}'")))?;
    let system = name("system")
        .and_then(|n| SystemKind::from_name(n).ok_or_else(|| format!("unknown system '{n}'")))?;
    let mode = name("mode")
        .and_then(|n| Mode::from_name(n).ok_or_else(|| format!("unknown mode '{n}'")))?;
    if !cfg.datasets.contains(&dataset) || !cfg.algos.contains(&algorithm) {
        return Err(format!(
            "cell {}/{}/{}/{} is outside this server's experiment matrix",
            algorithm.name(),
            dataset.name(),
            system.name(),
            mode.name()
        ));
    }
    Ok(cfg.cell(algorithm, dataset, system, mode))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::new()
    }

    fn obj(pairs: Vec<(&str, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    #[test]
    fn filter_resolves_matrix_cells() {
        let body = obj(vec![("filter", Value::Str("BFS/kron".into()))]);
        let cells = parse_sweep_request(&body, &cfg()).unwrap();
        assert_eq!(cells.len(), 8, "2 systems x 4 modes");
        assert!(cells.iter().all(|c| c.id().contains("BFS/kron")));
    }

    #[test]
    fn filter_with_modes_narrows_further() {
        let body = obj(vec![
            ("filter", Value::Str("BFS/kron".into())),
            ("modes", Value::Array(vec![Value::Str("gpu".into())])),
        ]);
        let cells = parse_sweep_request(&body, &cfg()).unwrap();
        assert_eq!(cells.len(), 2);
        assert!(cells.iter().all(|c| c.mode == Mode::GpuBaseline));
    }

    #[test]
    fn explicit_cell_specs_resolve_and_dedup() {
        let spec = obj(vec![
            ("algorithm", Value::Str("BFS".into())),
            ("dataset", Value::Str("kron".into())),
            ("system", Value::Str("TX1".into())),
            ("mode", Value::Str("scu-enhanced".into())),
        ]);
        let body = obj(vec![("cells", Value::Array(vec![spec.clone(), spec]))]);
        let cells = parse_sweep_request(&body, &cfg()).unwrap();
        assert_eq!(cells.len(), 1, "duplicate specs collapse");
        assert_eq!(cells[0].id(), "BFS/kron/TX1/scu-enhanced");
        // The resolved cell is exactly the planner's cell — same cache
        // key, same result bytes.
        let planned = plan_cells(&cfg(), &ALL_MODES, Some("BFS/kron/TX1/scu-enhanced"));
        assert_eq!(cells[0], planned[0]);
    }

    #[test]
    fn bad_names_are_rejected_with_the_offender() {
        let spec = obj(vec![
            ("algorithm", Value::Str("DIJKSTRA".into())),
            ("dataset", Value::Str("kron".into())),
            ("system", Value::Str("TX1".into())),
            ("mode", Value::Str("gpu".into())),
        ]);
        let body = obj(vec![("cells", Value::Array(vec![spec]))]);
        let err = parse_sweep_request(&body, &cfg()).unwrap_err();
        assert!(err.contains("DIJKSTRA"), "{err}");
    }

    #[test]
    fn deadline_parses_and_rejects_nonsense() {
        assert_eq!(parse_deadline(&obj(vec![])), Ok(None));
        assert_eq!(
            parse_deadline(&obj(vec![("deadline_secs", Value::F64(1.5))])),
            Ok(Some(std::time::Duration::from_secs_f64(1.5)))
        );
        assert_eq!(
            parse_deadline(&obj(vec![("deadline_secs", Value::U64(30))])),
            Ok(Some(std::time::Duration::from_secs(30)))
        );
        assert!(parse_deadline(&obj(vec![("deadline_secs", Value::F64(0.0))])).is_err());
        assert!(parse_deadline(&obj(vec![("deadline_secs", Value::F64(-2.0))])).is_err());
        assert!(parse_deadline(&obj(vec![("deadline_secs", Value::Str("soon".into()))])).is_err());
    }

    /// `Duration::from_secs_f64` panics past ~1.85e19 seconds; absurd
    /// deadlines must land on the 400 path, never a worker unwind.
    #[test]
    fn absurd_deadlines_are_rejected_without_panicking() {
        assert!(parse_deadline(&obj(vec![("deadline_secs", Value::F64(1e20))])).is_err());
        assert!(parse_deadline(&obj(vec![("deadline_secs", Value::F64(f64::MAX))])).is_err());
        assert!(parse_deadline(&obj(vec![("deadline_secs", Value::F64(f64::INFINITY))])).is_err());
        assert!(parse_deadline(&obj(vec![("deadline_secs", Value::F64(f64::NAN))])).is_err());
        assert!(parse_deadline(&obj(vec![("deadline_secs", Value::U64(u64::MAX))])).is_err());
        assert_eq!(
            parse_deadline(&obj(vec![("deadline_secs", Value::F64(MAX_DEADLINE_SECS))])),
            Ok(Some(std::time::Duration::from_secs_f64(MAX_DEADLINE_SECS)))
        );
    }

    #[test]
    fn malformed_shapes_are_rejected() {
        let c = cfg();
        assert!(parse_sweep_request(&obj(vec![]), &c).is_err());
        assert!(parse_sweep_request(
            &obj(vec![
                ("filter", Value::Str("x".into())),
                ("cells", Value::Array(vec![])),
            ]),
            &c
        )
        .is_err());
        assert!(parse_sweep_request(&obj(vec![("cells", Value::Array(vec![]))]), &c).is_err());
        let err = parse_sweep_request(
            &obj(vec![("filter", Value::Str("no-such-cell".into()))]),
            &c,
        )
        .unwrap_err();
        assert!(err.contains("matches no cell"), "{err}");
    }
}

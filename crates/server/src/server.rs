//! The HTTP front end: accept loop, connection workers, and routing.
//!
//! | method | path                  | behaviour                                   |
//! |--------|-----------------------|---------------------------------------------|
//! | GET    | `/healthz`            | liveness + uptime + load state              |
//! | GET    | `/metrics`            | scheduler counters (dedup proof lives here) |
//! | POST   | `/sweeps`             | submit a sweep (see [`crate::api`])         |
//! | GET    | `/sweeps/{id}`        | status + per-cell states                    |
//! | GET    | `/sweeps/{id}/events` | chunked NDJSON stream of live completions   |
//! | GET    | `/sweeps/{id}/results`| resolved cell values, planned order         |
//! | DELETE | `/sweeps/{id}`        | cancel                                      |
//! | GET    | `/cells/{cell id}`    | cache read, zero recompute (404 if cold)    |
//!
//! Connections are handed to a small fixed worker pool; event-stream
//! connections occupy a worker until the sweep closes, so the pool is
//! sized above the handful of concurrent clients a workstation daemon
//! sees.
//!
//! Degraded-conditions posture (see DESIGN.md §3e):
//!
//! - every accepted socket gets read/write timeouts plus a wall-clock
//!   request deadline, so a slowloris client is cut off, not served;
//! - the connection queue is bounded — overflow connections are shed
//!   with an immediate `503 Retry-After` instead of queueing without
//!   bound;
//! - a client that vanishes mid-event-stream releases its sweep
//!   (`Scheduler::client_disconnected`), so orphaned work stops
//!   consuming the shared harness.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use scu_harness::error::lock_unpoisoned;
use scu_harness::failpoint;
use serde_json::Value;

use crate::api;
use crate::http::{self, ChunkedWriter, ReadLimits, Request};
use crate::scheduler::Scheduler;

/// Socket and pool knobs; defaults suit a workstation daemon.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connection handler threads. Streaming clients hold one each.
    pub workers: usize,
    /// Accepted connections waiting for a worker; beyond this they are
    /// shed with `503 Retry-After`.
    pub max_queued_conns: usize,
    /// Per-`read(2)` socket timeout.
    pub read_timeout: Duration,
    /// Per-`write(2)` socket timeout (bounds a stalled stream write).
    pub write_timeout: Duration,
    /// Total wall-clock budget for reading one request — the slowloris
    /// bound (per-read timeouts alone never fire for a client that
    /// trickles a byte per window).
    pub request_deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 8,
            max_queued_conns: 64,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            request_deadline: Duration::from_secs(30),
        }
    }
}

/// Work queue feeding accepted connections to the handler pool,
/// bounded so a connection flood sheds instead of accumulating.
struct ConnQueue {
    queue: Mutex<(VecDeque<TcpStream>, bool)>,
    ready: Condvar,
    cap: usize,
    /// Connections shed because the queue was full.
    shed: AtomicU64,
}

impl ConnQueue {
    fn new(cap: usize) -> Arc<Self> {
        Arc::new(ConnQueue {
            queue: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
            cap: cap.max(1),
            shed: AtomicU64::new(0),
        })
    }

    /// Enqueues the connection, or hands it back when the queue is at
    /// capacity so the caller can shed it.
    fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut guard = lock_unpoisoned(&self.queue, "connection queue");
        if guard.0.len() >= self.cap {
            return Err(stream);
        }
        guard.0.push_back(stream);
        drop(guard);
        self.ready.notify_one();
        Ok(())
    }

    fn close(&self) {
        lock_unpoisoned(&self.queue, "connection queue").1 = true;
        self.ready.notify_all();
    }

    /// Pops the next connection; `None` once closed and drained.
    fn pop(&self) -> Option<TcpStream> {
        let mut guard = lock_unpoisoned(&self.queue, "connection queue");
        loop {
            if let Some(stream) = guard.0.pop_front() {
                return Some(stream);
            }
            if guard.1 {
                return None;
            }
            guard = self
                .ready
                .wait(guard)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    fn shed_count(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    scheduler: Arc<Scheduler>,
    cfg: ServerConfig,
    stop: Arc<AtomicBool>,
}

/// Stops a running [`Server`] from another thread (the SIGINT watcher,
/// a test).
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    scheduler: Arc<Scheduler>,
    stop: Arc<AtomicBool>,
}

impl ServerHandle {
    /// Graceful shutdown: refuse new work, drain the scheduler (the
    /// running batch finishes and reaches cache + journal), then
    /// unblock the accept loop. Blocks until the scheduler is drained.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.scheduler.shutdown();
        // The accept loop blocks in accept(2); one throwaway
        // connection wakes it to observe the stop flag.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Binds the listener with default [`ServerConfig`]. Use port 0
    /// for an OS-assigned port.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (port in use, bad address).
    pub fn bind(addr: &str, scheduler: Arc<Scheduler>) -> std::io::Result<Server> {
        Server::bind_with(addr, scheduler, ServerConfig::default())
    }

    /// [`Server::bind`] with explicit socket/pool knobs.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (port in use, bad address).
    pub fn bind_with(
        addr: &str,
        scheduler: Arc<Scheduler>,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            scheduler,
            cfg,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("a bound listener has an address")
    }

    /// A handle that can stop this server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.local_addr(),
            scheduler: Arc::clone(&self.scheduler),
            stop: Arc::clone(&self.stop),
        }
    }

    /// Serves until [`ServerHandle::shutdown`]. Returns after every
    /// worker thread has drained — no leaked threads.
    pub fn run(self) {
        let queue = ConnQueue::new(self.cfg.max_queued_conns);
        let workers: Vec<_> = (0..self.cfg.workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let scheduler = Arc::clone(&self.scheduler);
                let cfg = self.cfg.clone();
                std::thread::Builder::new()
                    .name(format!("scu-http-{i}"))
                    .spawn(move || {
                        while let Some(mut stream) = queue.pop() {
                            handle_connection(&mut stream, &scheduler, &cfg, &queue);
                        }
                    })
                    .expect("spawning an HTTP worker")
            })
            .collect();
        for conn in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            match conn {
                Ok(stream) => {
                    // Failpoint site: a fault here models accept(2) or
                    // early-socket failures — the connection is dropped,
                    // the loop must keep serving.
                    if let Err(e) = failpoint::io("server-accept") {
                        eprintln!("[scu-server] accept failed: {e}");
                        continue;
                    }
                    if let Err(stream) = queue.push(stream) {
                        queue.shed.fetch_add(1, Ordering::Relaxed);
                        shed_connection(stream);
                    }
                }
                Err(e) => eprintln!("[scu-server] accept failed: {e}"),
            }
        }
        queue.close();
        for worker in workers {
            let _ = worker.join();
        }
    }
}

/// Best-effort `503 Retry-After` on a connection the queue cannot
/// hold; the write is bounded so a slow flood cannot stall the accept
/// loop.
fn shed_connection(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let _ = http::respond_error_with(
        &mut stream,
        503,
        &[("Retry-After", "1")],
        "server overloaded: connection queue is full; retry later",
    );
}

/// Reads one request, routes it, writes one response. All errors
/// degrade to an error response or a dropped connection — a bad client
/// never takes the server down.
fn handle_connection(
    stream: &mut TcpStream,
    scheduler: &Arc<Scheduler>,
    cfg: &ServerConfig,
    queue: &ConnQueue,
) {
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
    let limits = ReadLimits {
        deadline: Some(cfg.request_deadline),
        ..ReadLimits::default()
    };
    let request = match http::read_request(stream, &limits) {
        Ok(r) => r,
        Err(e) => {
            let status = match e.kind() {
                // The request deadline or a socket read timeout fired:
                // the client was too slow, not malformed.
                std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => 408,
                _ if e.to_string().contains("too large") => 413,
                _ => 400,
            };
            let _ = http::respond_error(stream, status, &format!("bad request: {e}"));
            return;
        }
    };
    // Every route error is a failed response write — the request was
    // fully read before routing, so by the time route() errors the
    // response has (at least partly) gone out, most visibly a chunked
    // event stream cut off by a vanished or stalled client. Appending
    // another response onto that partial one would corrupt the HTTP
    // framing; dropping the connection is the only well-formed ending.
    let _ = route(stream, &request, scheduler, queue);
}

fn route(
    stream: &mut TcpStream,
    req: &Request,
    scheduler: &Arc<Scheduler>,
    queue: &ConnQueue,
) -> std::io::Result<()> {
    let path = req.path.as_str();
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => http::respond_json(
            stream,
            200,
            &Value::Object(vec![
                ("status".to_string(), Value::Str("ok".to_string())),
                (
                    "load".to_string(),
                    Value::Str(scheduler.load_state().to_string()),
                ),
                (
                    "uptime_secs".to_string(),
                    Value::F64(scheduler.uptime_secs()),
                ),
                (
                    "matrix_cells".to_string(),
                    Value::U64(scheduler.matrix_size() as u64),
                ),
            ]),
        ),
        ("GET", "/metrics") => {
            let mut metrics = scheduler.metrics();
            if let Value::Object(fields) = &mut metrics {
                fields.push((
                    "shed_connections".to_string(),
                    Value::U64(queue.shed_count()),
                ));
            }
            http::respond_json(stream, 200, &metrics)
        }
        ("POST", "/sweeps") => submit_sweep(stream, req, scheduler),
        _ => {
            if let Some(rest) = path.strip_prefix("/sweeps/") {
                return route_sweep(stream, req, scheduler, rest);
            }
            if let Some(cell_id) = path.strip_prefix("/cells/") {
                return route_cell(stream, req, scheduler, cell_id);
            }
            http::respond_error(stream, 404, &format!("no route for {path}"))
        }
    }
}

fn submit_sweep(
    stream: &mut TcpStream,
    req: &Request,
    scheduler: &Arc<Scheduler>,
) -> std::io::Result<()> {
    let body_text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return http::respond_error(stream, 400, "body is not UTF-8"),
    };
    let body: Value = match serde_json::from_str(body_text) {
        Ok(v) => v,
        Err(e) => return http::respond_error(stream, 400, &format!("body is not JSON: {e:?}")),
    };
    let cells = match api::parse_sweep_request(&body, scheduler.experiment()) {
        Ok(c) => c,
        Err(e) => return http::respond_error(stream, 400, &e),
    };
    let deadline = match api::parse_deadline(&body) {
        Ok(d) => d,
        Err(e) => return http::respond_error(stream, 400, &e),
    };
    match scheduler.submit(cells, deadline) {
        Ok(sweep) => http::respond_json(
            stream,
            201,
            &Value::Object(vec![
                ("id".to_string(), Value::U64(sweep.id)),
                ("total".to_string(), Value::U64(sweep.cells.len() as u64)),
                (
                    "cells".to_string(),
                    Value::Array(
                        sweep
                            .cells
                            .iter()
                            .map(|id| Value::Str(id.clone()))
                            .collect(),
                    ),
                ),
            ]),
        ),
        Err(e) if e.contains("shutting down") => http::respond_error(stream, 503, &e),
        Err(e) if e.contains("overloaded") => {
            http::respond_error_with(stream, 429, &[("Retry-After", "1")], &e)
        }
        Err(e) => http::respond_error(stream, 400, &e),
    }
}

fn route_sweep(
    stream: &mut TcpStream,
    req: &Request,
    scheduler: &Arc<Scheduler>,
    rest: &str,
) -> std::io::Result<()> {
    let (id_text, tail) = match rest.split_once('/') {
        Some((id, tail)) => (id, Some(tail)),
        None => (rest, None),
    };
    let Ok(id) = id_text.parse::<u64>() else {
        return http::respond_error(stream, 400, &format!("bad sweep id '{id_text}'"));
    };
    let Some(sweep) = scheduler.sweep(id) else {
        return http::respond_error(stream, 404, &format!("no sweep {id}"));
    };
    match (req.method.as_str(), tail) {
        ("GET", None) => http::respond_json(stream, 200, &sweep.status()),
        ("GET", Some("results")) => http::respond_json(stream, 200, &sweep.results()),
        ("GET", Some("events")) => {
            let streamed = (|| {
                let mut writer = ChunkedWriter::start(stream, 200)?;
                let mut cursor = 0usize;
                loop {
                    let (events, done) = sweep.wait_events(cursor);
                    cursor += events.len();
                    for event in &events {
                        writer.send(event)?;
                    }
                    // `done` was read under the same lock as the copy,
                    // and nothing appends after it rises — the stream
                    // is complete.
                    if done {
                        break;
                    }
                }
                writer.finish()
            })();
            if let Err(e) = streamed {
                // The consumer vanished (or stalled past the write
                // timeout) — possibly before the response head was even
                // out: release its sweep so orphaned cells stop
                // consuming the harness, then drop the dead connection.
                scheduler.client_disconnected(id);
                return Err(e);
            }
            Ok(())
        }
        ("DELETE", None) => {
            scheduler.cancel_sweep(id);
            http::respond_json(
                stream,
                200,
                &Value::Object(vec![
                    ("id".to_string(), Value::U64(id)),
                    ("cancelled".to_string(), Value::Bool(true)),
                ]),
            )
        }
        _ => http::respond_error(stream, 405, "unsupported method for this sweep path"),
    }
}

fn route_cell(
    stream: &mut TcpStream,
    req: &Request,
    scheduler: &Arc<Scheduler>,
    cell_id: &str,
) -> std::io::Result<()> {
    if req.method != "GET" {
        return http::respond_error(stream, 405, "cells are read-only");
    }
    match scheduler.cached_cell(cell_id) {
        Err(e) => http::respond_error(stream, 404, &e),
        Ok(None) => http::respond_error(
            stream,
            404,
            &format!("cell {cell_id} is not cached yet — submit a sweep to compute it"),
        ),
        Ok(Some(value)) => http::respond_json(
            stream,
            200,
            &Value::Object(vec![
                ("cell".to_string(), Value::Str(cell_id.to_string())),
                ("cached".to_string(), Value::Bool(true)),
                ("value".to_string(), value),
            ]),
        ),
    }
}

//! The HTTP front end: accept loop, connection workers, and routing.
//!
//! | method | path                  | behaviour                                   |
//! |--------|-----------------------|---------------------------------------------|
//! | GET    | `/healthz`            | liveness + uptime                           |
//! | GET    | `/metrics`            | scheduler counters (dedup proof lives here) |
//! | POST   | `/sweeps`             | submit a sweep (see [`crate::api`])         |
//! | GET    | `/sweeps/{id}`        | status + per-cell states                    |
//! | GET    | `/sweeps/{id}/events` | chunked NDJSON stream of live completions   |
//! | GET    | `/sweeps/{id}/results`| resolved cell values, planned order         |
//! | DELETE | `/sweeps/{id}`        | cancel                                      |
//! | GET    | `/cells/{cell id}`    | cache read, zero recompute (404 if cold)    |
//!
//! Connections are handed to a small fixed worker pool; event-stream
//! connections occupy a worker until the sweep closes, so the pool is
//! sized above the handful of concurrent clients a workstation daemon
//! sees.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use scu_harness::error::lock_unpoisoned;
use serde_json::Value;

use crate::api;
use crate::http::{self, ChunkedWriter, Request};
use crate::scheduler::Scheduler;

/// Connection handler threads. Streaming clients hold a worker each.
const WORKERS: usize = 8;

/// Work queue feeding accepted connections to the handler pool.
struct ConnQueue {
    queue: Mutex<(VecDeque<TcpStream>, bool)>,
    ready: Condvar,
}

impl ConnQueue {
    fn new() -> Arc<Self> {
        Arc::new(ConnQueue {
            queue: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
        })
    }

    fn push(&self, stream: TcpStream) {
        lock_unpoisoned(&self.queue, "connection queue")
            .0
            .push_back(stream);
        self.ready.notify_one();
    }

    fn close(&self) {
        lock_unpoisoned(&self.queue, "connection queue").1 = true;
        self.ready.notify_all();
    }

    /// Pops the next connection; `None` once closed and drained.
    fn pop(&self) -> Option<TcpStream> {
        let mut guard = lock_unpoisoned(&self.queue, "connection queue");
        loop {
            if let Some(stream) = guard.0.pop_front() {
                return Some(stream);
            }
            if guard.1 {
                return None;
            }
            guard = self
                .ready
                .wait(guard)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    scheduler: Arc<Scheduler>,
    stop: Arc<AtomicBool>,
}

/// Stops a running [`Server`] from another thread (the SIGINT watcher,
/// a test).
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    scheduler: Arc<Scheduler>,
    stop: Arc<AtomicBool>,
}

impl ServerHandle {
    /// Graceful shutdown: refuse new work, drain the scheduler (the
    /// running batch finishes and reaches cache + journal), then
    /// unblock the accept loop. Blocks until the scheduler is drained.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.scheduler.shutdown();
        // The accept loop blocks in accept(2); one throwaway
        // connection wakes it to observe the stop flag.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Binds the listener. Use port 0 for an OS-assigned port.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (port in use, bad address).
    pub fn bind(addr: &str, scheduler: Arc<Scheduler>) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            scheduler,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("a bound listener has an address")
    }

    /// A handle that can stop this server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            addr: self.local_addr(),
            scheduler: Arc::clone(&self.scheduler),
            stop: Arc::clone(&self.stop),
        }
    }

    /// Serves until [`ServerHandle::shutdown`]. Returns after every
    /// worker thread has drained — no leaked threads.
    pub fn run(self) {
        let queue = ConnQueue::new();
        let workers: Vec<_> = (0..WORKERS)
            .map(|i| {
                let queue = Arc::clone(&queue);
                let scheduler = Arc::clone(&self.scheduler);
                std::thread::Builder::new()
                    .name(format!("scu-http-{i}"))
                    .spawn(move || {
                        while let Some(mut stream) = queue.pop() {
                            handle_connection(&mut stream, &scheduler);
                        }
                    })
                    .expect("spawning an HTTP worker")
            })
            .collect();
        for conn in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            match conn {
                Ok(stream) => queue.push(stream),
                Err(e) => eprintln!("[scu-server] accept failed: {e}"),
            }
        }
        queue.close();
        for worker in workers {
            let _ = worker.join();
        }
    }
}

/// Reads one request, routes it, writes one response. All errors
/// degrade to an error response or a dropped connection — a bad client
/// never takes the server down.
fn handle_connection(stream: &mut TcpStream, scheduler: &Arc<Scheduler>) {
    let request = match http::read_request(stream) {
        Ok(r) => r,
        Err(e) => {
            let _ = http::respond_error(stream, 400, &format!("malformed request: {e}"));
            return;
        }
    };
    if let Err(e) = route(stream, &request, scheduler) {
        // The stream is likely gone (client hung up mid-stream); a
        // best-effort error response is all that is left to try.
        let _ = http::respond_error(stream, 500, &format!("{e}"));
    }
}

fn route(stream: &mut TcpStream, req: &Request, scheduler: &Arc<Scheduler>) -> std::io::Result<()> {
    let path = req.path.as_str();
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => http::respond_json(
            stream,
            200,
            &Value::Object(vec![
                ("status".to_string(), Value::Str("ok".to_string())),
                (
                    "uptime_secs".to_string(),
                    Value::F64(scheduler.uptime_secs()),
                ),
                (
                    "matrix_cells".to_string(),
                    Value::U64(scheduler.matrix_size() as u64),
                ),
            ]),
        ),
        ("GET", "/metrics") => http::respond_json(stream, 200, &scheduler.metrics()),
        ("POST", "/sweeps") => submit_sweep(stream, req, scheduler),
        _ => {
            if let Some(rest) = path.strip_prefix("/sweeps/") {
                return route_sweep(stream, req, scheduler, rest);
            }
            if let Some(cell_id) = path.strip_prefix("/cells/") {
                return route_cell(stream, req, scheduler, cell_id);
            }
            http::respond_error(stream, 404, &format!("no route for {path}"))
        }
    }
}

fn submit_sweep(
    stream: &mut TcpStream,
    req: &Request,
    scheduler: &Arc<Scheduler>,
) -> std::io::Result<()> {
    let body_text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => return http::respond_error(stream, 400, "body is not UTF-8"),
    };
    let body: Value = match serde_json::from_str(body_text) {
        Ok(v) => v,
        Err(e) => return http::respond_error(stream, 400, &format!("body is not JSON: {e:?}")),
    };
    let cells = match api::parse_sweep_request(&body, scheduler.experiment()) {
        Ok(c) => c,
        Err(e) => return http::respond_error(stream, 400, &e),
    };
    match scheduler.submit(cells) {
        Ok(sweep) => http::respond_json(
            stream,
            201,
            &Value::Object(vec![
                ("id".to_string(), Value::U64(sweep.id)),
                ("total".to_string(), Value::U64(sweep.cells.len() as u64)),
                (
                    "cells".to_string(),
                    Value::Array(
                        sweep
                            .cells
                            .iter()
                            .map(|id| Value::Str(id.clone()))
                            .collect(),
                    ),
                ),
            ]),
        ),
        Err(e) if e.contains("shutting down") => http::respond_error(stream, 503, &e),
        Err(e) => http::respond_error(stream, 400, &e),
    }
}

fn route_sweep(
    stream: &mut TcpStream,
    req: &Request,
    scheduler: &Arc<Scheduler>,
    rest: &str,
) -> std::io::Result<()> {
    let (id_text, tail) = match rest.split_once('/') {
        Some((id, tail)) => (id, Some(tail)),
        None => (rest, None),
    };
    let Ok(id) = id_text.parse::<u64>() else {
        return http::respond_error(stream, 400, &format!("bad sweep id '{id_text}'"));
    };
    let Some(sweep) = scheduler.sweep(id) else {
        return http::respond_error(stream, 404, &format!("no sweep {id}"));
    };
    match (req.method.as_str(), tail) {
        ("GET", None) => http::respond_json(stream, 200, &sweep.status()),
        ("GET", Some("results")) => http::respond_json(stream, 200, &sweep.results()),
        ("GET", Some("events")) => {
            let mut writer = ChunkedWriter::start(stream, 200)?;
            let mut cursor = 0usize;
            loop {
                let (events, done) = sweep.wait_events(cursor);
                cursor += events.len();
                for event in &events {
                    writer.send(event)?;
                }
                // `done` was read under the same lock as the copy, and
                // nothing appends after it rises — the stream is
                // complete.
                if done {
                    break;
                }
            }
            writer.finish()
        }
        ("DELETE", None) => {
            scheduler.cancel_sweep(id);
            http::respond_json(
                stream,
                200,
                &Value::Object(vec![
                    ("id".to_string(), Value::U64(id)),
                    ("cancelled".to_string(), Value::Bool(true)),
                ]),
            )
        }
        _ => http::respond_error(stream, 405, "unsupported method for this sweep path"),
    }
}

fn route_cell(
    stream: &mut TcpStream,
    req: &Request,
    scheduler: &Arc<Scheduler>,
    cell_id: &str,
) -> std::io::Result<()> {
    if req.method != "GET" {
        return http::respond_error(stream, 405, "cells are read-only");
    }
    match scheduler.cached_cell(cell_id) {
        Err(e) => http::respond_error(stream, 404, &e),
        Ok(None) => http::respond_error(
            stream,
            404,
            &format!("cell {cell_id} is not cached yet — submit a sweep to compute it"),
        ),
        Ok(Some(value)) => http::respond_json(
            stream,
            200,
            &Value::Object(vec![
                ("cell".to_string(), Value::Str(cell_id.to_string())),
                ("cached".to_string(), Value::Bool(true)),
                ("value".to_string(), value),
            ]),
        ),
    }
}

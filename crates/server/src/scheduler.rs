//! The sweep scheduler: dedup, in-flight coalescing, batched
//! execution, and per-sweep event streams.
//!
//! Clients submit overlapping sets of matrix cells; the scheduler
//! guarantees each unique cell is computed **at most once** regardless
//! of how many sweeps want it:
//!
//! 1. **Cache dedup** — a cell already in the on-disk
//!    [`ResultCache`] resolves at submission time without touching the
//!    queue (`cache_hits`).
//! 2. **In-flight coalescing** — a cell already queued or running
//!    attaches the new sweep as a waiter on the existing computation
//!    (`coalesced`); only genuinely new cells are scheduled
//!    (`scheduled`).
//! 3. **Batched execution** — a single dispatcher thread drains the
//!    pending set into one [`JobGraph`] and runs it through one shared
//!    [`Harness`], inheriting its result cache, journal-backed resume,
//!    retries, fault isolation, and the jobs × sim-threads core clamp.
//!
//! Completions stream to every waiting sweep through the harness's
//! progress-observer hook; a panicking cell fails only the sweeps that
//! asked for it. Shutdown — and a batch whose every waiter cancelled,
//! disconnected, or ran out of deadline — raises that batch's drain
//! flag: in-flight cells finish and reach the journal, unstarted cells
//! report `cancelled`, and a restarted daemon resumes warm from the
//! cache and journal. Admission is bounded: a pending backlog past
//! `max_pending_cells` rejects new sweeps ("overloaded" → HTTP 429),
//! and each sweep may carry a wall-clock deadline enforced by a
//! watcher thread. Retention is bounded too: finished sweeps past
//! `max_retained_sweeps` are evicted oldest-first at submission, so a
//! long-lived daemon's in-memory sweep state cannot grow without
//! bound (results stay reachable through the on-disk cache).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use scu_algos::cell::Cell;
use scu_algos::experiment::{plan_cells, ExperimentConfig, ALL_MODES};
use scu_harness::error::lock_unpoisoned;
use scu_harness::{CliArgs, Harness, Job, JobGraph, Outcome, ProgressEvent, ResultCache};
use serde_json::Value;

/// Everything the scheduler needs to build its matrix and harness.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// The experiment knobs (scale, seed, datasets, algorithms) — the
    /// served matrix is exactly this configuration's 240-cell plan.
    pub experiment: ExperimentConfig,
    /// Worker threads per batch (the harness clamps jobs ×
    /// sim-threads to the machine).
    pub jobs: usize,
    /// Per-cell simulator timing lanes, declared to the clamp.
    pub sim_threads: usize,
    /// Retries for failed cells.
    pub retries: u32,
    /// On-disk result cache; `None` disables dedup-by-cache.
    pub cache_dir: Option<PathBuf>,
    /// Completion journal; `None` disables warm restarts.
    pub manifest: Option<PathBuf>,
    /// Admission cap: submissions are rejected (HTTP 429) while this
    /// many cells are already queued for the dispatcher. The running
    /// batch does not count — only the backlog behind it.
    pub max_pending_cells: usize,
    /// Retention cap: finished (done or cancelled) sweeps past this
    /// count are evicted oldest-first at the next submission, so a
    /// long-lived daemon's per-sweep state — result values and event
    /// logs — cannot grow without bound. Evicted ids answer 404;
    /// their results stay reachable through the on-disk cache
    /// (`GET /cells/{id}`). Open sweeps are never evicted.
    pub max_retained_sweeps: usize,
}

impl SchedulerConfig {
    /// Builds the configuration from the shared harness flags plus the
    /// `SCU_SCALE`/`SCU_SEED` environment, using the standard
    /// `results/` paths.
    pub fn from_cli(args: &CliArgs) -> Self {
        SchedulerConfig {
            experiment: ExperimentConfig::from_env(),
            jobs: args.jobs.max(1),
            sim_threads: args.sim_threads.max(1),
            retries: args.retries,
            cache_dir: (!args.no_cache)
                .then(|| PathBuf::from(scu_harness::session::DEFAULT_CACHE_DIR)),
            manifest: Some(PathBuf::from(scu_harness::session::DEFAULT_MANIFEST)),
            max_pending_cells: DEFAULT_MAX_PENDING_CELLS,
            max_retained_sweeps: DEFAULT_MAX_RETAINED_SWEEPS,
        }
    }
}

/// Default admission cap: several full matrices of backlog. Deep
/// enough that overlapping clients never see it, shallow enough that a
/// submission flood cannot grow the queue without bound.
pub const DEFAULT_MAX_PENDING_CELLS: usize = 4096;

/// Default retention cap for finished sweeps: generous for any client
/// that polls `GET /sweeps/{id}/results` after `done`, while bounding
/// what a submission flood can pin in memory.
pub const DEFAULT_MAX_RETAINED_SWEEPS: usize = 256;

/// Why a sweep was torn down before its cells resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReleaseReason {
    /// The client asked (`DELETE /sweeps/{id}`).
    Cancelled,
    /// The client vanished mid-event-stream.
    Disconnected,
    /// The sweep's wall-clock deadline expired.
    DeadlineExpired,
}

/// How one cell ended, as delivered to the sweeps waiting on it.
#[derive(Debug, Clone)]
enum CellOutcome {
    /// The result value, whether it came from cache/journal, and the
    /// compute duration in nanoseconds.
    Done(Value, bool, u64),
    /// The failure message.
    Failed(String),
    /// Never ran: the scheduler shut down or the sweep was cancelled.
    Cancelled,
}

/// Throughput attached to live completion events.
#[derive(Debug, Clone, Copy)]
struct Pace {
    cells_per_sec: f64,
    eta_ns: Option<u64>,
}

/// One submitted sweep: its planned cells and the event log clients
/// stream from.
pub struct SweepState {
    /// Server-assigned sweep id.
    pub id: u64,
    /// Planned cell ids, in request order.
    pub cells: Vec<String>,
    /// Wall-clock instant past which the sweep is force-cancelled.
    deadline: Option<Instant>,
    log: Mutex<SweepLog>,
    cond: Condvar,
}

#[derive(Default)]
struct SweepLog {
    /// Append-only JSON events; streaming clients replay from an index.
    events: Vec<Value>,
    /// Terminal state per resolved cell id.
    states: HashMap<String, CellOutcome>,
    /// Result values in resolution order (rendered in planned order).
    values: Vec<(String, Value)>,
    resolved: usize,
    done_cells: usize,
    cached_cells: usize,
    failed_cells: usize,
    cancelled_cells: usize,
    /// The whole sweep was cancelled by the client or shutdown.
    cancelled: bool,
    /// No more events will be appended.
    done: bool,
}

impl std::fmt::Debug for SweepState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepState")
            .field("id", &self.id)
            .field("cells", &self.cells)
            .finish_non_exhaustive()
    }
}

impl SweepState {
    fn new(id: u64, cells: Vec<String>, deadline: Option<Instant>) -> Arc<Self> {
        Arc::new(SweepState {
            id,
            cells,
            deadline,
            log: Mutex::new(SweepLog::default()),
            cond: Condvar::new(),
        })
    }

    /// Records one cell's terminal outcome, appends its event, and
    /// closes the sweep when it was the last. Late resolutions after a
    /// cancel are dropped.
    fn deliver(&self, cell_id: &str, outcome: &CellOutcome, pace: Option<Pace>) {
        let mut log = lock_unpoisoned(&self.log, "sweep log");
        if log.done || log.states.contains_key(cell_id) {
            return;
        }
        log.states.insert(cell_id.to_string(), outcome.clone());
        log.resolved += 1;
        let mut event = vec![
            ("type".to_string(), Value::Str("cell".to_string())),
            ("sweep".to_string(), Value::U64(self.id)),
            ("seq".to_string(), Value::U64(log.resolved as u64)),
            ("total".to_string(), Value::U64(self.cells.len() as u64)),
            ("cell".to_string(), Value::Str(cell_id.to_string())),
        ];
        match outcome {
            CellOutcome::Done(value, cached, duration_ns) => {
                log.done_cells += 1;
                if *cached {
                    log.cached_cells += 1;
                }
                log.values.push((cell_id.to_string(), value.clone()));
                event.push((
                    "label".to_string(),
                    Value::Str(if *cached { "cached" } else { "done" }.to_string()),
                ));
                event.push(("cached".to_string(), Value::Bool(*cached)));
                event.push(("duration_ns".to_string(), Value::U64(*duration_ns)));
            }
            CellOutcome::Failed(error) => {
                log.failed_cells += 1;
                event.push(("label".to_string(), Value::Str("FAILED".to_string())));
                event.push(("error".to_string(), Value::Str(error.clone())));
            }
            CellOutcome::Cancelled => {
                log.cancelled_cells += 1;
                event.push(("label".to_string(), Value::Str("cancelled".to_string())));
            }
        }
        if let Some(p) = pace {
            event.push(("cells_per_sec".to_string(), Value::F64(p.cells_per_sec)));
            if let Some(eta) = p.eta_ns {
                event.push(("eta_ns".to_string(), Value::U64(eta)));
            }
        }
        log.events.push(Value::Object(event));
        if log.resolved == self.cells.len() {
            log.done = true;
            let done = Value::Object(vec![
                ("type".to_string(), Value::Str("done".to_string())),
                ("sweep".to_string(), Value::U64(self.id)),
                ("total".to_string(), Value::U64(self.cells.len() as u64)),
                ("finished".to_string(), Value::U64(log.done_cells as u64)),
                ("cached".to_string(), Value::U64(log.cached_cells as u64)),
                ("failed".to_string(), Value::U64(log.failed_cells as u64)),
                (
                    "cancelled_cells".to_string(),
                    Value::U64(log.cancelled_cells as u64),
                ),
            ]);
            log.events.push(done);
        }
        self.cond.notify_all();
    }

    /// Marks the sweep cancelled, resolves every still-pending cell as
    /// `Cancelled`, and closes the stream through the normal done
    /// event — clients see a `cancelled` marker, one terminal event
    /// per remaining cell, then `done`. Late real resolutions are
    /// dropped by [`SweepState::deliver`]'s already-resolved guard.
    fn cancel(&self, reason: ReleaseReason) {
        {
            let mut log = lock_unpoisoned(&self.log, "sweep log");
            if log.done || log.cancelled {
                return;
            }
            log.cancelled = true;
            log.events.push(Value::Object(vec![
                ("type".to_string(), Value::Str("cancelled".to_string())),
                ("sweep".to_string(), Value::U64(self.id)),
                (
                    "reason".to_string(),
                    Value::Str(
                        match reason {
                            ReleaseReason::Cancelled => "client-request",
                            ReleaseReason::Disconnected => "client-disconnected",
                            ReleaseReason::DeadlineExpired => "deadline-expired",
                        }
                        .to_string(),
                    ),
                ),
            ]));
            self.cond.notify_all();
        }
        for cell_id in &self.cells {
            self.deliver(cell_id, &CellOutcome::Cancelled, None);
        }
    }

    /// Whether the sweep's event stream has closed — every cell
    /// resolved, by completion or cancellation. Finished sweeps are
    /// eligible for retention eviction.
    fn finished(&self) -> bool {
        lock_unpoisoned(&self.log, "sweep log").done
    }

    /// Whether the sweep's deadline has passed while it is still open.
    fn deadline_expired(&self, now: Instant) -> bool {
        let Some(deadline) = self.deadline else {
            return false;
        };
        if now < deadline {
            return false;
        }
        let log = lock_unpoisoned(&self.log, "sweep log");
        !log.done && !log.cancelled
    }

    /// The status document served at `GET /sweeps/{id}`.
    pub fn status(&self) -> Value {
        let log = lock_unpoisoned(&self.log, "sweep log");
        let cells: Vec<Value> = self
            .cells
            .iter()
            .map(|id| {
                let (state, cached, error) = match log.states.get(id) {
                    None => ("pending", false, None),
                    Some(CellOutcome::Done(_, cached, _)) => ("done", *cached, None),
                    Some(CellOutcome::Failed(e)) => ("failed", false, Some(e.clone())),
                    Some(CellOutcome::Cancelled) => ("cancelled", false, None),
                };
                let mut obj = vec![
                    ("id".to_string(), Value::Str(id.clone())),
                    ("state".to_string(), Value::Str(state.to_string())),
                    ("cached".to_string(), Value::Bool(cached)),
                ];
                if let Some(e) = error {
                    obj.push(("error".to_string(), Value::Str(e)));
                }
                Value::Object(obj)
            })
            .collect();
        Value::Object(vec![
            ("id".to_string(), Value::U64(self.id)),
            ("total".to_string(), Value::U64(self.cells.len() as u64)),
            ("resolved".to_string(), Value::U64(log.resolved as u64)),
            ("finished".to_string(), Value::U64(log.done_cells as u64)),
            ("cached".to_string(), Value::U64(log.cached_cells as u64)),
            ("failed".to_string(), Value::U64(log.failed_cells as u64)),
            ("done".to_string(), Value::Bool(log.done)),
            ("cancelled".to_string(), Value::Bool(log.cancelled)),
            ("cells".to_string(), Value::Array(cells)),
        ])
    }

    /// The results document served at `GET /sweeps/{id}/results`:
    /// resolved cell values in planned order. Byte-identical to what
    /// `run_one` prints from the cache, because both are the same
    /// [`Cell`] result serialisation.
    pub fn results(&self) -> Value {
        let log = lock_unpoisoned(&self.log, "sweep log");
        let rows: Vec<Value> = self
            .cells
            .iter()
            .filter_map(|id| {
                log.values.iter().find(|(vid, _)| vid == id).map(|(_, v)| {
                    Value::Object(vec![
                        ("cell".to_string(), Value::Str(id.clone())),
                        ("value".to_string(), v.clone()),
                    ])
                })
            })
            .collect();
        Value::Object(vec![
            ("id".to_string(), Value::U64(self.id)),
            ("results".to_string(), Value::Array(rows)),
        ])
    }

    /// Copies events starting at `from`, plus whether the stream is
    /// closed; blocks until at least one of the two is news.
    pub fn wait_events(&self, from: usize) -> (Vec<Value>, bool) {
        let mut log = lock_unpoisoned(&self.log, "sweep log");
        while !log.done && log.events.len() <= from {
            log = self
                .cond
                .wait(log)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        let fresh = log.events.get(from..).unwrap_or_default().to_vec();
        (fresh, log.done)
    }

    /// Blocks until the sweep's event stream closes.
    pub fn wait_done(&self) {
        let mut log = lock_unpoisoned(&self.log, "sweep log");
        while !log.done {
            log = self
                .cond
                .wait(log)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

/// One queued-or-running unique cell and the sweeps waiting on it.
struct Inflight {
    waiters: Vec<Arc<SweepState>>,
    outcome: Option<CellOutcome>,
}

/// Monotonic scheduling counters — the dedup proof `/metrics` exposes.
#[derive(Debug, Default, Clone, Copy)]
pub struct Counters {
    /// Sweeps accepted.
    pub sweeps: u64,
    /// Cells requested across all sweeps (after per-sweep dedup).
    pub cells_requested: u64,
    /// Cells resolved from the on-disk cache at submission.
    pub cache_hits: u64,
    /// Cells attached to an already-queued-or-running computation.
    pub coalesced: u64,
    /// Unique cells scheduled for computation.
    pub scheduled: u64,
    /// Scheduled cells that completed.
    pub computed: u64,
    /// Scheduled cells that failed (after retries).
    pub failed: u64,
    /// Cells cancelled before running.
    pub cancelled: u64,
    /// Batches the dispatcher ran.
    pub batches: u64,
    /// Sum of per-cell compute time across batches, nanoseconds.
    pub cell_time_ns: u64,
    /// Sum of batch wall-clock, nanoseconds.
    pub wall_ns: u64,
    /// Submissions refused by the admission cap.
    pub rejected_sweeps: u64,
    /// Sweeps force-cancelled by their wall-clock deadline.
    pub deadline_expired: u64,
    /// Event streams whose client vanished mid-stream.
    pub disconnected_streams: u64,
    /// Timed-out worker threads abandoned across all batches
    /// (from [`scu_harness::SweepSummary::leaked_threads`]).
    pub leaked_threads: u64,
    /// Cells that needed at least one retry before resolving.
    pub retried_cells: u64,
    /// Total retry attempts across all cells and batches.
    pub retry_attempts: u64,
}

struct Inner {
    pending: Vec<String>,
    inflight: HashMap<String, Inflight>,
    sweeps: HashMap<u64, Arc<SweepState>>,
    next_id: u64,
    shutdown: bool,
    busy: bool,
    /// Drain flag for the batch the dispatcher is currently running;
    /// raised by shutdown or when every unresolved cell in the batch
    /// loses its last waiter (orphaned work).
    batch_cancel: Option<Arc<AtomicBool>>,
    counters: Counters,
}

/// The daemon's brain; shared by every connection handler.
pub struct Scheduler {
    cfg: SchedulerConfig,
    /// id → cell for the full matrix this server serves.
    catalog: HashMap<String, Cell>,
    cache: Option<ResultCache>,
    inner: Mutex<Inner>,
    /// Wakes the dispatcher when cells are queued or shutdown begins.
    wake: Condvar,
    /// Stops the deadline watcher thread.
    stopping: Arc<AtomicBool>,
    started: Instant,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
    watcher: Mutex<Option<JoinHandle<()>>>,
}

impl Scheduler {
    /// Builds the catalog, opens the cache, and starts the dispatcher.
    pub fn new(cfg: SchedulerConfig) -> Arc<Self> {
        let catalog: HashMap<String, Cell> = plan_cells(&cfg.experiment, &ALL_MODES, None)
            .into_iter()
            .map(|c| (c.id(), c))
            .collect();
        let cache = cfg
            .cache_dir
            .as_ref()
            .and_then(|dir| match ResultCache::open(dir) {
                Ok(c) => Some(c),
                Err(e) => {
                    eprintln!(
                        "[scu-server] cannot open cache at {}: {e}; serving uncached",
                        dir.display()
                    );
                    None
                }
            });
        let scheduler = Arc::new(Scheduler {
            cfg,
            catalog,
            cache,
            inner: Mutex::new(Inner {
                pending: Vec::new(),
                inflight: HashMap::new(),
                sweeps: HashMap::new(),
                next_id: 1,
                shutdown: false,
                busy: false,
                batch_cancel: None,
                counters: Counters::default(),
            }),
            wake: Condvar::new(),
            stopping: Arc::new(AtomicBool::new(false)),
            started: Instant::now(),
            dispatcher: Mutex::new(None),
            watcher: Mutex::new(None),
        });
        let worker = Arc::clone(&scheduler);
        let handle = std::thread::Builder::new()
            .name("scu-dispatcher".to_string())
            .spawn(move || worker.dispatch_loop())
            .expect("spawning the dispatcher thread");
        *lock_unpoisoned(&scheduler.dispatcher, "dispatcher handle") = Some(handle);
        let sentry = Arc::clone(&scheduler);
        let handle = std::thread::Builder::new()
            .name("scu-deadline".to_string())
            .spawn(move || sentry.deadline_loop())
            .expect("spawning the deadline watcher thread");
        *lock_unpoisoned(&scheduler.watcher, "deadline watcher handle") = Some(handle);
        scheduler
    }

    /// The deadline watcher: force-cancels sweeps whose wall-clock
    /// budget ran out, ~20 ms granularity.
    fn deadline_loop(self: Arc<Self>) {
        while !self.stopping.load(Ordering::SeqCst) {
            let now = Instant::now();
            let expired: Vec<Arc<SweepState>> = {
                let inner = lock_unpoisoned(&self.inner, "scheduler");
                inner
                    .sweeps
                    .values()
                    .filter(|s| s.deadline_expired(now))
                    .cloned()
                    .collect()
            };
            for sweep in expired {
                self.release_sweep(&sweep, ReleaseReason::DeadlineExpired);
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
    }

    /// Cells this server can serve.
    pub fn matrix_size(&self) -> usize {
        self.catalog.len()
    }

    /// The experiment configuration requests are validated against.
    pub fn experiment(&self) -> &ExperimentConfig {
        &self.cfg.experiment
    }

    /// Accepts a sweep: dedups against the cache, coalesces against
    /// in-flight cells, queues the rest, and returns the sweep handle
    /// (failpoint site: `scheduler-enqueue`). `deadline` is a
    /// wall-clock budget for the whole sweep; when it expires the
    /// deadline watcher force-cancels whatever has not resolved.
    ///
    /// # Errors
    ///
    /// Rejects cells outside the catalog, submissions during shutdown,
    /// and submissions while the pending backlog is at the admission
    /// cap (the error contains "overloaded"; HTTP maps it to 429).
    pub fn submit(
        &self,
        cells: Vec<Cell>,
        deadline: Option<std::time::Duration>,
    ) -> Result<Arc<SweepState>, String> {
        scu_harness::failpoint::check("scheduler-enqueue").map_err(|e| e.to_string())?;
        for cell in &cells {
            match self.catalog.get(&cell.id()) {
                Some(known) if known == cell => {}
                Some(_) => {
                    return Err(format!(
                        "cell {} does not match this server's matrix configuration",
                        cell.id()
                    ))
                }
                None => {
                    return Err(format!(
                        "cell {} is not in this server's experiment matrix",
                        cell.id()
                    ))
                }
            }
        }
        // Disk reads happen outside the scheduler lock.
        let cached: Vec<Option<Value>> = cells
            .iter()
            .map(|cell| self.cache.as_ref().and_then(|c| c.load(&cell.cache_key())))
            .collect();

        let (sweep, resolutions) = {
            let mut inner = lock_unpoisoned(&self.inner, "scheduler");
            if inner.shutdown {
                return Err("server is shutting down".to_string());
            }
            if inner.pending.len() >= self.cfg.max_pending_cells {
                inner.counters.rejected_sweeps += 1;
                return Err(format!(
                    "server overloaded: {} cells already pending (cap {}); retry later",
                    inner.pending.len(),
                    self.cfg.max_pending_cells
                ));
            }
            let id = inner.next_id;
            inner.next_id += 1;
            let sweep = SweepState::new(
                id,
                cells.iter().map(Cell::id).collect(),
                deadline.map(|d| Instant::now() + d),
            );
            inner.sweeps.insert(id, Arc::clone(&sweep));
            Self::evict_finished_sweeps(&mut inner, self.cfg.max_retained_sweeps);
            inner.counters.sweeps += 1;
            inner.counters.cells_requested += cells.len() as u64;
            // Deferred deliveries: performed after the lock drops.
            let mut resolutions: Vec<(String, CellOutcome)> = Vec::new();
            let mut queued = false;
            for (cell, hit) in cells.iter().zip(cached) {
                let cell_id = cell.id();
                if let Some(value) = hit {
                    inner.counters.cache_hits += 1;
                    resolutions.push((cell_id, CellOutcome::Done(value, true, 0)));
                    continue;
                }
                if let Some(entry) = inner.inflight.get_mut(&cell_id) {
                    match &entry.outcome {
                        Some(outcome) => resolutions.push((cell_id, outcome.clone())),
                        None => entry.waiters.push(Arc::clone(&sweep)),
                    }
                    inner.counters.coalesced += 1;
                } else {
                    inner.counters.scheduled += 1;
                    inner.inflight.insert(
                        cell_id.clone(),
                        Inflight {
                            waiters: vec![Arc::clone(&sweep)],
                            outcome: None,
                        },
                    );
                    inner.pending.push(cell_id);
                    queued = true;
                }
            }
            if queued {
                self.wake.notify_all();
            }
            (sweep, resolutions)
        };
        for (cell_id, outcome) in resolutions {
            sweep.deliver(&cell_id, &outcome, None);
        }
        Ok(sweep)
    }

    /// Bounds per-sweep memory in a long-lived daemon: while more than
    /// `cap` sweeps are retained, evicts finished ones oldest-first.
    /// Evicted ids answer 404; the result values themselves survive in
    /// the on-disk cache. Open sweeps are never evicted, so `sweeps`
    /// can still exceed `cap` transiently when that many are live at
    /// once. Locks each sweep's log while holding the scheduler lock —
    /// the same inner → log order the deadline watcher uses.
    fn evict_finished_sweeps(inner: &mut Inner, cap: usize) {
        if inner.sweeps.len() <= cap {
            return;
        }
        let mut finished: Vec<u64> = inner
            .sweeps
            .iter()
            .filter(|(_, sweep)| sweep.finished())
            .map(|(id, _)| *id)
            .collect();
        finished.sort_unstable();
        let excess = inner.sweeps.len() - cap;
        for id in finished.into_iter().take(excess) {
            inner.sweeps.remove(&id);
        }
    }

    /// Looks up a sweep by id.
    pub fn sweep(&self, id: u64) -> Option<Arc<SweepState>> {
        lock_unpoisoned(&self.inner, "scheduler")
            .sweeps
            .get(&id)
            .cloned()
    }

    /// Cancels a sweep on client request (`DELETE /sweeps/{id}`):
    /// closes its event stream, detaches it from in-flight cells, and
    /// unschedules cells nobody else wants that have not started.
    /// Returns false for unknown ids.
    pub fn cancel_sweep(&self, id: u64) -> bool {
        match self.sweep(id) {
            Some(sweep) => {
                self.release_sweep(&sweep, ReleaseReason::Cancelled);
                true
            }
            None => false,
        }
    }

    /// Tears a sweep down after its event-stream client vanished:
    /// identical to a cancel, but counted separately. Orphaned cells
    /// stop consuming the harness; coalesced cells survive through
    /// their other waiters.
    pub fn client_disconnected(&self, id: u64) -> bool {
        match self.sweep(id) {
            Some(sweep) => {
                self.release_sweep(&sweep, ReleaseReason::Disconnected);
                true
            }
            None => false,
        }
    }

    /// The common teardown: detach the sweep from its cells, unschedule
    /// queue entries nobody else wants, raise the running batch's drain
    /// flag once every unresolved cell is orphaned, then resolve the
    /// sweep's own view as cancelled.
    fn release_sweep(&self, sweep: &Arc<SweepState>, reason: ReleaseReason) {
        let id = sweep.id;
        {
            let mut inner = lock_unpoisoned(&self.inner, "scheduler");
            match reason {
                ReleaseReason::Cancelled => {}
                ReleaseReason::Disconnected => inner.counters.disconnected_streams += 1,
                ReleaseReason::DeadlineExpired => inner.counters.deadline_expired += 1,
            }
            for cell_id in &sweep.cells {
                let orphaned = match inner.inflight.get_mut(cell_id) {
                    Some(entry) => {
                        entry.waiters.retain(|w| w.id != id);
                        entry.waiters.is_empty() && entry.outcome.is_none()
                    }
                    None => false,
                };
                // A cell nobody waits on anymore is dropped from the
                // queue if the dispatcher has not yet picked it up;
                // once batched it simply completes into the cache.
                if orphaned && inner.pending.iter().any(|p| p == cell_id) {
                    inner.pending.retain(|p| p != cell_id);
                    inner.inflight.remove(cell_id);
                    inner.counters.cancelled += 1;
                }
            }
            // If the running batch now computes exclusively for ghosts,
            // drain it: in-flight cells finish into the cache, the rest
            // report cancelled.
            let all_orphaned = inner
                .inflight
                .values()
                .filter(|e| e.outcome.is_none())
                .all(|e| e.waiters.is_empty());
            if inner.busy && all_orphaned {
                if let Some(flag) = &inner.batch_cancel {
                    flag.store(true, Ordering::SeqCst);
                }
            }
        }
        sweep.cancel(reason);
    }

    /// Resolves one unique cell and fans the outcome out to its
    /// waiters. Idempotent: only the first resolution counts.
    fn resolve_cell(&self, cell_id: &str, outcome: CellOutcome, pace: Option<Pace>) {
        let waiters = {
            let mut inner = lock_unpoisoned(&self.inner, "scheduler");
            let Some(entry) = inner.inflight.get_mut(cell_id) else {
                return;
            };
            if entry.outcome.is_some() {
                return;
            }
            entry.outcome = Some(outcome.clone());
            let waiters = entry.waiters.clone();
            match &outcome {
                CellOutcome::Done(..) => inner.counters.computed += 1,
                CellOutcome::Failed(_) => inner.counters.failed += 1,
                CellOutcome::Cancelled => inner.counters.cancelled += 1,
            }
            waiters
        };
        for sweep in waiters {
            sweep.deliver(cell_id, &outcome, pace);
        }
    }

    /// The dispatcher thread: drain pending cells into a batch, run it
    /// on the shared harness, resolve, repeat until shutdown.
    fn dispatch_loop(self: Arc<Self>) {
        loop {
            let (batch, batch_cancel): (Vec<String>, Arc<AtomicBool>) = {
                let mut inner = lock_unpoisoned(&self.inner, "scheduler");
                while inner.pending.is_empty() && !inner.shutdown {
                    inner = self
                        .wake
                        .wait(inner)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
                if inner.shutdown {
                    break;
                }
                inner.busy = true;
                inner.counters.batches += 1;
                // The flag is installed under the same lock that
                // checked `shutdown`, so a concurrent shutdown always
                // either sees it here or the dispatcher sees the flag
                // before starting the next batch.
                let flag = Arc::new(AtomicBool::new(false));
                inner.batch_cancel = Some(Arc::clone(&flag));
                (std::mem::take(&mut inner.pending), flag)
            };
            Arc::clone(&self).run_batch(&batch, batch_cancel);
            let mut inner = lock_unpoisoned(&self.inner, "scheduler");
            inner.busy = false;
            inner.batch_cancel = None;
            for cell_id in &batch {
                inner.inflight.remove(cell_id);
            }
        }
        // Shutdown: everything still queued or unresolved is cancelled
        // so no client blocks on a stream that will never close.
        let leftovers: Vec<String> = {
            let mut inner = lock_unpoisoned(&self.inner, "scheduler");
            inner.pending.clear();
            inner
                .inflight
                .iter()
                .filter(|(_, e)| e.outcome.is_none())
                .map(|(id, _)| id.clone())
                .collect()
        };
        for cell_id in leftovers {
            self.resolve_cell(&cell_id, CellOutcome::Cancelled, None);
        }
    }

    /// Runs one batch of unique cells through the shared harness.
    /// `batch_cancel` drains the batch early (shutdown, or every
    /// waiter gone): in-flight cells finish into the cache, unstarted
    /// ones report cancelled.
    fn run_batch(self: Arc<Self>, batch: &[String], batch_cancel: Arc<AtomicBool>) {
        // Fresh values land here from the job closures, so the
        // observer can deliver them to waiters the moment the harness
        // reports the completion — mid-batch, not at batch end.
        let slots: Arc<Mutex<HashMap<String, Value>>> = Arc::new(Mutex::new(HashMap::new()));
        let mut graph = JobGraph::new();
        for cell_id in batch {
            let cell = self.catalog[cell_id].clone();
            let key = cell.cache_key();
            let slot = Arc::clone(&slots);
            let id_for_slot = cell_id.clone();
            graph.push(
                Job::new(cell_id.clone(), move || {
                    let value = cell.run_value();
                    lock_unpoisoned(&slot, "cell result slot")
                        .insert(id_for_slot.clone(), value.clone());
                    value
                })
                .with_cache_key(key),
            );
        }
        let observer_slots = Arc::clone(&slots);
        let scheduler = Arc::clone(&self);
        let observer = std::sync::Arc::new(move |event: &ProgressEvent| {
            let pace = Pace {
                cells_per_sec: event.cells_per_sec,
                eta_ns: event.eta.map(|d| d.as_nanos() as u64),
            };
            if event.label == "FAILED" {
                let error = event.error.clone().unwrap_or_else(|| "failed".to_string());
                scheduler.resolve_cell(&event.id, CellOutcome::Failed(error), Some(pace));
            } else if let Some(value) =
                lock_unpoisoned(&observer_slots, "cell result slot").remove(&event.id)
            {
                let duration = event.duration.as_nanos() as u64;
                scheduler.resolve_cell(
                    &event.id,
                    CellOutcome::Done(value, event.cached, duration),
                    Some(pace),
                );
            }
            // Other labels (cached/resumed from the journal, timed
            // out, cancelled) carry no value here; the post-run pass
            // resolves them from the outcome.
        });
        let mut harness = Harness::new()
            .jobs(self.cfg.jobs)
            .threads_per_job(self.cfg.sim_threads)
            .retries(self.cfg.retries)
            .observer(observer)
            .cancel_flag(batch_cancel);
        match &self.cache {
            // Share the scheduler's already-open store rather than
            // re-opening the directory: the LSM layout is
            // single-writer per directory, and sharing keeps
            // submission-time hits and batch-time stores on one set
            // of counters.
            Some(cache) => harness = harness.store_backend(cache.backend()),
            None => {
                if let Some(dir) = &self.cfg.cache_dir {
                    harness = harness.cache_dir(dir.clone());
                }
            }
        }
        if let Some(manifest) = &self.cfg.manifest {
            // Always resume: the journal accumulates across batches and
            // daemon restarts, so completed cells never recompute.
            harness = harness.manifest(manifest.clone()).resume(true);
        }
        let sweep = harness.run(&graph);
        for (cell_id, outcome) in batch.iter().zip(&sweep.outcomes) {
            let resolved = match outcome {
                Outcome::Done {
                    value,
                    cached,
                    duration,
                    ..
                } => CellOutcome::Done(value.clone(), *cached, duration.as_nanos() as u64),
                Outcome::Failed { error, .. } => CellOutcome::Failed(error.clone()),
                Outcome::TimedOut { limit, .. } => {
                    CellOutcome::Failed(format!("timed out after {limit:?}"))
                }
                Outcome::Skipped { failed_dep } => {
                    CellOutcome::Failed(format!("dependency '{failed_dep}' failed"))
                }
                Outcome::Cancelled => CellOutcome::Cancelled,
            };
            // Usually a no-op: the observer already resolved it live.
            self.resolve_cell(cell_id, resolved, None);
        }
        let mut inner = lock_unpoisoned(&self.inner, "scheduler");
        inner.counters.cell_time_ns += sweep.summary.cell_time.as_nanos() as u64;
        inner.counters.wall_ns += sweep.summary.wall.as_nanos() as u64;
        inner.counters.leaked_threads += sweep.summary.leaked_threads as u64;
        inner.counters.retried_cells += sweep.summary.retried.len() as u64;
        inner.counters.retry_attempts += sweep
            .outcomes
            .iter()
            .map(|o| o.retries().len() as u64)
            .sum::<u64>();
    }

    /// Serves `GET /cells/{id}` — a pure cache read, never a
    /// computation.
    ///
    /// # Errors
    ///
    /// Unknown cell ids are errors; a known-but-uncached cell returns
    /// `Ok(None)`.
    pub fn cached_cell(&self, cell_id: &str) -> Result<Option<Value>, String> {
        let cell = self
            .catalog
            .get(cell_id)
            .ok_or_else(|| format!("cell {cell_id} is not in this server's experiment matrix"))?;
        Ok(self.cache.as_ref().and_then(|c| c.load(&cell.cache_key())))
    }

    /// A snapshot of the scheduling counters.
    pub fn counters(&self) -> Counters {
        lock_unpoisoned(&self.inner, "scheduler").counters
    }

    /// The `GET /metrics` document.
    pub fn metrics(&self) -> Value {
        let inner = lock_unpoisoned(&self.inner, "scheduler");
        let c = inner.counters;
        let utilization = if c.wall_ns > 0 {
            c.cell_time_ns as f64 / (c.wall_ns as f64 * self.cfg.jobs.max(1) as f64)
        } else {
            0.0
        };
        let cache_stats = self.cache.as_ref().map(|c| c.stats()).unwrap_or_default();
        let trace_stats = scu_algos::trace_cache::stats();
        let graph_stats = scu_algos::graph_artifact::stats();
        let store_stats = self
            .cache
            .as_ref()
            .map(|c| c.store_stats())
            .unwrap_or_default();
        let load = Self::load_state_of(&inner, self.cfg.max_pending_cells);
        Value::Object(vec![
            (
                "uptime_secs".to_string(),
                Value::F64(self.started.elapsed().as_secs_f64()),
            ),
            (
                "matrix_cells".to_string(),
                Value::U64(self.catalog.len() as u64),
            ),
            ("workers".to_string(), Value::U64(self.cfg.jobs as u64)),
            ("busy".to_string(), Value::Bool(inner.busy)),
            (
                "queue_depth".to_string(),
                Value::U64(inner.pending.len() as u64),
            ),
            (
                "inflight".to_string(),
                Value::U64(inner.inflight.len() as u64),
            ),
            ("sweeps".to_string(), Value::U64(c.sweeps)),
            ("cells_requested".to_string(), Value::U64(c.cells_requested)),
            ("cache_hits".to_string(), Value::U64(c.cache_hits)),
            ("coalesced".to_string(), Value::U64(c.coalesced)),
            ("scheduled".to_string(), Value::U64(c.scheduled)),
            ("computed".to_string(), Value::U64(c.computed)),
            ("failed".to_string(), Value::U64(c.failed)),
            ("cancelled".to_string(), Value::U64(c.cancelled)),
            ("batches".to_string(), Value::U64(c.batches)),
            (
                "cache_loads".to_string(),
                Value::U64(cache_stats.hits + cache_stats.misses),
            ),
            (
                "quarantined".to_string(),
                Value::U64(cache_stats.quarantined),
            ),
            (
                "quarantined_total".to_string(),
                Value::U64(cache_stats.quarantined_total),
            ),
            (
                "store_backend".to_string(),
                Value::Str(store_stats.backend.to_string()),
            ),
            (
                "wal_appends".to_string(),
                Value::U64(store_stats.wal_appends),
            ),
            (
                "segment_reads".to_string(),
                Value::U64(store_stats.segment_reads),
            ),
            (
                "compactions".to_string(),
                Value::U64(store_stats.compactions),
            ),
            (
                "recovered_records".to_string(),
                Value::U64(store_stats.recovered_records),
            ),
            (
                "truncated_tail_bytes".to_string(),
                Value::U64(store_stats.truncated_tail_bytes),
            ),
            // Functional-trace cache: engine-side session counters
            // plus the store's trace record counters. Warm sweeps show
            // trace_cache_hits rising while the functional phase's
            // share of cell wall-clock collapses.
            ("trace_cache_hits".to_string(), Value::U64(trace_stats.hits)),
            (
                "trace_cache_misses".to_string(),
                Value::U64(trace_stats.misses),
            ),
            (
                "trace_cache_stores".to_string(),
                Value::U64(trace_stats.stores),
            ),
            (
                "trace_cache_poisoned".to_string(),
                Value::U64(trace_stats.poisoned),
            ),
            (
                "trace_cache_bytes_replayed".to_string(),
                Value::U64(trace_stats.bytes_replayed),
            ),
            (
                "trace_records_stored".to_string(),
                Value::U64(store_stats.trace_stores),
            ),
            // Graph artifact store: mmap'd build-once CSR files. A
            // healthy warm daemon shows hits rising and builds flat;
            // quarantined > 0 means on-disk artifacts failed their
            // digest and were rebuilt (bytes unaffected, only time).
            (
                "graph_artifact_hits".to_string(),
                Value::U64(graph_stats.hits),
            ),
            (
                "graph_artifact_misses".to_string(),
                Value::U64(graph_stats.misses),
            ),
            (
                "graph_artifact_builds".to_string(),
                Value::U64(graph_stats.builds),
            ),
            (
                "graph_artifact_quarantined".to_string(),
                Value::U64(graph_stats.quarantined),
            ),
            ("worker_utilization".to_string(), Value::F64(utilization)),
            ("load".to_string(), Value::Str(load.to_string())),
            (
                "pending_cap".to_string(),
                Value::U64(self.cfg.max_pending_cells as u64),
            ),
            ("rejected_sweeps".to_string(), Value::U64(c.rejected_sweeps)),
            (
                "deadline_expired".to_string(),
                Value::U64(c.deadline_expired),
            ),
            (
                "disconnected_streams".to_string(),
                Value::U64(c.disconnected_streams),
            ),
            ("leaked_threads".to_string(), Value::U64(c.leaked_threads)),
            ("retried_cells".to_string(), Value::U64(c.retried_cells)),
            ("retry_attempts".to_string(), Value::U64(c.retry_attempts)),
        ])
    }

    /// Uptime for `GET /healthz`.
    pub fn uptime_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Coarse load state for `/healthz` and `/metrics`: `ok`, `busy`
    /// (a batch is running or cells are queued), `overloaded` (the
    /// admission cap is rejecting submissions), or `draining`
    /// (shutdown in progress).
    pub fn load_state(&self) -> &'static str {
        let inner = lock_unpoisoned(&self.inner, "scheduler");
        Self::load_state_of(&inner, self.cfg.max_pending_cells)
    }

    fn load_state_of(inner: &Inner, cap: usize) -> &'static str {
        if inner.shutdown {
            "draining"
        } else if inner.pending.len() >= cap {
            "overloaded"
        } else if inner.busy || !inner.pending.is_empty() {
            "busy"
        } else {
            "ok"
        }
    }

    /// Drains and stops the dispatcher: the running batch's in-flight
    /// cells finish (and reach the cache and journal), everything else
    /// resolves `cancelled`, and the dispatcher thread is joined.
    /// Idempotent.
    pub fn shutdown(&self) {
        {
            let mut inner = lock_unpoisoned(&self.inner, "scheduler");
            inner.shutdown = true;
            if let Some(flag) = &inner.batch_cancel {
                flag.store(true, Ordering::SeqCst);
            }
        }
        self.stopping.store(true, Ordering::SeqCst);
        self.wake.notify_all();
        let handle = lock_unpoisoned(&self.dispatcher, "dispatcher handle").take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
        let handle = lock_unpoisoned(&self.watcher, "deadline watcher handle").take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        // A dropped scheduler whose dispatcher still runs would leak
        // the thread; shutdown() is idempotent and joins it.
        self.shutdown();
    }
}

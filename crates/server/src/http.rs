//! Minimal HTTP/1.1 over [`std::net::TcpStream`].
//!
//! The offline build has no `hyper`/`tiny_http`, so the server speaks
//! the protocol slice it actually needs by hand: request line, headers,
//! and `Content-Length` bodies in; fixed-length JSON responses and
//! `Transfer-Encoding: chunked` event streams out. Every connection
//! carries exactly one request and is closed afterwards
//! (`Connection: close`), which keeps the server loop and the client
//! trivially correct at the cost of a TCP handshake per call — noise
//! next to a simulator cell.

use std::io::{Read, Write};
use std::net::TcpStream;

use serde_json::Value;

/// Parsed request: method, percent-free path, and raw body bytes.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, `DELETE`, …
    pub method: String,
    /// The request path, e.g. `/sweeps/3/events` (query strings are
    /// kept verbatim; no route uses them).
    pub path: String,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

/// Largest accepted header block — a request line plus a handful of
/// headers fits in a fraction of this.
const MAX_HEAD: usize = 16 * 1024;

/// Largest accepted body: a full 240-cell sweep spec is ~30 KB.
const MAX_BODY: usize = 4 * 1024 * 1024;

/// Reads one request off the stream.
///
/// # Errors
///
/// Returns `Err` on connection errors, malformed syntax, or
/// oversized head/body; the caller drops the connection either way.
pub fn read_request(stream: &mut TcpStream) -> std::io::Result<Request> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    // Accumulate until the blank line ending the header block.
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() > MAX_HEAD {
            return Err(bad("header block too large"));
        }
        let n = stream.read(&mut byte)?;
        if n == 0 {
            return Err(bad("connection closed mid-request"));
        }
        head.push(byte[0]);
    }
    let head = String::from_utf8(head).map_err(|_| bad("header block is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or_else(|| bad("missing method"))?;
    let path = parts.next().ok_or_else(|| bad("missing path"))?;
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("unparsable Content-Length"))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(bad("body too large"));
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
    })
}

/// The reason phrase for the status codes this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete fixed-length JSON response and flushes.
pub fn respond_json(stream: &mut TcpStream, status: u16, body: &Value) -> std::io::Result<()> {
    let text = serde_json::to_string(body).expect("serialising a Value cannot fail");
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{text}",
        status_text(status),
        text.len(),
    )?;
    stream.flush()
}

/// Writes the standard error shape: `{"error": "..."}`.
pub fn respond_error(stream: &mut TcpStream, status: u16, message: &str) -> std::io::Result<()> {
    respond_json(
        stream,
        status,
        &Value::Object(vec![("error".to_string(), Value::Str(message.to_string()))]),
    )
}

/// A `Transfer-Encoding: chunked` response in progress — the event
/// stream. Each [`ChunkedWriter::send`] is one chunk (one JSON line),
/// flushed immediately so clients see events as they happen.
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    /// Writes the response head and returns the chunk writer.
    pub fn start(stream: &'a mut TcpStream, status: u16) -> std::io::Result<Self> {
        write!(
            stream,
            "HTTP/1.1 {status} {}\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            status_text(status),
        )?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Sends one event as its own chunk, newline-terminated.
    pub fn send(&mut self, event: &Value) -> std::io::Result<()> {
        let mut line = serde_json::to_string(event).expect("serialising a Value cannot fail");
        line.push('\n');
        write!(self.stream, "{:x}\r\n{line}\r\n", line.len())?;
        self.stream.flush()
    }

    /// Sends the terminating zero-length chunk.
    pub fn finish(self) -> std::io::Result<()> {
        write!(self.stream, "0\r\n\r\n")?;
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Round-trips raw request bytes through a real socket pair.
    fn parse(raw: &[u8]) -> std::io::Result<Request> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        tx.write_all(raw).unwrap();
        tx.flush().unwrap();
        // Close the sender so a truncated request reads as EOF instead
        // of blocking the parser forever.
        drop(tx);
        let (mut rx, _) = listener.accept().unwrap();
        read_request(&mut rx)
    }

    #[test]
    fn parses_request_with_body() {
        let r =
            parse(b"POST /sweeps HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/sweeps");
        assert_eq!(r.body, b"abcd");
    }

    #[test]
    fn parses_bodyless_get() {
        let r = parse(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert!(r.body.is_empty());
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(parse(b"\r\n\r\n").is_err(), "empty request line");
        assert!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n").is_err(),
            "bad length"
        );
        assert!(
            parse(b"GET /x HTTP/1.1\r\nAccept: text").is_err(),
            "closed mid-headers"
        );
    }
}

//! Minimal HTTP/1.1 over [`std::net::TcpStream`].
//!
//! The offline build has no `hyper`/`tiny_http`, so the server speaks
//! the protocol slice it actually needs by hand: request line, headers,
//! and `Content-Length` bodies in; fixed-length JSON responses and
//! `Transfer-Encoding: chunked` event streams out. Every connection
//! carries exactly one request and is closed afterwards
//! (`Connection: close`), which keeps the server loop and the client
//! trivially correct at the cost of a TCP handshake per call — noise
//! next to a simulator cell.
//!
//! Reads are hostile-input hardened: the parser pulls the socket in
//! blocks (never a syscall per byte), enforces [`ReadLimits`] on head
//! and body size, and checks an optional wall-clock deadline between
//! blocks so a trickling ("slowloris") client is cut off even though
//! each individual `read(2)` succeeds within the socket timeout.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use scu_harness::failpoint;
use serde_json::Value;

/// Parsed request: method, percent-free path, and raw body bytes.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, `DELETE`, …
    pub method: String,
    /// The request path, e.g. `/sweeps/3/events` (query strings are
    /// kept verbatim; no route uses them).
    pub path: String,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

/// Largest accepted header block — a request line plus a handful of
/// headers fits in a fraction of this.
pub const MAX_HEAD: usize = 16 * 1024;

/// Largest accepted body: a full 240-cell sweep spec is ~30 KB.
pub const MAX_BODY: usize = 4 * 1024 * 1024;

/// Bounds on a single request read; see [`read_request`].
#[derive(Debug, Clone)]
pub struct ReadLimits {
    /// Reject heads larger than this.
    pub max_head: usize,
    /// Reject declared bodies larger than this.
    pub max_body: usize,
    /// Total wall-clock budget for reading the whole request. `None`
    /// leaves only the socket's own read timeout (which a trickling
    /// client can satisfy forever one byte at a time).
    pub deadline: Option<Duration>,
}

impl Default for ReadLimits {
    fn default() -> Self {
        ReadLimits {
            max_head: MAX_HEAD,
            max_body: MAX_BODY,
            deadline: None,
        }
    }
}

/// Reads one request off the stream (failpoint site: `server-read`).
///
/// # Errors
///
/// Returns `Err` on connection errors, malformed syntax, oversized
/// head/body (`InvalidData`, message contains "too large"), or an
/// expired deadline (`TimedOut`); the caller drops the connection
/// either way.
pub fn read_request(stream: &mut TcpStream, limits: &ReadLimits) -> std::io::Result<Request> {
    failpoint::io("server-read")?;
    read_request_from(stream, limits)
}

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

fn expired(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

/// The transport-agnostic parser behind [`read_request`]; the fuzz
/// suite drives it with in-memory readers. Reads in blocks, checking
/// the deadline each time at least one byte (or one block) arrives, so
/// wall-clock spent on a request is bounded by `limits.deadline` plus
/// one socket-timeout window.
///
/// # Errors
///
/// See [`read_request`].
pub fn read_request_from<R: Read>(reader: &mut R, limits: &ReadLimits) -> std::io::Result<Request> {
    let deadline = limits.deadline.map(|d| Instant::now() + d);
    // --- head: accumulate blocks until the blank line ---------------
    let mut head: Vec<u8> = Vec::new();
    let mut block = [0u8; 1024];
    let body_start = loop {
        if expired(deadline) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "request read deadline exceeded",
            ));
        }
        if head.len() > limits.max_head {
            return Err(bad("header block too large"));
        }
        let n = reader.read(&mut block)?;
        if n == 0 {
            return Err(bad("connection closed mid-request"));
        }
        let scan_from = head.len().saturating_sub(3);
        head.extend_from_slice(&block[..n]);
        if let Some(at) = find_terminator(&head[scan_from..]) {
            break scan_from + at + 4;
        }
    };
    if body_start > limits.max_head + 4 {
        return Err(bad("header block too large"));
    }
    // Blocks may have read past the blank line; those bytes are the
    // front of the body.
    let leftover = head.split_off(body_start);
    let head = String::from_utf8(head).map_err(|_| bad("header block is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or_else(|| bad("missing method"))?;
    let path = parts.next().ok_or_else(|| bad("missing path"))?;
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("unparsable Content-Length"))?;
            }
        }
    }
    if content_length > limits.max_body {
        return Err(bad("body too large"));
    }
    // --- body: leftover head bytes first, then blocks ---------------
    let mut body = leftover;
    body.truncate(content_length); // pipelined junk past the body is dropped
    let mut filled = body.len();
    body.resize(content_length, 0);
    while filled < content_length {
        if expired(deadline) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "request read deadline exceeded",
            ));
        }
        let n = reader.read(&mut body[filled..])?;
        if n == 0 {
            return Err(bad("connection closed mid-request"));
        }
        filled += n;
    }
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
    })
}

/// Index of the `\r\n\r\n` head terminator in `buf`, if present.
fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The reason phrase for the status codes this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete fixed-length JSON response and flushes.
pub fn respond_json(stream: &mut TcpStream, status: u16, body: &Value) -> std::io::Result<()> {
    respond_json_with(stream, status, &[], body)
}

/// [`respond_json`] plus extra response headers (e.g. `Retry-After`).
pub fn respond_json_with(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &Value,
) -> std::io::Result<()> {
    let text = serde_json::to_string(body).expect("serialising a Value cannot fail");
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        status_text(status),
        text.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    write!(stream, "{head}\r\n{text}")?;
    stream.flush()
}

/// Writes the standard error shape: `{"error": "..."}`.
pub fn respond_error(stream: &mut TcpStream, status: u16, message: &str) -> std::io::Result<()> {
    respond_error_with(stream, status, &[], message)
}

/// [`respond_error`] plus extra response headers.
pub fn respond_error_with(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, &str)],
    message: &str,
) -> std::io::Result<()> {
    respond_json_with(
        stream,
        status,
        extra_headers,
        &Value::Object(vec![("error".to_string(), Value::Str(message.to_string()))]),
    )
}

/// A `Transfer-Encoding: chunked` response in progress — the event
/// stream. Each [`ChunkedWriter::send`] is one chunk (one JSON line),
/// flushed immediately so clients see events as they happen.
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    /// Writes the response head and returns the chunk writer.
    pub fn start(stream: &'a mut TcpStream, status: u16) -> std::io::Result<Self> {
        write!(
            stream,
            "HTTP/1.1 {status} {}\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            status_text(status),
        )?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Sends one event as its own chunk, newline-terminated
    /// (failpoint site: `server-stream-write`).
    pub fn send(&mut self, event: &Value) -> std::io::Result<()> {
        failpoint::io("server-stream-write")?;
        let mut line = serde_json::to_string(event).expect("serialising a Value cannot fail");
        line.push('\n');
        write!(self.stream, "{:x}\r\n{line}\r\n", line.len())?;
        self.stream.flush()
    }

    /// Sends the terminating zero-length chunk.
    pub fn finish(self) -> std::io::Result<()> {
        write!(self.stream, "0\r\n\r\n")?;
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Round-trips raw request bytes through a real socket pair.
    fn parse(raw: &[u8]) -> std::io::Result<Request> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        tx.write_all(raw).unwrap();
        tx.flush().unwrap();
        // Close the sender so a truncated request reads as EOF instead
        // of blocking the parser forever.
        drop(tx);
        let (mut rx, _) = listener.accept().unwrap();
        read_request(&mut rx, &ReadLimits::default())
    }

    #[test]
    fn parses_request_with_body() {
        let r =
            parse(b"POST /sweeps HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/sweeps");
        assert_eq!(r.body, b"abcd");
    }

    #[test]
    fn parses_bodyless_get() {
        let r = parse(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert!(r.body.is_empty());
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(parse(b"\r\n\r\n").is_err(), "empty request line");
        assert!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n").is_err(),
            "bad length"
        );
        assert!(
            parse(b"GET /x HTTP/1.1\r\nAccept: text").is_err(),
            "closed mid-headers"
        );
    }

    #[test]
    fn body_split_across_head_block_is_reassembled() {
        // The 1 KiB read blocks always grab body bytes together with
        // the head here; the parser must hand them back intact.
        let mut raw = b"POST /sweeps HTTP/1.1\r\nContent-Length: 5000\r\n\r\n".to_vec();
        let payload: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
        raw.extend_from_slice(&payload);
        let r = parse(&raw).unwrap();
        assert_eq!(r.body, payload);
    }

    #[test]
    fn oversized_head_and_body_are_rejected() {
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        while raw.len() <= MAX_HEAD + 8 {
            raw.extend_from_slice(b"X-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        raw.extend_from_slice(b"\r\n");
        let err = parse(&raw).unwrap_err();
        assert!(err.to_string().contains("too large"), "{err}");
        let err = parse(
            format!(
                "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                MAX_BODY + 1
            )
            .as_bytes(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("too large"), "{err}");
    }

    #[test]
    fn deadline_cuts_off_a_trickling_body() {
        // A Read that yields one byte per call, forever: without the
        // deadline the parser would loop until content_length.
        struct Trickle;
        impl Read for Trickle {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                std::thread::sleep(Duration::from_millis(1));
                buf[0] = b'a';
                Ok(1)
            }
        }
        let head = b"POST /x HTTP/1.1\r\nContent-Length: 100000\r\n\r\n";
        let mut reader = std::io::Read::chain(&head[..], Trickle);
        let limits = ReadLimits {
            deadline: Some(Duration::from_millis(50)),
            ..ReadLimits::default()
        };
        let start = Instant::now();
        let err = read_request_from(&mut reader, &limits).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "cut off promptly"
        );
    }

    #[test]
    fn deadline_cuts_off_a_trickling_head() {
        struct DripHead {
            sent: usize,
        }
        impl Read for DripHead {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                std::thread::sleep(Duration::from_millis(1));
                // An endless header that never reaches the blank line.
                buf[0] = if self.sent.is_multiple_of(64) {
                    b'\n'
                } else {
                    b'h'
                };
                self.sent += 1;
                Ok(1)
            }
        }
        let limits = ReadLimits {
            deadline: Some(Duration::from_millis(50)),
            ..ReadLimits::default()
        };
        let err = read_request_from(&mut DripHead { sent: 1 }, &limits).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
    }

    #[test]
    fn server_read_failpoint_injects() {
        let _fp = scu_harness::failpoint::scoped("server-read=disconnect");
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _tx = TcpStream::connect(addr).unwrap();
        let (mut rx, _) = listener.accept().unwrap();
        let err = read_request(&mut rx, &ReadLimits::default()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionReset);
    }

    #[test]
    fn extra_headers_are_emitted() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        let (mut rx, _) = listener.accept().unwrap();
        respond_error_with(&mut rx, 429, &[("Retry-After", "1")], "overloaded").unwrap();
        drop(rx);
        let mut raw = String::new();
        tx.read_to_string(&mut raw).unwrap();
        assert!(
            raw.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{raw}"
        );
        assert!(raw.contains("Retry-After: 1\r\n"), "{raw}");
        assert!(raw.ends_with("{\"error\":\"overloaded\"}"), "{raw}");
    }
}

//! End-to-end tests for the sweep daemon: in-flight coalescing under
//! slow cells, byte-identical results across concurrent HTTP clients,
//! fault isolation (a panicking cell poisons only the sweeps that
//! asked for it), graceful drain, and warm restart from the cache.
//!
//! Failpoint sites are process-global, so every test that runs cells
//! holds [`lock`] — the suite serialises instead of interleaving
//! injected faults.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use scu_algos::cell::Cell;
use scu_algos::experiment::ExperimentConfig;
use scu_algos::runner::{Algorithm, Mode};
use scu_algos::SystemKind;
use scu_graph::Dataset;
use scu_harness::failpoint;
use scu_server::{Client, Scheduler, SchedulerConfig, Server, SweepState};
use serde_json::Value;

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A fresh scratch directory per test, so cache and journal state
/// never leaks between tests or runs.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scu-server-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("creating the scratch dir");
    dir
}

/// Single-worker scheduler over the tiny experiment matrix: batch
/// order is submission order, which the timing-sensitive tests rely
/// on.
fn config(dir: &Path) -> SchedulerConfig {
    SchedulerConfig {
        experiment: ExperimentConfig::tiny(),
        jobs: 1,
        sim_threads: 1,
        retries: 0,
        cache_dir: Some(dir.join("cache")),
        manifest: Some(dir.join("manifest.json")),
        max_pending_cells: scu_server::DEFAULT_MAX_PENDING_CELLS,
        max_retained_sweeps: scu_server::DEFAULT_MAX_RETAINED_SWEEPS,
    }
}

fn bfs_cond_tx1(cfg: &ExperimentConfig) -> Cell {
    cfg.cell(
        Algorithm::Bfs,
        Dataset::Cond,
        SystemKind::Tx1,
        Mode::GpuBaseline,
    )
}

fn bfs_kron_tx1(cfg: &ExperimentConfig) -> Cell {
    cfg.cell(
        Algorithm::Bfs,
        Dataset::Kron,
        SystemKind::Tx1,
        Mode::GpuBaseline,
    )
}

fn cc_cond_tx1(cfg: &ExperimentConfig) -> Cell {
    cfg.cell(
        Algorithm::Cc,
        Dataset::Cond,
        SystemKind::Tx1,
        Mode::GpuBaseline,
    )
}

/// Pulls one cell's result value out of a sweep's results document.
fn value_of(sweep: &SweepState, cell_id: &str) -> Value {
    sweep
        .results()
        .get("results")
        .and_then(Value::as_array)
        .and_then(|rows| {
            rows.iter()
                .find(|r| r.get("cell").and_then(Value::as_str) == Some(cell_id))
                .and_then(|r| r.get("value").cloned())
        })
        .unwrap_or_else(|| panic!("sweep {} carries no value for {cell_id}", sweep.id))
}

fn text(value: &Value) -> String {
    serde_json::to_string(value).expect("serialising a Value cannot fail")
}

fn field_u64(doc: &Value, name: &str) -> u64 {
    doc.get(name)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("document carries no u64 field '{name}': {doc:?}"))
}

#[test]
fn overlapping_sweeps_coalesce_to_one_computation() {
    let _serial = lock();
    let dir = scratch("coalesce");
    let scheduler = Scheduler::new(config(&dir));
    let cfg = scheduler.experiment().clone();
    let (x, y, z) = (bfs_cond_tx1(&cfg), bfs_kron_tx1(&cfg), cc_cond_tx1(&cfg));

    // Slow every computation down so the second sweep reliably arrives
    // while the shared cell is still in flight.
    let fp = failpoint::scoped("cell-run=delay(150)");
    let a = scheduler
        .submit(vec![x.clone(), y.clone()], None)
        .expect("submit a");
    let b = scheduler
        .submit(vec![y.clone(), z.clone()], None)
        .expect("submit b");
    a.wait_done();
    b.wait_done();
    drop(fp);

    let c = scheduler.counters();
    assert_eq!(c.scheduled, 3, "three unique cells across both sweeps");
    assert_eq!(
        c.coalesced, 1,
        "the shared cell attached to the in-flight run"
    );
    assert_eq!(c.computed, 3, "each unique cell computed exactly once");
    assert_eq!(c.cache_hits, 0, "fresh cache directory");
    assert_eq!(c.failed, 0);

    // Both sweeps see byte-identical bytes for the shared cell, and
    // those bytes equal a local simulation of the same cell — the
    // run_one path.
    let shared = y.id();
    let via_a = text(&value_of(&a, &shared));
    let via_b = text(&value_of(&b, &shared));
    assert_eq!(via_a, via_b);
    assert_eq!(via_a, text(&y.run_value()));
    scheduler.shutdown();
}

/// A long-lived daemon must not pin every finished sweep's result
/// values and event log forever: past the retention cap, finished
/// sweeps are evicted oldest-first at the next submission, while open
/// sweeps and the on-disk cache are untouched.
#[test]
fn finished_sweeps_are_evicted_past_the_retention_cap() {
    let _serial = lock();
    let dir = scratch("retention");
    let mut sched_cfg = config(&dir);
    sched_cfg.max_retained_sweeps = 2;
    let scheduler = Scheduler::new(sched_cfg);
    let cfg = scheduler.experiment().clone();
    let (x, y) = (bfs_cond_tx1(&cfg), bfs_kron_tx1(&cfg));

    // The first sweep computes the cell; every later submission of it
    // is a pure cache hit that finishes at submission time — exactly
    // the traffic `max_pending_cells` cannot bound.
    let first = scheduler.submit(vec![x.clone()], None).expect("submit");
    first.wait_done();
    let first_id = first.id;
    drop(first);
    let flood_ids: Vec<u64> = (0..6)
        .map(|_| {
            let sweep = scheduler.submit(vec![x.clone()], None).expect("submit");
            sweep.wait_done();
            sweep.id
        })
        .collect();

    assert!(
        scheduler.sweep(first_id).is_none(),
        "the oldest finished sweep was evicted"
    );
    let last_two = &flood_ids[flood_ids.len() - 2..];
    for id in last_two {
        assert!(
            scheduler.sweep(*id).is_some(),
            "the {} most recent finished sweeps are retained",
            last_two.len()
        );
    }
    assert!(
        scheduler
            .cached_cell(&x.id())
            .expect("known cell")
            .is_some(),
        "eviction drops in-memory sweep state only; the cache survives"
    );

    // An open sweep is older than the whole flood but must survive it:
    // only finished sweeps are eviction candidates.
    let fp = failpoint::scoped("cell-run=delay(300)");
    let open = scheduler
        .submit(vec![y.clone()], None)
        .expect("submit open");
    for _ in 0..5 {
        let sweep = scheduler.submit(vec![x.clone()], None).expect("submit");
        sweep.wait_done();
    }
    assert!(
        scheduler.sweep(open.id).is_some(),
        "open sweeps are never evicted"
    );
    open.wait_done();
    drop(fp);
    scheduler.shutdown();
}

#[test]
fn http_clients_share_inflight_cells_and_get_identical_bytes() {
    let _serial = lock();
    let dir = scratch("http");
    let scheduler = Scheduler::new(config(&dir));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&scheduler)).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let srv = std::thread::spawn(move || server.run());
    let client = Client::new(&format!("http://{addr}"));

    let fp = failpoint::scoped("cell-run=delay(150)");
    // Sweep A: BFS on cond, both systems, gpu mode — 2 cells.
    let a = client
        .submit(&Value::Object(vec![
            ("filter".to_string(), Value::Str("BFS/cond".to_string())),
            (
                "modes".to_string(),
                Value::Array(vec![Value::Str("gpu".to_string())]),
            ),
        ]))
        .expect("submit sweep a");
    // Sweep B: every algorithm on cond/TX1/gpu — 5 cells, overlapping
    // sweep A on BFS/cond/TX1/gpu while it is still in flight.
    let b = client
        .submit(&Value::Object(vec![(
            "filter".to_string(),
            Value::Str("cond/TX1/gpu".to_string()),
        )]))
        .expect("submit sweep b");

    // Two concurrent streaming clients, one per sweep.
    let streams: Vec<_> = [a, b]
        .into_iter()
        .map(|id| {
            let client = client.clone();
            std::thread::spawn(move || {
                let mut events = Vec::new();
                client
                    .stream_events(id, |e| events.push(e.clone()))
                    .expect("event stream");
                (id, events)
            })
        })
        .collect();
    let mut done = Vec::new();
    for stream in streams {
        done.push(stream.join().expect("streaming client"));
    }
    drop(fp);

    for (id, events) in &done {
        let labels: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("type").and_then(Value::as_str))
            .collect();
        assert_eq!(
            labels.last(),
            Some(&"done"),
            "sweep {id} stream must close with a done event: {labels:?}"
        );
        let status = client.sweep(*id).expect("status");
        assert_eq!(field_u64(&status, "failed"), 0, "sweep {id}");
        assert_eq!(
            field_u64(&status, "finished"),
            field_u64(&status, "total"),
            "sweep {id}"
        );
    }

    // Dedup proof over HTTP: 2 + 5 requested, 6 unique, 1 coalesced.
    let metrics = client.metrics().expect("metrics");
    assert_eq!(field_u64(&metrics, "cells_requested"), 7);
    assert_eq!(field_u64(&metrics, "scheduled"), 6);
    assert_eq!(field_u64(&metrics, "coalesced"), 1);
    assert_eq!(field_u64(&metrics, "computed"), 6);
    // Trace-cache counters are exported (process-global values depend
    // on which tests ran first in this binary, so assert presence, not
    // magnitudes — field_u64 panics on a missing key).
    for key in [
        "trace_cache_hits",
        "trace_cache_misses",
        "trace_cache_stores",
        "trace_cache_poisoned",
        "trace_cache_bytes_replayed",
        "trace_records_stored",
    ] {
        let _ = field_u64(&metrics, key);
    }

    // The overlapping cell reads back from the cache byte-identical to
    // a local simulation — the `run_one --remote` contract.
    let shared = bfs_cond_tx1(scheduler.experiment());
    let entry = client
        .cell(&shared.id())
        .expect("cell read")
        .expect("computed cell is cached");
    let served = entry.get("value").expect("cell value");
    assert_eq!(text(served), text(&shared.run_value()));

    let (a_id, _) = done[0];
    let results = client.results(a_id).expect("results");
    let rows = results.get("results").and_then(Value::as_array).unwrap();
    let via_sweep = rows
        .iter()
        .find(|r| r.get("cell").and_then(Value::as_str) == Some(shared.id().as_str()))
        .and_then(|r| r.get("value"))
        .expect("sweep a carries the shared cell");
    assert_eq!(text(via_sweep), text(served));

    // Graceful shutdown: run() returns with every worker joined.
    handle.shutdown();
    srv.join().expect("server thread exits cleanly");
}

#[test]
fn a_panicking_cell_poisons_only_the_sweeps_that_asked_for_it() {
    let _serial = lock();
    let dir = scratch("poison");
    let scheduler = Scheduler::new(config(&dir));
    let cfg = scheduler.experiment().clone();
    let (x, y) = (bfs_cond_tx1(&cfg), bfs_kron_tx1(&cfg));

    // Only the first simulated cell panics; retries are off in
    // `config`, so the failure is permanent.
    let fp = failpoint::scoped("cell-run=panic(injected cell crash)@1");
    let a = scheduler.submit(vec![x.clone()], None).expect("submit a");
    a.wait_done();
    let status = a.status();
    assert_eq!(field_u64(&status, "failed"), 1);
    let error = status
        .get("cells")
        .and_then(Value::as_array)
        .and_then(|cells| cells.first())
        .and_then(|c| c.get("error"))
        .and_then(Value::as_str)
        .expect("failed cell carries its error");
    assert!(error.contains("injected cell crash"), "{error}");

    // The daemon survives: a later sweep on a healthy cell completes.
    let b = scheduler.submit(vec![y], None).expect("submit b");
    b.wait_done();
    drop(fp);
    let status = b.status();
    assert_eq!(field_u64(&status, "failed"), 0);
    assert_eq!(field_u64(&status, "finished"), 1);
    let c = scheduler.counters();
    assert_eq!(c.failed, 1);
    assert_eq!(c.computed, 1);
    scheduler.shutdown();
}

#[test]
fn shutdown_drains_and_a_restart_resumes_warm() {
    let _serial = lock();
    let dir = scratch("restart");
    let cfg = config(&dir);
    let cells = vec![
        bfs_cond_tx1(&cfg.experiment),
        bfs_kron_tx1(&cfg.experiment),
        cc_cond_tx1(&cfg.experiment),
    ];

    let finished_first = {
        let scheduler = Scheduler::new(cfg.clone());
        let fp = failpoint::scoped("cell-run=delay(300)");
        let sweep = scheduler.submit(cells.clone(), None).expect("submit");
        // Shut down mid-batch, after at least one cell completed.
        let (events, _) = sweep.wait_events(0);
        assert!(!events.is_empty());
        scheduler.shutdown();
        sweep.wait_done();
        drop(fp);
        let status = sweep.status();
        let finished = field_u64(&status, "finished");
        assert!(finished >= 1, "the running batch drains, not aborts");
        assert_eq!(field_u64(&status, "failed"), 0);
        assert_eq!(field_u64(&status, "resolved"), 3, "every cell resolves");
        finished
    };

    // A fresh scheduler over the same directories resumes from the
    // cache: drained cells are submission-time hits, never recomputed.
    let scheduler = Scheduler::new(cfg);
    let sweep = scheduler.submit(cells, None).expect("resubmit");
    sweep.wait_done();
    let status = sweep.status();
    assert_eq!(field_u64(&status, "finished"), 3);
    assert_eq!(field_u64(&status, "failed"), 0);
    let c = scheduler.counters();
    assert_eq!(c.cache_hits, finished_first, "drained cells came from disk");
    assert_eq!(c.scheduled, 3 - finished_first);
    scheduler.shutdown();
}

#[test]
fn cancelling_a_sweep_closes_its_stream() {
    let _serial = lock();
    let dir = scratch("cancel");
    let scheduler = Scheduler::new(config(&dir));
    let cfg = scheduler.experiment().clone();
    let fp = failpoint::scoped("cell-run=delay(200)");
    let sweep = scheduler
        .submit(vec![bfs_cond_tx1(&cfg), bfs_kron_tx1(&cfg)], None)
        .expect("submit");
    assert!(scheduler.cancel_sweep(sweep.id));
    sweep.wait_done();
    drop(fp);
    assert_eq!(
        sweep.status().get("cancelled").and_then(Value::as_bool),
        Some(true)
    );
    assert!(!scheduler.cancel_sweep(987_654), "unknown ids report false");
    scheduler.shutdown();
}

#[test]
fn submissions_outside_the_matrix_or_during_shutdown_are_rejected() {
    let dir = scratch("reject");
    let scheduler = Scheduler::new(config(&dir));
    // A cell built from a different experiment configuration shares an
    // id with a catalog cell but not its parameters.
    let foreign = ExperimentConfig::new();
    let err = scheduler
        .submit(vec![bfs_cond_tx1(&foreign)], None)
        .expect_err("foreign cells are rejected");
    assert!(err.contains("does not match"), "{err}");

    scheduler.shutdown();
    let cfg = scheduler.experiment().clone();
    let err = scheduler
        .submit(vec![bfs_cond_tx1(&cfg)], None)
        .expect_err("submissions after shutdown are rejected");
    assert!(err.contains("shutting down"), "{err}");
}

//! Chaos suite: the daemon under hostile and degraded conditions.
//!
//! Each test stages one failure mode — a slowloris client, an
//! oversized body, a client that vanishes mid-event-stream, a
//! connection flood, an expired sweep deadline, injected accept
//! faults, a restart under load — and asserts the daemon degrades the
//! way DESIGN.md §3e promises: the bad client is shed or cut off, the
//! accept loop keeps serving, sweep state is released (never leaked),
//! and in-flight work still reaches the cache and journal.
//!
//! Failpoint sites are process-global, so every test holds [`lock`] —
//! the suite serialises instead of interleaving injected faults.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use scu_algos::experiment::ExperimentConfig;
use scu_harness::failpoint;
use scu_server::{
    Client, Scheduler, SchedulerConfig, Server, ServerConfig, ServerHandle,
    DEFAULT_MAX_PENDING_CELLS,
};
use serde_json::Value;

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scu-server-chaos-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("creating the scratch dir");
    dir
}

/// Single-worker scheduler over the tiny matrix: cells resolve one at
/// a time, which the timing-sensitive tests rely on.
fn config(dir: &Path) -> SchedulerConfig {
    SchedulerConfig {
        experiment: ExperimentConfig::tiny(),
        jobs: 1,
        sim_threads: 1,
        retries: 0,
        cache_dir: Some(dir.join("cache")),
        manifest: Some(dir.join("manifest.json")),
        max_pending_cells: DEFAULT_MAX_PENDING_CELLS,
        max_retained_sweeps: scu_server::DEFAULT_MAX_RETAINED_SWEEPS,
    }
}

/// Aggressive socket knobs so the suite's failure windows are short.
fn tight() -> ServerConfig {
    ServerConfig {
        workers: 4,
        max_queued_conns: 16,
        read_timeout: Duration::from_millis(200),
        write_timeout: Duration::from_millis(500),
        request_deadline: Duration::from_millis(400),
    }
}

/// Binds a server over a fresh scheduler and runs it on a thread.
fn serve(
    dir: &Path,
    cfg: ServerConfig,
) -> (
    Arc<Scheduler>,
    SocketAddr,
    ServerHandle,
    std::thread::JoinHandle<()>,
) {
    let scheduler = Scheduler::new(config(dir));
    let server = Server::bind_with("127.0.0.1:0", Arc::clone(&scheduler), cfg).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());
    (scheduler, addr, handle, thread)
}

/// Sends raw bytes on a fresh connection and reads the whole response.
fn raw_request(addr: SocketAddr, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(bytes).expect("write request");
    stream.flush().unwrap();
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    response
}

fn field_u64(doc: &Value, name: &str) -> u64 {
    doc.get(name)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("document carries no u64 field '{name}': {doc:?}"))
}

fn field_str<'a>(doc: &'a Value, name: &str) -> &'a str {
    doc.get(name)
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("document carries no string field '{name}': {doc:?}"))
}

/// Polls `probe` until it returns true or the timeout elapses.
fn eventually(what: &str, timeout: Duration, mut probe: impl FnMut() -> bool) {
    let start = Instant::now();
    while !probe() {
        assert!(start.elapsed() < timeout, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn slowloris_is_cut_off_and_the_daemon_keeps_serving() {
    let _serial = lock();
    let dir = scratch("slowloris");
    let (_scheduler, addr, handle, srv) = serve(&dir, tight());

    // A client that trickles one header byte per 50 ms: each read(2)
    // succeeds well inside the socket timeout, so only the wall-clock
    // request deadline (400 ms) can cut it off.
    let mut attacker = TcpStream::connect(addr).expect("connect");
    attacker
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut feeder = attacker.try_clone().expect("clone");
    let trickler = std::thread::spawn(move || {
        for byte in b"GET /healthz HTTP/1.1\r\nX-Slow: aaaaaaaaaaaaaaaaaaaaaaaaaaaa" {
            if feeder.write_all(&[*byte]).is_err() {
                return; // cut off — exactly what the test wants
            }
            let _ = feeder.flush();
            std::thread::sleep(Duration::from_millis(50));
        }
    });
    let mut response = String::new();
    let _ = attacker.read_to_string(&mut response);
    trickler.join().unwrap();
    assert!(
        response.starts_with("HTTP/1.1 408 "),
        "slowloris gets a 408, got: {response:?}"
    );

    // The worker the attacker held is free again; the daemon answers.
    let health = Client::new(&format!("http://{addr}"))
        .health()
        .expect("healthz after slowloris");
    assert_eq!(field_str(&health, "status"), "ok");
    handle.shutdown();
    srv.join().unwrap();
}

#[test]
fn oversized_heads_and_bodies_are_rejected_not_buffered() {
    let _serial = lock();
    let dir = scratch("oversize");
    let (_scheduler, addr, handle, srv) = serve(&dir, tight());

    // A body declared past MAX_BODY is refused from the declaration
    // alone — the server never tries to buffer it.
    let response = raw_request(
        addr,
        format!(
            "POST /sweeps HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            scu_server::http::MAX_BODY + 1
        )
        .as_bytes(),
    );
    assert!(
        response.starts_with("HTTP/1.1 413 "),
        "oversized body gets a 413, got: {response:?}"
    );

    // Same for a header block past MAX_HEAD.
    let mut huge_head = b"GET /healthz HTTP/1.1\r\n".to_vec();
    while huge_head.len() <= scu_server::http::MAX_HEAD + 8 {
        huge_head.extend_from_slice(b"X-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
    }
    huge_head.extend_from_slice(b"\r\n");
    let response = raw_request(addr, &huge_head);
    assert!(
        response.starts_with("HTTP/1.1 413 "),
        "oversized head gets a 413, got: {response:?}"
    );

    let health = Client::new(&format!("http://{addr}")).health().unwrap();
    assert_eq!(field_str(&health, "status"), "ok");
    handle.shutdown();
    srv.join().unwrap();
}

/// `{"deadline_secs":1e20}` once panicked `Duration::from_secs_f64`
/// on the worker thread; with a fixed pool and no respawn, one such
/// POST per worker made the daemon unresponsive. The parser must keep
/// absurd deadlines on the 400 path.
#[test]
fn absurd_deadlines_get_400_and_never_kill_a_worker() {
    let _serial = lock();
    let dir = scratch("absurd-deadline");
    let (_scheduler, addr, handle, srv) = serve(&dir, tight());

    // More hostile POSTs than the pool has workers (4): if any one of
    // them unwound its worker, the healthz probe below would hang.
    for bad in ["1e20", "1e308", "-1", "18446744073709551615"] {
        for _ in 0..2 {
            let body = format!("{{\"filter\":\"BFS/cond\",\"deadline_secs\":{bad}}}");
            let response = raw_request(
                addr,
                format!(
                    "POST /sweeps HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                )
                .as_bytes(),
            );
            assert!(
                response.starts_with("HTTP/1.1 400 "),
                "deadline_secs={bad} gets a 400, got: {response:?}"
            );
        }
    }

    let health = Client::new(&format!("http://{addr}")).health().unwrap();
    assert_eq!(field_str(&health, "status"), "ok");
    handle.shutdown();
    srv.join().unwrap();
}

#[test]
fn mid_stream_disconnect_releases_the_sweep() {
    let _serial = lock();
    let dir = scratch("disconnect");
    let (scheduler, addr, handle, srv) = serve(&dir, tight());
    let client = Client::new(&format!("http://{addr}"));

    // Five slow cells, one worker: events arrive one at a time.
    let fp = failpoint::scoped("cell-run=delay(300)");
    let id = client
        .submit(&Value::Object(vec![(
            "filter".to_string(),
            Value::Str("cond/TX1/gpu".to_string()),
        )]))
        .expect("submit");

    // Attach an event stream, then vanish without reading a byte.
    let mut ghost = TcpStream::connect(addr).expect("connect");
    write!(ghost, "GET /sweeps/{id}/events HTTP/1.1\r\n\r\n").unwrap();
    ghost.flush().unwrap();
    drop(ghost);

    // The next event write hits the dead socket; the server releases
    // the sweep instead of computing for a ghost.
    eventually(
        "the disconnect to be detected",
        Duration::from_secs(10),
        || field_u64(&client.metrics().unwrap(), "disconnected_streams") == 1,
    );
    let sweep = scheduler.sweep(id).expect("sweep state");
    sweep.wait_done();
    drop(fp);
    let status = sweep.status();
    assert_eq!(
        status.get("cancelled").and_then(Value::as_bool),
        Some(true),
        "orphaned sweep is released: {status:?}"
    );

    // No leaked state: the daemon settles back to `ok` and a fresh
    // sweep on healthy cells completes.
    eventually("the daemon to settle", Duration::from_secs(10), || {
        field_str(&client.health().unwrap(), "load") == "ok"
    });
    let id = client
        .submit(&Value::Object(vec![
            ("filter".to_string(), Value::Str("BFS/kron".to_string())),
            (
                "modes".to_string(),
                Value::Array(vec![Value::Str("gpu".to_string())]),
            ),
        ]))
        .expect("submit after disconnect");
    let status = client.wait(id).expect("wait");
    assert_eq!(field_u64(&status, "failed"), 0);
    assert_eq!(field_u64(&status, "finished"), field_u64(&status, "total"));
    handle.shutdown();
    srv.join().unwrap();
}

#[test]
fn connection_flood_sheds_while_the_inflight_sweep_completes() {
    let _serial = lock();
    let dir = scratch("flood");
    // One worker, one queued connection: the flood has nowhere to go.
    let cfg = ServerConfig {
        workers: 1,
        max_queued_conns: 1,
        ..tight()
    };
    let (_scheduler, addr, handle, srv) = serve(&dir, cfg);
    let client = Client::new(&format!("http://{addr}"));

    let fp = failpoint::scoped("cell-run=delay(300)");
    let id = client
        .submit(&Value::Object(vec![
            ("filter".to_string(), Value::Str("BFS/cond".to_string())),
            (
                "modes".to_string(),
                Value::Array(vec![Value::Str("gpu".to_string())]),
            ),
        ]))
        .expect("submit");
    // The streaming client occupies the only worker for ~600 ms.
    let streamer = {
        let client = client.clone();
        std::thread::spawn(move || {
            let mut labels = Vec::new();
            client
                .stream_events(id, |e| {
                    labels.extend(e.get("type").and_then(Value::as_str).map(String::from));
                })
                .expect("event stream");
            labels
        })
    };
    // Wait until the stream actually holds the worker.
    std::thread::sleep(Duration::from_millis(100));

    // Flood: eight connections against a queue of one, opened before
    // any response is read so they all land while the worker is held.
    // The overflow is shed instantly with 503 + Retry-After; nothing
    // hangs the accept loop.
    let flood: Vec<TcpStream> = (0..8)
        .map(|_| {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
            stream.flush().unwrap();
            stream
        })
        .collect();
    let responses: Vec<String> = flood
        .into_iter()
        .map(|mut stream| {
            let mut response = String::new();
            let _ = stream.read_to_string(&mut response);
            response
        })
        .collect();
    let shed = responses
        .iter()
        .filter(|r| r.starts_with("HTTP/1.1 503 "))
        .count();
    assert!(shed >= 1, "the flood is shed, got: {responses:?}");
    assert!(
        responses
            .iter()
            .filter(|r| r.starts_with("HTTP/1.1 503 "))
            .all(|r| r.contains("Retry-After: 1\r\n")),
        "shed responses carry Retry-After"
    );

    // The sweep the flood tried to drown finished untouched.
    let labels = streamer.join().expect("streamer");
    drop(fp);
    assert_eq!(labels.last().map(String::as_str), Some("done"));
    let status = client.sweep(id).expect("status");
    assert_eq!(field_u64(&status, "failed"), 0);
    assert_eq!(field_u64(&status, "finished"), field_u64(&status, "total"));
    let metrics = client.metrics().expect("metrics");
    assert!(field_u64(&metrics, "shed_connections") >= shed as u64);
    handle.shutdown();
    srv.join().unwrap();
}

#[test]
fn deadline_expiry_cancels_the_sweep_and_the_daemon_survives() {
    let _serial = lock();
    let dir = scratch("deadline");
    let (_scheduler, addr, handle, srv) = serve(&dir, tight());
    let client = Client::new(&format!("http://{addr}"));

    // Five 400 ms cells against a 250 ms sweep budget: at most one
    // resolves before the deadline watcher fires.
    let fp = failpoint::scoped("cell-run=delay(400)");
    let id = client
        .submit(&Value::Object(vec![
            ("filter".to_string(), Value::Str("cond/TX1/gpu".to_string())),
            ("deadline_secs".to_string(), Value::F64(0.25)),
        ]))
        .expect("submit");
    let mut events = Vec::new();
    client
        .stream_events(id, |e| events.push(e.clone()))
        .expect("event stream");
    drop(fp);

    let types: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("type").and_then(Value::as_str))
        .collect();
    assert_eq!(types.last(), Some(&"done"), "{types:?}");
    let marker = events
        .iter()
        .find(|e| e.get("type").and_then(Value::as_str) == Some("cancelled"))
        .expect("the cancellation marker event");
    assert_eq!(field_str(marker, "reason"), "deadline-expired");

    let status = client.sweep(id).expect("status");
    assert_eq!(status.get("cancelled").and_then(Value::as_bool), Some(true));
    let cancelled_cells = status
        .get("cells")
        .and_then(Value::as_array)
        .expect("cells")
        .iter()
        .filter(|c| c.get("state").and_then(Value::as_str) == Some("cancelled"))
        .count();
    assert!(cancelled_cells >= 1, "{status:?}");
    let metrics = client.metrics().expect("metrics");
    assert_eq!(field_u64(&metrics, "deadline_expired"), 1);

    // The daemon is still alive and a deadline-free sweep completes.
    assert_eq!(field_str(&client.health().unwrap(), "status"), "ok");
    let id = client
        .submit(&Value::Object(vec![
            ("filter".to_string(), Value::Str("BFS/kron".to_string())),
            (
                "modes".to_string(),
                Value::Array(vec![Value::Str("gpu".to_string())]),
            ),
        ]))
        .expect("submit after expiry");
    let status = client.wait(id).expect("wait");
    assert_eq!(field_u64(&status, "failed"), 0);
    handle.shutdown();
    srv.join().unwrap();
}

#[test]
fn injected_accept_faults_are_absorbed_by_client_retries() {
    let _serial = lock();
    let dir = scratch("accept-fault");
    let (_scheduler, addr, handle, srv) = serve(&dir, tight());

    // The first accepted connection is dropped before a byte is read;
    // the accept loop must keep serving and the client's retry policy
    // must absorb the loss.
    let fp = failpoint::scoped("server-accept=disconnect@1");
    let client = Client::new(&format!("http://{addr}"))
        .with_retries(3)
        .with_backoff(Duration::from_millis(10), Duration::from_millis(100));
    let health = client.health().expect("health survives the dropped conn");
    assert_eq!(field_str(&health, "status"), "ok");
    drop(fp);

    // A zero-retry client sees the same fault as a hard error — proof
    // the retry (not luck) absorbed it above.
    let fp = failpoint::scoped("server-accept=disconnect@1");
    let single_shot = Client::new(&format!("http://{addr}")).with_retries(0);
    assert!(single_shot.health().is_err(), "single shot hits the fault");
    drop(fp);
    assert!(single_shot.health().is_ok(), "the daemon itself is fine");
    handle.shutdown();
    srv.join().unwrap();
}

#[test]
fn restart_under_load_resumes_warm_over_http() {
    let _serial = lock();
    let dir = scratch("restart");

    let fp = failpoint::scoped("cell-run=delay(300)");
    let finished_first = {
        let (_scheduler, addr, handle, srv) = serve(&dir, tight());
        let client = Client::new(&format!("http://{addr}"));
        let id = client
            .submit(&Value::Object(vec![(
                "filter".to_string(),
                Value::Str("cond/TX1/gpu".to_string()),
            )]))
            .expect("submit");
        // Shut down mid-batch, while a streaming client is attached.
        let streamer = {
            let client = client.clone();
            std::thread::spawn(move || {
                // Count only cells that actually finished — the drain
                // also emits `cancelled` cell events, which never reach
                // the cache.
                let mut count = 0u64;
                let _ = client.stream_events(id, |e| {
                    if matches!(
                        e.get("label").and_then(Value::as_str),
                        Some("done") | Some("cached")
                    ) {
                        count += 1;
                    }
                });
                count
            })
        };
        std::thread::sleep(Duration::from_millis(450));
        handle.shutdown();
        srv.join().expect("server run() returns after shutdown");
        // The stream closed instead of wedging the client forever.
        let events_seen = streamer.join().expect("streamer");
        assert!(events_seen >= 1, "at least one cell resolved pre-drain");
        events_seen
    };

    // A fresh daemon over the same directories: drained cells are
    // cache hits, never recomputed.
    let (scheduler, addr, handle, srv) = serve(&dir, tight());
    let client = Client::new(&format!("http://{addr}"));
    let id = client
        .submit(&Value::Object(vec![(
            "filter".to_string(),
            Value::Str("cond/TX1/gpu".to_string()),
        )]))
        .expect("resubmit");
    let status = client.wait(id).expect("wait");
    drop(fp);
    assert_eq!(field_u64(&status, "failed"), 0);
    assert_eq!(field_u64(&status, "finished"), field_u64(&status, "total"));
    let counters = scheduler.counters();
    assert!(
        counters.cache_hits >= finished_first,
        "cells drained before the restart come from disk: {counters:?}"
    );
    handle.shutdown();
    srv.join().unwrap();
}

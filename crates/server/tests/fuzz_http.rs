//! Property fuzz over the hand-rolled request parser: whatever bytes
//! arrive — random garbage, truncated heads, absurd `Content-Length`
//! declarations, non-UTF-8 header blocks — `read_request_from` must
//! return `Err`, never panic, never loop, and never hand back a body
//! that disagrees with the request's own declaration.

use std::io::Cursor;

use proptest::prelude::*;
use scu_server::http::{read_request_from, ReadLimits, MAX_BODY};

/// Parses raw bytes with default limits (no deadline: the cursor can
/// never block, so termination must come from the parser itself).
fn parse(raw: &[u8]) -> std::io::Result<scu_server::http::Request> {
    read_request_from(&mut Cursor::new(raw), &ReadLimits::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arbitrary_bytes_never_panic(
        raw in prop::collection::vec(0u8..=255, 0..2048),
    ) {
        // Ok or Err are both acceptable; panicking or hanging is not.
        let _ = parse(&raw);
    }

    #[test]
    fn valid_requests_round_trip_and_truncations_fail(
        body_len in 0usize..600,
        cut_fraction in 0usize..100,
    ) {
        let body: Vec<u8> = (0..body_len).map(|i| (i % 251) as u8).collect();
        let mut raw =
            format!("POST /sweeps HTTP/1.1\r\nContent-Length: {body_len}\r\n\r\n").into_bytes();
        let head_len = raw.len();
        raw.extend_from_slice(&body);

        let parsed = parse(&raw).expect("a complete request parses");
        prop_assert_eq!(parsed.method, "POST");
        prop_assert_eq!(parsed.body, body);

        // Any strict prefix is a truncation: EOF mid-head or mid-body
        // must surface as Err, never as a short body.
        let cut = cut_fraction * (raw.len() - 1) / 100;
        prop_assert!(cut < raw.len());
        let err = parse(&raw[..cut]).expect_err("truncated request fails");
        prop_assert!(err.to_string().contains("closed mid-request"), "{}", err);
        // Truncations inside the head never reach the body reader.
        let _ = head_len;
    }

    #[test]
    fn absurd_content_lengths_are_rejected(
        over_cap in 1u64..1_000_000,
    ) {
        // Past the cap but parseable: refused from the declaration
        // alone, without buffering a byte.
        let declared = MAX_BODY as u64 + over_cap;
        let raw = format!("POST /x HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n");
        let err = parse(raw.as_bytes()).expect_err("oversized declaration fails");
        prop_assert!(err.to_string().contains("too large"), "{}", err);
    }

    #[test]
    fn unparsable_content_lengths_are_rejected(
        junk in prop::collection::vec(0u8..=255, 1..24),
    ) {
        // Whatever lands in the Content-Length value — negative
        // numbers, overflow digits, binary noise — parses to a clean
        // Err. CR/LF inside the junk just reshapes the head; both
        // outcomes must be panic-free, and a parsed request must carry
        // an empty body (no Content-Length survived).
        let mut raw = b"GET /x HTTP/1.1\r\nContent-Length: ".to_vec();
        raw.extend_from_slice(&junk);
        raw.extend_from_slice(b"\r\n\r\n");
        if let Ok(request) = parse(&raw) {
            prop_assert!(request.body.is_empty());
        }
    }

    #[test]
    fn non_utf8_heads_are_rejected(
        position in 0usize..20,
        byte in 0xf5u8..=0xff,
    ) {
        // 0xF5..=0xFF can never appear in UTF-8. Splice one into the
        // head; the parser must refuse the block, not lose the plot.
        let mut raw = b"GET /healthz HTTP/1.1\r\nX-Junk: padpadpad\r\n\r\n".to_vec();
        raw[position] = byte;
        let err = parse(&raw).expect_err("non-UTF-8 head fails");
        prop_assert!(!err.to_string().is_empty());
    }
}

//! Stable content hashing for cache keys.
//!
//! Cache entries are addressed by a hash of the canonical (compact)
//! JSON serialisation of the cell configuration plus a model-version
//! string. The hash must be stable across processes, platforms and
//! releases — `std::hash` explicitly is not — so this module fixes the
//! function: two independently-keyed 64-bit FNV-1a passes concatenated
//! into a 128-bit hex digest. FNV is not collision-resistant against
//! adversaries, but cache keys come from our own configuration space,
//! and the cache verifies the stored key on every hit (see
//! `cache.rs`), so a collision degrades to a cache miss, never to a
//! wrong result.

/// 128-bit stable digest of `bytes`, as 32 lowercase hex characters —
/// filesystem-safe, fixed-width.
///
/// The implementation lives in `scu-store` (both store backends address
/// entries by it); this re-export keeps the harness's historical API
/// and pins the function with the tests below.
pub use scu_store::hash::stable_digest;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable() {
        // Pinned: changing the hash silently invalidates every
        // on-disk cache, so make that an explicit decision.
        assert_eq!(stable_digest(b""), "cbf29ce484222325efcdf66c01812bf6");
        assert_eq!(stable_digest(b"scu"), stable_digest(b"scu"));
    }

    #[test]
    fn digest_shape() {
        let d = stable_digest(b"anything");
        assert_eq!(d.len(), 32);
        assert!(d
            .chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
    }

    #[test]
    fn nearby_inputs_diverge() {
        assert_ne!(stable_digest(b"cell-1"), stable_digest(b"cell-2"));
        assert_ne!(stable_digest(b"ab"), stable_digest(b"ba"));
    }
}

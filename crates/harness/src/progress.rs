//! Live progress lines and the end-of-sweep summary.

use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::error::lock_unpoisoned;
use crate::job::{JobGraph, Outcome};

/// One per-job completion, as delivered to a progress observer — the
/// hook the sweep server streams to its clients. Carries everything
/// the human-readable line is rendered from, in structured form.
#[derive(Debug, Clone)]
pub struct ProgressEvent {
    /// 1-based completion sequence number (completion order, not
    /// insertion order).
    pub seq: usize,
    /// Jobs in the sweep.
    pub total: usize,
    /// The job's id.
    pub id: String,
    /// The outcome's one-word label (`done`, `cached`, `FAILED`, …).
    pub label: &'static str,
    /// Whether the value came from the cache or resume journal.
    pub cached: bool,
    /// Wall-clock the job took (zero-ish for cached jobs).
    pub duration: Duration,
    /// The failure message, for `FAILED` outcomes.
    pub error: Option<String>,
    /// Completions per second over the sweep so far.
    pub cells_per_sec: f64,
    /// Projected time to finish the remaining jobs at the current
    /// rate; `None` once everything finished.
    pub eta: Option<Duration>,
}

/// Callback invoked on every job completion, from worker threads.
pub type ProgressObserver = Arc<dyn Fn(&ProgressEvent) + Send + Sync>;

/// Where per-job completion lines go. Thread-safe; shared by all
/// workers.
pub struct Progress {
    total: usize,
    finished: AtomicUsize,
    start: Instant,
    to_stderr: bool,
    file: Option<Mutex<File>>,
    observer: Option<ProgressObserver>,
}

impl Progress {
    /// Reports nothing (unit tests, library use).
    pub fn silent(total: usize) -> Self {
        Progress {
            total,
            finished: AtomicUsize::new(0),
            start: Instant::now(),
            to_stderr: false,
            file: None,
            observer: None,
        }
    }

    /// Narrates each completion on stderr, like the sequential
    /// reproduction did.
    pub fn stderr(total: usize) -> Self {
        Progress {
            to_stderr: true,
            ..Progress::silent(total)
        }
    }

    /// Additionally appends each line to `path` (the live progress
    /// file under `results/`). Truncates any previous content.
    pub fn with_file(mut self, path: &Path) -> std::io::Result<Self> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        self.file = Some(Mutex::new(File::create(path)?));
        Ok(self)
    }

    /// Additionally delivers every completion to `observer`, from
    /// whichever worker thread finished the job.
    pub fn with_observer(mut self, observer: ProgressObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Throughput over the sweep so far: completions per second and
    /// the projected time to drain the remainder at that rate.
    fn throughput(&self, finished: usize) -> (f64, Option<Duration>) {
        let elapsed = self.start.elapsed().as_secs_f64().max(1e-9);
        let rate = finished as f64 / elapsed;
        let remaining = self.total.saturating_sub(finished);
        let eta =
            (remaining > 0 && rate > 0.0).then(|| Duration::from_secs_f64(remaining as f64 / rate));
        (rate, eta)
    }

    /// Records one finished job and emits its line.
    pub fn job_finished(&self, id: &str, outcome: &Outcome) {
        let n = self.finished.fetch_add(1, Ordering::Relaxed) + 1;
        let (cells_per_sec, eta) = self.throughput(n);
        if let Some(observer) = &self.observer {
            let (cached, duration) = match outcome {
                Outcome::Done {
                    cached, duration, ..
                } => (*cached, *duration),
                _ => (false, Duration::ZERO),
            };
            observer(&ProgressEvent {
                seq: n,
                total: self.total,
                id: id.to_string(),
                label: outcome.label(),
                cached,
                duration,
                error: match outcome {
                    Outcome::Failed { error, .. } => Some(error.clone()),
                    _ => None,
                },
                cells_per_sec,
                eta,
            });
        }
        if !self.to_stderr && self.file.is_none() {
            return;
        }
        let retry_note = |retries: &[crate::job::Attempt]| -> String {
            match retries.len() {
                0 => String::new(),
                1 => " (after 1 retry)".to_string(),
                n => format!(" (after {n} retries)"),
            }
        };
        // The pace suffix turns a silent multi-minute sweep into a
        // live dashboard line: how fast cells land, when it will end.
        let pace = match eta {
            Some(eta) => format!(" [{cells_per_sec:.1} cells/s, ETA {}]", fmt_duration(eta)),
            None => format!(" [{cells_per_sec:.1} cells/s]"),
        };
        let line = match outcome {
            Outcome::Done {
                duration,
                cached,
                retries,
                ..
            } => format!(
                "[{n}/{}] {id} {} ({}){}{pace}",
                self.total,
                if *cached { "cached" } else { "done" },
                fmt_duration(*duration),
                retry_note(retries),
            ),
            Outcome::Failed { error, retries } => {
                let first = error.lines().next().unwrap_or("");
                format!(
                    "[{n}/{}] {id} FAILED: {first}{}",
                    self.total,
                    retry_note(retries)
                )
            }
            Outcome::TimedOut { limit, retries } => {
                format!(
                    "[{n}/{}] {id} TIMED-OUT after {}{}",
                    self.total,
                    fmt_duration(*limit),
                    retry_note(retries),
                )
            }
            Outcome::Skipped { failed_dep } => {
                format!(
                    "[{n}/{}] {id} skipped (dependency '{failed_dep}' failed)",
                    self.total
                )
            }
            Outcome::Cancelled => {
                format!("[{n}/{}] {id} cancelled (sweep interrupted)", self.total)
            }
        };
        if self.to_stderr {
            eprintln!("{line}");
        }
        if let Some(file) = &self.file {
            let mut file = lock_unpoisoned(file, "progress file");
            let _ = writeln!(file, "{line}");
        }
    }

    /// Time since the progress tracker was created.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

/// Everything worth saying after a sweep.
#[derive(Debug, Clone)]
pub struct SweepSummary {
    /// Jobs in the graph.
    pub total: usize,
    /// Jobs that completed (fresh or cached).
    pub done: usize,
    /// Completions served from the result cache.
    pub cached: usize,
    /// `(job id, panic message)` for each failed job.
    pub failed: Vec<(String, String)>,
    /// Ids of jobs that exceeded the wall-clock budget.
    pub timed_out: Vec<String>,
    /// Ids of jobs skipped because a dependency did not complete.
    pub skipped: Vec<String>,
    /// Ids of jobs that completed only after at least one retry.
    pub retried: Vec<String>,
    /// Ids of jobs never started because the sweep was interrupted.
    pub cancelled: Vec<String>,
    /// Timed-out cell threads still running when the sweep ended.
    pub leaked_threads: usize,
    /// Wall-clock time of the whole sweep.
    pub wall: Duration,
    /// Sum of per-job compute durations (fresh completions only) —
    /// `cell_time / wall` approximates achieved parallelism.
    pub cell_time: Duration,
    /// The slowest fresh completions, `(job id, duration)`,
    /// descending; at most five.
    pub slowest: Vec<(String, Duration)>,
}

impl SweepSummary {
    /// Folds per-job outcomes into a summary. `leaked_threads` comes
    /// from the executor's end-of-sweep accounting of abandoned
    /// (timed-out) cell threads.
    pub fn new(
        graph: &JobGraph,
        outcomes: &[Outcome],
        wall: Duration,
        leaked_threads: usize,
    ) -> Self {
        assert_eq!(graph.len(), outcomes.len());
        let mut s = SweepSummary {
            total: outcomes.len(),
            done: 0,
            cached: 0,
            failed: Vec::new(),
            timed_out: Vec::new(),
            skipped: Vec::new(),
            retried: Vec::new(),
            cancelled: Vec::new(),
            leaked_threads,
            wall,
            cell_time: Duration::ZERO,
            slowest: Vec::new(),
        };
        let mut durations: Vec<(String, Duration)> = Vec::new();
        for (job, outcome) in graph.jobs().iter().zip(outcomes) {
            if outcome.was_retried() {
                s.retried.push(job.id.clone());
            }
            match outcome {
                Outcome::Done {
                    duration, cached, ..
                } => {
                    s.done += 1;
                    if *cached {
                        s.cached += 1;
                    } else {
                        s.cell_time += *duration;
                        durations.push((job.id.clone(), *duration));
                    }
                }
                Outcome::Failed { error, .. } => s.failed.push((job.id.clone(), error.clone())),
                Outcome::TimedOut { .. } => s.timed_out.push(job.id.clone()),
                Outcome::Skipped { .. } => s.skipped.push(job.id.clone()),
                Outcome::Cancelled => s.cancelled.push(job.id.clone()),
            }
        }
        durations.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        durations.truncate(5);
        s.slowest = durations;
        s
    }

    /// Whether every job completed.
    pub fn all_done(&self) -> bool {
        self.done == self.total
    }

    /// Whether every completion came from the cache.
    pub fn fully_cached(&self) -> bool {
        self.all_done() && self.cached == self.total
    }

    /// Multi-line human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "sweep: {}/{} cells done ({} from cache) in {}",
            self.done,
            self.total,
            self.cached,
            fmt_duration(self.wall),
        ));
        if self.cell_time > Duration::ZERO {
            out.push_str(&format!(
                " — {} of cell compute ({:.1}x parallel)",
                fmt_duration(self.cell_time),
                self.cell_time.as_secs_f64() / self.wall.as_secs_f64().max(1e-9),
            ));
        }
        if !self.retried.is_empty() {
            out.push_str(&format!(" — {} cell(s) retried", self.retried.len()));
        }
        out.push('\n');
        if self.leaked_threads > 0 {
            out.push_str(&format!(
                "leaked threads: {} timed-out cell(s) still running at sweep end\n",
                self.leaked_threads
            ));
        }
        if !self.slowest.is_empty() {
            out.push_str("slowest cells:\n");
            for (id, d) in &self.slowest {
                out.push_str(&format!("  {:<44} {}\n", id, fmt_duration(*d)));
            }
        }
        for (id, err) in &self.failed {
            out.push_str(&format!(
                "FAILED    {id}: {}\n",
                err.lines().next().unwrap_or("")
            ));
        }
        for id in &self.timed_out {
            out.push_str(&format!("TIMED-OUT {id}\n"));
        }
        for id in &self.skipped {
            out.push_str(&format!("skipped   {id} (failed dependency)\n"));
        }
        if !self.cancelled.is_empty() {
            out.push_str(&format!(
                "cancelled {} cell(s) (sweep interrupted; rerun with --resume)\n",
                self.cancelled.len()
            ));
        }
        out
    }

    /// Whether the sweep was interrupted before completing.
    pub fn was_interrupted(&self) -> bool {
        !self.cancelled.is_empty()
    }
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s < 0.001 {
        format!("{:.0} us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1} ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.2} s")
    } else {
        format!("{:.1} min", s / 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use serde_json::Value;

    fn graph(ids: &[&str]) -> JobGraph {
        let mut g = JobGraph::new();
        for &id in ids {
            g.push(Job::new(id, || Value::Null));
        }
        g
    }

    #[test]
    fn summary_counts_every_outcome_kind() {
        let g = graph(&["a", "b", "c", "d", "e", "f"]);
        let outcomes = vec![
            Outcome::Done {
                value: Value::Null,
                duration: Duration::from_secs(2),
                cached: false,
                retries: vec![crate::job::Attempt {
                    error: "transient".into(),
                    backoff: Duration::from_millis(100),
                }],
            },
            Outcome::Done {
                value: Value::Null,
                duration: Duration::from_millis(1),
                cached: true,
                retries: Vec::new(),
            },
            Outcome::Failed {
                error: "boom\nbacktrace".into(),
                retries: Vec::new(),
            },
            Outcome::TimedOut {
                limit: Duration::from_secs(1),
                retries: Vec::new(),
            },
            Outcome::Skipped {
                failed_dep: "c".into(),
            },
            Outcome::Cancelled,
        ];
        let s = SweepSummary::new(&g, &outcomes, Duration::from_secs(3), 1);
        assert_eq!((s.total, s.done, s.cached), (6, 2, 1));
        assert_eq!(
            s.failed,
            vec![("c".to_string(), "boom\nbacktrace".to_string())]
        );
        assert_eq!(s.timed_out, vec!["d".to_string()]);
        assert_eq!(s.skipped, vec!["e".to_string()]);
        assert_eq!(s.retried, vec!["a".to_string()]);
        assert_eq!(s.cancelled, vec!["f".to_string()]);
        assert_eq!(s.leaked_threads, 1);
        assert_eq!(s.cell_time, Duration::from_secs(2));
        assert!(!s.all_done());
        assert!(s.was_interrupted());
        let text = s.render();
        assert!(text.contains("2/6"));
        assert!(text.contains("FAILED    c: boom"));
        assert!(text.contains("1 cell(s) retried"));
        assert!(text.contains("leaked threads: 1"));
        assert!(text.contains("cancelled 1 cell(s)"));
        assert!(
            !text.contains("backtrace"),
            "only first line of panic shown"
        );
    }

    #[test]
    fn fully_cached_detection() {
        let g = graph(&["a"]);
        let outcomes = vec![Outcome::Done {
            value: Value::Null,
            duration: Duration::ZERO,
            cached: true,
            retries: Vec::new(),
        }];
        let s = SweepSummary::new(&g, &outcomes, Duration::from_millis(1), 0);
        assert!(s.fully_cached());
        assert!(!s.was_interrupted());
    }

    #[test]
    fn slowest_is_sorted_and_capped() {
        let g = graph(&["a", "b", "c", "d", "e", "f", "g"]);
        let outcomes: Vec<Outcome> = (0..7)
            .map(|i| Outcome::Done {
                value: Value::Null,
                duration: Duration::from_millis(100 - i),
                cached: false,
                retries: Vec::new(),
            })
            .collect();
        let s = SweepSummary::new(&g, &outcomes, Duration::from_secs(1), 0);
        assert_eq!(s.slowest.len(), 5);
        assert_eq!(s.slowest[0].0, "a");
        assert!(s.slowest.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn progress_writes_file_lines() {
        let path =
            std::env::temp_dir().join(format!("scu-harness-progress-{}.txt", std::process::id()));
        let p = Progress::silent(2).with_file(&path).unwrap();
        p.job_finished(
            "cell-a",
            &Outcome::Done {
                value: Value::Null,
                duration: Duration::ZERO,
                cached: false,
                retries: vec![crate::job::Attempt {
                    error: "flake".into(),
                    backoff: Duration::from_millis(1),
                }],
            },
        );
        p.job_finished(
            "cell-b",
            &Outcome::Failed {
                error: "why".into(),
                retries: Vec::new(),
            },
        );
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("[1/2] cell-a done"));
        assert!(text.contains("(after 1 retry)"));
        assert!(text.contains("[2/2] cell-b FAILED: why"));
        let _ = std::fs::remove_file(&path);
    }
}

//! Standard sweep-binary wiring.
//!
//! `reproduce_all`, `export_json` and the sweep server (`scu_serve`)
//! all need the same glue around a [`Harness`]: reject leftover CLI
//! arguments with usage, cache under `results/cache`, journal to
//! `results/manifest.json`, drain on SIGINT, and translate the sweep
//! summary into the conventional exit code. This module is that glue,
//! written once.

use crate::cli::{CliArgs, USAGE};
use crate::progress::SweepSummary;
use crate::Harness;

/// Where sweep binaries cache completed cells.
pub const DEFAULT_CACHE_DIR: &str = "results/cache";

/// Where sweep binaries journal completions for `--resume`.
pub const DEFAULT_MANIFEST: &str = "results/manifest.json";

/// Where sweep binaries keep build-once mmap'd graph artifacts.
/// The harness only names the directory (it cannot mount the store —
/// the dependency arrow points from `scu-algos` down to here);
/// binaries pass it to `scu_algos::mount_graph_artifacts` unless
/// `--no-graph-artifacts` was given.
pub const DEFAULT_GRAPH_DIR: &str = "results/graphs";

/// Exits with code 2 and a one-line error + usage if `args` carries
/// positionals or unknown flags — for binaries that take flags only.
pub fn reject_unparsed_args(args: &CliArgs) {
    if !args.rest.is_empty() {
        eprintln!("unexpected arguments: {:?}\n{USAGE}", args.rest);
        std::process::exit(2);
    }
}

/// The standard sweep harness: shared CLI flags applied over the
/// default cache dir, completions journaled to the default manifest,
/// SIGINT draining installed.
pub fn standard_harness(args: &CliArgs) -> Harness {
    Harness::new()
        .apply_cli(args, DEFAULT_CACHE_DIR)
        .manifest(DEFAULT_MANIFEST)
        .handle_sigint(true)
}

/// The conventional exit code for a finished sweep: `130` when it was
/// interrupted (SIGINT drained; rerun with `--resume`), `1` when cells
/// failed or timed out, `0` when everything completed. Pure, so the
/// policy is testable; [`exit_sweep`] applies it.
pub fn sweep_exit_code(summary: &SweepSummary) -> i32 {
    if summary.was_interrupted() {
        130
    } else if !summary.all_done() {
        1
    } else {
        0
    }
}

/// Ends the process with [`sweep_exit_code`], printing the resume hint
/// for interrupted sweeps. Only returns when the sweep completed.
pub fn exit_sweep(summary: &SweepSummary) {
    match sweep_exit_code(summary) {
        0 => {}
        130 => {
            eprintln!("interrupted — rerun with --resume to finish the remaining cells");
            std::process::exit(130);
        }
        code => std::process::exit(code),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Job, JobGraph, Outcome};
    use serde_json::Value;
    use std::time::Duration;

    fn summary_of(outcomes: Vec<Outcome>) -> SweepSummary {
        let mut g = JobGraph::new();
        for i in 0..outcomes.len() {
            g.push(Job::new(format!("job-{i}"), || Value::Null));
        }
        SweepSummary::new(&g, &outcomes, Duration::from_millis(1), 0)
    }

    fn done() -> Outcome {
        Outcome::Done {
            value: Value::Null,
            duration: Duration::ZERO,
            cached: false,
            retries: Vec::new(),
        }
    }

    #[test]
    fn complete_sweep_exits_zero() {
        assert_eq!(sweep_exit_code(&summary_of(vec![done(), done()])), 0);
    }

    #[test]
    fn failures_exit_one() {
        let s = summary_of(vec![
            done(),
            Outcome::Failed {
                error: "boom".into(),
                retries: Vec::new(),
            },
        ]);
        assert_eq!(sweep_exit_code(&s), 1);
    }

    #[test]
    fn interruption_exits_sigint_convention() {
        let s = summary_of(vec![done(), Outcome::Cancelled]);
        assert_eq!(sweep_exit_code(&s), 130);
    }

    #[test]
    fn standard_harness_honours_no_cache() {
        let args = CliArgs::parse(["--no-cache".to_string()]).unwrap();
        let h = standard_harness(&args);
        let text = format!("{h:?}");
        assert!(text.contains("cache_dir: None"));
        assert!(text.contains("handle_sigint: true"));
    }
}

//! Jobs and the dependency graph the executor runs.
//!
//! A [`Job`] is one experiment cell: a human-readable id, an optional
//! cache key (the canonical configuration of the cell), and a pure
//! work closure producing a JSON value. Jobs are collected into a
//! [`JobGraph`]; dependency edges may only point at already-inserted
//! jobs, which makes the graph acyclic by construction.

use std::sync::Arc;
use std::time::Duration;

use serde_json::Value;

/// Index of a job within its [`JobGraph`], in insertion order.
pub type JobId = usize;

/// One schedulable unit of work.
pub struct Job {
    /// Human-readable identity, e.g. `"BFS/kron/TX1/scu-enhanced"`.
    /// Shown in progress lines and failure summaries.
    pub id: String,
    /// Canonical configuration for content-addressed caching; `None`
    /// makes the job uncacheable (always recomputed).
    pub cache_key: Option<Value>,
    /// Jobs that must complete successfully before this one runs.
    pub deps: Vec<JobId>,
    /// The work itself. Must be pure: same configuration, same value.
    /// Shared (`Arc`) so a timed-out invocation can be abandoned
    /// without tearing down the closure under it.
    pub(crate) work: Arc<dyn Fn() -> Value + Send + Sync + 'static>,
}

impl Job {
    /// A dependency-free, uncached job.
    pub fn new(id: impl Into<String>, work: impl Fn() -> Value + Send + Sync + 'static) -> Self {
        Job {
            id: id.into(),
            cache_key: None,
            deps: Vec::new(),
            work: Arc::new(work),
        }
    }

    /// Attaches a cache key: the canonical JSON of everything the
    /// result depends on (cell configuration + model version).
    pub fn with_cache_key(mut self, key: Value) -> Self {
        self.cache_key = Some(key);
        self
    }

    /// Adds dependencies on earlier jobs.
    pub fn after(mut self, deps: &[JobId]) -> Self {
        self.deps.extend_from_slice(deps);
        self
    }
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("id", &self.id)
            .field("deps", &self.deps)
            .field("cached", &self.cache_key.is_some())
            .finish()
    }
}

/// An append-only DAG of jobs.
#[derive(Debug, Default)]
pub struct JobGraph {
    jobs: Vec<Job>,
}

impl JobGraph {
    /// An empty graph.
    pub fn new() -> Self {
        JobGraph::default()
    }

    /// Inserts a job, returning its [`JobId`].
    ///
    /// # Panics
    ///
    /// Panics if a dependency refers to a job not yet inserted —
    /// forward edges are the one way to build a cycle here, so they
    /// are rejected at insertion.
    pub fn push(&mut self, job: Job) -> JobId {
        let id = self.jobs.len();
        for &d in &job.deps {
            assert!(
                d < id,
                "job '{}' depends on not-yet-inserted job #{d}",
                job.id
            );
        }
        self.jobs.push(job);
        id
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The jobs, in insertion order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }
}

/// One failed attempt that preceded a job's final outcome — the
/// per-attempt history the retry layer records.
#[derive(Debug, Clone, PartialEq)]
pub struct Attempt {
    /// Why the attempt did not complete (panic message or timeout).
    pub error: String,
    /// The backoff slept after this attempt before the next one.
    pub backoff: Duration,
}

/// What happened to one job.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Completed; `cached` tells whether the value came from the
    /// result cache (or resume journal) instead of being computed.
    Done {
        value: Value,
        duration: Duration,
        cached: bool,
        /// Failed attempts that preceded this success (empty when the
        /// first attempt succeeded).
        retries: Vec<Attempt>,
    },
    /// Every attempt panicked; the final payload's message.
    Failed {
        error: String,
        retries: Vec<Attempt>,
    },
    /// Every attempt exceeded the configured wall-clock budget and was
    /// abandoned.
    TimedOut {
        limit: Duration,
        retries: Vec<Attempt>,
    },
    /// A dependency did not complete, so the job never ran.
    Skipped { failed_dep: String },
    /// The sweep was interrupted (SIGINT) before the job started.
    Cancelled,
}

impl Outcome {
    /// The produced value, if the job completed.
    pub fn value(&self) -> Option<&Value> {
        match self {
            Outcome::Done { value, .. } => Some(value),
            _ => None,
        }
    }

    /// Whether the job completed.
    pub fn is_done(&self) -> bool {
        matches!(self, Outcome::Done { .. })
    }

    /// Whether the value was served from cache.
    pub fn is_cached(&self) -> bool {
        matches!(self, Outcome::Done { cached: true, .. })
    }

    /// The failed attempts that preceded this outcome.
    pub fn retries(&self) -> &[Attempt] {
        match self {
            Outcome::Done { retries, .. }
            | Outcome::Failed { retries, .. }
            | Outcome::TimedOut { retries, .. } => retries,
            Outcome::Skipped { .. } | Outcome::Cancelled => &[],
        }
    }

    /// Whether the job completed only after at least one retry.
    pub fn was_retried(&self) -> bool {
        self.is_done() && !self.retries().is_empty()
    }

    /// One-word status label for progress lines and summaries.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Done { cached: true, .. } => "cached",
            Outcome::Done { cached: false, .. } => "done",
            Outcome::Failed { .. } => "FAILED",
            Outcome::TimedOut { .. } => "TIMED-OUT",
            Outcome::Skipped { .. } => "skipped",
            Outcome::Cancelled => "cancelled",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_assigns_sequential_ids() {
        let mut g = JobGraph::new();
        let a = g.push(Job::new("a", || Value::Null));
        let b = g.push(Job::new("b", || Value::Null).after(&[a]));
        assert_eq!((a, b), (0, 1));
        assert_eq!(g.len(), 2);
        assert_eq!(g.jobs()[1].deps, vec![0]);
    }

    #[test]
    #[should_panic(expected = "not-yet-inserted")]
    fn forward_dependency_is_rejected() {
        let mut g = JobGraph::new();
        g.push(Job::new("a", || Value::Null).after(&[3]));
    }

    #[test]
    fn outcome_accessors() {
        let done = Outcome::Done {
            value: Value::U64(1),
            duration: Duration::from_millis(5),
            cached: false,
            retries: Vec::new(),
        };
        assert!(done.is_done() && !done.is_cached() && !done.was_retried());
        assert_eq!(done.value(), Some(&Value::U64(1)));
        assert_eq!(done.label(), "done");
        let failed = Outcome::Failed {
            error: "boom".into(),
            retries: Vec::new(),
        };
        assert!(failed.value().is_none());
        assert_eq!(failed.label(), "FAILED");
        assert_eq!(Outcome::Cancelled.label(), "cancelled");
    }

    #[test]
    fn retried_then_ok_is_visible_in_history() {
        let out = Outcome::Done {
            value: Value::U64(2),
            duration: Duration::from_millis(1),
            cached: false,
            retries: vec![Attempt {
                error: "transient".into(),
                backoff: Duration::from_millis(10),
            }],
        };
        assert!(out.was_retried());
        assert_eq!(out.retries().len(), 1);
        assert_eq!(out.retries()[0].error, "transient");
    }
}

//! Shared command-line surface for the experiment binaries:
//! `--jobs N`, `--sim-threads N`, `--no-cache`, `--no-trace-cache`,
//! `--no-graph-artifacts`, `--filter <substr>`, `--timeout-secs N`,
//! `--retries N`, `--resume`, `--strict-resume`, `--trace <path>`.

use std::path::PathBuf;
use std::time::Duration;

use crate::executor::default_jobs;

/// Parsed harness flags plus whatever positional arguments remain.
#[derive(Debug, Clone)]
pub struct CliArgs {
    /// Worker threads (defaults to available cores).
    pub jobs: usize,
    /// Per-cell simulator timing-lane threads (the GPU engine's
    /// `SimThreads` knob). Defaults to the `SCU_SIM_THREADS`
    /// environment variable, else 1. Results are byte-identical at
    /// any value; only wall-clock changes.
    pub sim_threads: usize,
    /// Disable the on-disk result cache.
    pub no_cache: bool,
    /// Disable the functional-trace cache (recorded per-warp GPU
    /// traces keyed by semantic key). Results are byte-identical with
    /// it on or off; only the functional phase's wall-clock changes.
    /// Independent of `--no-cache`: an uncached run recomputes every
    /// result but may still replay recorded traces — pass both flags
    /// for a fully cold simulation.
    pub no_trace_cache: bool,
    /// Disable the graph artifact store (mmap'd build-once CSR files).
    /// Graphs are then regenerated in memory per process, exactly as
    /// before the store existed; results are byte-identical either
    /// way, only graph build wall-clock changes.
    pub no_graph_artifacts: bool,
    /// Only run cells whose id contains this substring.
    pub filter: Option<String>,
    /// Per-cell wall-clock budget.
    pub timeout: Option<Duration>,
    /// Retries for failed or timed-out cells (sweep binaries default
    /// to 2 so one flaky cell does not cost a rerun).
    pub retries: u32,
    /// Resume from the journal of an interrupted sweep instead of
    /// starting fresh.
    pub resume: bool,
    /// Fail (non-zero exit) when a resumed cell re-runs and its
    /// timeline digest disagrees with the journaled one, instead of
    /// only warning. Lets CI treat model/config divergence as an error.
    pub strict_resume: bool,
    /// Write a chrome://tracing JSON file of the run's event timeline
    /// here (binaries that simulate fresh cells honour it; cached
    /// cells have no event stream to export).
    pub trace: Option<PathBuf>,
    /// Positional arguments, in order, with harness flags removed.
    pub rest: Vec<String>,
}

impl Default for CliArgs {
    fn default() -> Self {
        CliArgs {
            jobs: default_jobs(),
            sim_threads: default_sim_threads(),
            no_cache: false,
            no_trace_cache: false,
            no_graph_artifacts: false,
            filter: None,
            timeout: None,
            retries: 2,
            resume: false,
            strict_resume: false,
            trace: None,
            rest: Vec::new(),
        }
    }
}

/// Default for `--sim-threads`: the `SCU_SIM_THREADS` environment
/// variable when set to a positive integer, else 1.
///
/// This mirrors `scu_gpu::SimThreads`'s own env fallback (duplicated
/// rather than calling `SimThreads::get`, which would freeze the
/// process-global knob before the flag is applied); the binaries then
/// call `SimThreads::set` with the parsed value, making the flag the
/// single source of truth for the process.
pub fn default_sim_threads() -> usize {
    std::env::var("SCU_SIM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// The usage block describing the shared flags, for `--help` output.
pub const USAGE: &str = "harness options:\n  \
    --jobs N          worker threads (default: available cores)\n  \
    --sim-threads N   per-cell GPU-engine timing lanes (default: $SCU_SIM_THREADS or 1;\n                    \
    results are byte-identical at any value)\n  \
    --no-cache        recompute every cell, ignore cached results\n  \
    --no-trace-cache  re-record functional GPU traces instead of replaying cached\n                    \
ones (results are byte-identical either way; combine with\n                    \
--no-cache for a fully cold simulation)\n  \
    --no-graph-artifacts  rebuild graphs in memory instead of serving mmap'd\n                    \
artifacts (results are byte-identical either way)\n  \
    --filter SUBSTR   only run cells whose id contains SUBSTR\n  \
    --timeout-secs N  mark cells running longer than N seconds as timed out\n  \
    --retries N       retry failed/timed-out cells up to N times (default: 2)\n  \
    --resume          resume an interrupted sweep from its journal (the result\n                    \
store's write-ahead log, or results/manifest.json when\n                    \
running uncached)\n  \
    --strict-resume   fail (exit 1) if a resumed cell's timeline digest diverges\n                    \
    from the journaled one, instead of warning\n  \
    --trace PATH      write a chrome://tracing (Perfetto) JSON trace to PATH";

impl CliArgs {
    /// Parses `std::env::args().skip(1)`-style arguments. Unknown
    /// flags and positionals are collected into [`CliArgs::rest`] for
    /// the binary to interpret; malformed values for known flags are
    /// errors.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<CliArgs, String> {
        let mut out = CliArgs::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let (flag, inline) = match arg.split_once('=') {
                Some((f, v)) => (f.to_string(), Some(v.to_string())),
                None => (arg.clone(), None),
            };
            let mut value = |what: &str| -> Result<String, String> {
                inline
                    .clone()
                    .or_else(|| args.next())
                    .ok_or_else(|| format!("{flag} expects {what}"))
            };
            match flag.as_str() {
                "--jobs" | "-j" => {
                    let v = value("a thread count")?;
                    out.jobs =
                        v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                            format!("--jobs expects a positive integer, got '{v}'")
                        })?;
                }
                "--sim-threads" => {
                    let v = value("a thread count")?;
                    out.sim_threads =
                        v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                            format!("--sim-threads expects a positive integer, got '{v}'")
                        })?;
                }
                "--no-cache" => out.no_cache = true,
                "--no-trace-cache" => out.no_trace_cache = true,
                "--no-graph-artifacts" => out.no_graph_artifacts = true,
                "--filter" => out.filter = Some(value("a substring")?),
                "--timeout-secs" => {
                    let v = value("a duration in seconds")?;
                    let secs = v.parse::<f64>().ok().filter(|s| *s > 0.0).ok_or_else(|| {
                        format!("--timeout-secs expects a positive number, got '{v}'")
                    })?;
                    out.timeout = Some(Duration::from_secs_f64(secs));
                }
                "--retries" => {
                    let v = value("a retry count")?;
                    out.retries = v.parse::<u32>().map_err(|_| {
                        format!("--retries expects a non-negative integer, got '{v}'")
                    })?;
                }
                "--resume" => out.resume = true,
                "--strict-resume" => out.strict_resume = true,
                "--trace" => out.trace = Some(PathBuf::from(value("a file path")?)),
                _ => out.rest.push(arg),
            }
        }
        Ok(out)
    }

    /// Parses the process's own arguments, exiting with usage on error.
    pub fn from_env() -> CliArgs {
        match CliArgs::parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(e) => {
                eprintln!("{e}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> CliArgs {
        CliArgs::parse(args.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn defaults_use_all_cores_and_cache() {
        let a = parse(&[]);
        assert!(a.jobs >= 1);
        assert!(!a.no_cache);
        assert!(a.filter.is_none() && a.timeout.is_none());
        assert_eq!(a.retries, 2);
        assert!(!a.resume);
    }

    #[test]
    fn retries_and_resume_parse() {
        let a = parse(&["--retries", "0", "--resume"]);
        assert_eq!(a.retries, 0);
        assert!(a.resume);
        assert!(!a.strict_resume);
        let s = parse(&["--resume", "--strict-resume"]);
        assert!(s.resume && s.strict_resume);
        let b = parse(&["--retries=5"]);
        assert_eq!(b.retries, 5);
        assert!(CliArgs::parse(["--retries".to_string(), "-1".to_string()]).is_err());
    }

    #[test]
    fn no_trace_cache_parses_and_defaults_off() {
        assert!(!parse(&[]).no_trace_cache);
        let a = parse(&["--no-trace-cache"]);
        assert!(a.no_trace_cache && !a.no_cache, "independent of --no-cache");
        let b = parse(&["--no-cache", "--no-trace-cache"]);
        assert!(b.no_cache && b.no_trace_cache);
    }

    #[test]
    fn no_graph_artifacts_parses_and_defaults_off() {
        assert!(!parse(&[]).no_graph_artifacts);
        let a = parse(&["--no-graph-artifacts"]);
        assert!(a.no_graph_artifacts);
        assert!(!a.no_cache && !a.no_trace_cache, "independent toggles");
    }

    #[test]
    fn trace_parses_in_both_spellings() {
        let a = parse(&["--trace", "out.json"]);
        assert_eq!(a.trace.as_deref(), Some(std::path::Path::new("out.json")));
        let b = parse(&["--trace=results/trace.json"]);
        assert_eq!(
            b.trace.as_deref(),
            Some(std::path::Path::new("results/trace.json"))
        );
        assert!(parse(&[]).trace.is_none());
        assert!(CliArgs::parse(["--trace".to_string()]).is_err());
    }

    #[test]
    fn flags_parse_in_both_spellings() {
        let a = parse(&[
            "--jobs",
            "3",
            "--filter=BFS",
            "--no-cache",
            "--timeout-secs",
            "2.5",
        ]);
        assert_eq!(a.jobs, 3);
        assert_eq!(a.filter.as_deref(), Some("BFS"));
        assert!(a.no_cache);
        assert_eq!(a.timeout, Some(Duration::from_secs_f64(2.5)));
        let b = parse(&["-j", "7"]);
        assert_eq!(b.jobs, 7);
    }

    #[test]
    fn positionals_pass_through_in_order() {
        let a = parse(&["BFS", "--jobs=2", "kron", "TX1"]);
        assert_eq!(a.rest, vec!["BFS", "kron", "TX1"]);
        assert_eq!(a.jobs, 2);
    }

    #[test]
    fn bad_values_error() {
        assert!(CliArgs::parse(["--jobs".to_string(), "zero".to_string()]).is_err());
        assert!(CliArgs::parse(["--jobs".to_string(), "0".to_string()]).is_err());
        assert!(CliArgs::parse(["--timeout-secs".to_string(), "-1".to_string()]).is_err());
        assert!(CliArgs::parse(["--filter".to_string()]).is_err());
    }

    #[test]
    fn sim_threads_parses_in_both_spellings() {
        let a = parse(&["--sim-threads", "4"]);
        assert_eq!(a.sim_threads, 4);
        let b = parse(&["--sim-threads=2"]);
        assert_eq!(b.sim_threads, 2);
        assert!(CliArgs::parse(["--sim-threads".to_string(), "0".to_string()]).is_err());
        assert!(CliArgs::parse(["--sim-threads".to_string()]).is_err());
    }

    #[test]
    fn sim_threads_defaults_to_at_least_one() {
        // The default comes from SCU_SIM_THREADS or 1; either way it
        // must be positive (tests must not mutate process env — other
        // tests run concurrently in this binary).
        assert!(parse(&[]).sim_threads >= 1);
    }
}

//! Cooperative cancellation for interrupted sweeps.
//!
//! A single process-wide [`AtomicBool`] rises when SIGINT (Ctrl-C)
//! arrives; the executor's workers poll it, finish their in-flight
//! cells — completions still reach the journal — and stop drawing new
//! ones. Remaining cells report [`crate::Outcome::Cancelled`] and the
//! sweep ends with a summary plus a written manifest, so `--resume`
//! picks up exactly where the interrupt landed.
//!
//! The handler is installed with the raw C `signal(2)` API (the `libc`
//! crate is unavailable offline); the handler body only stores into an
//! atomic, which is async-signal-safe. A second SIGINT while draining
//! restores the default disposition so an impatient operator's next
//! Ctrl-C kills the process immediately.

use std::sync::atomic::{AtomicBool, Ordering};

/// The process-wide cancellation flag SIGINT raises.
static CANCELLED: AtomicBool = AtomicBool::new(false);

/// Whether a cancellation has been requested.
pub fn cancelled() -> bool {
    CANCELLED.load(Ordering::SeqCst)
}

/// Raises the cancellation flag (also what the SIGINT handler does).
pub fn cancel() {
    CANCELLED.store(true, Ordering::SeqCst);
}

/// Lowers the flag — tests only; real sweeps exit after cancelling.
#[doc(hidden)]
pub fn reset() {
    CANCELLED.store(false, Ordering::SeqCst);
}

/// The flag itself, for wiring into
/// [`crate::executor::ExecContext::cancel`].
pub fn flag() -> &'static AtomicBool {
    &CANCELLED
}

#[cfg(unix)]
mod imp {
    use super::CANCELLED;
    use std::sync::atomic::Ordering;

    // Raw prototypes for signal(2) — the libc crate is not available
    // in this offline build. `sighandler_t` is a plain function
    // pointer on every platform we target (x86-64/aarch64 Linux, mac).
    const SIGINT: i32 = 2;
    const SIG_DFL: usize = 0;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(_signum: i32) {
        // Only async-signal-safe operations here: one atomic store,
        // then re-arm to the default disposition so the *next* Ctrl-C
        // kills the process instead of being swallowed mid-drain.
        CANCELLED.store(true, Ordering::SeqCst);
        unsafe {
            signal(SIGINT, SIG_DFL);
        }
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_sigint as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGINT handler. Safe to call more than once; a no-op
/// on non-unix targets.
pub fn install_sigint_handler() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trip() {
        reset();
        assert!(!cancelled());
        cancel();
        assert!(cancelled());
        assert!(flag().load(std::sync::atomic::Ordering::SeqCst));
        reset();
        assert!(!cancelled());
    }

    #[test]
    fn handler_installs_without_crashing() {
        install_sigint_handler();
        install_sigint_handler();
    }
}

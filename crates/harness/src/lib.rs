//! # scu-harness — parallel experiment orchestration
//!
//! The reproduction matrix (algorithm × dataset × platform × machine
//! mode) is 150+ independent, deterministic simulator cells. This
//! crate runs them concurrently while keeping the sequential path's
//! guarantees:
//!
//! - **Determinism** — each cell is a pure closure owning its
//!   configuration; outcomes are returned in submission order, so a
//!   run with `--jobs 16` is byte-identical to `--jobs 1`.
//! - **Content-addressed caching** — results are JSON blobs keyed by
//!   a stable hash of the cell configuration plus a model-version
//!   string; after a code tweak that bumps the version, only
//!   invalidated cells recompute ([`cache::ResultCache`]).
//! - **Fault isolation** — a panicking cell is caught and reported
//!   `FAILED`, a cell over its wall-clock budget `TIMED-OUT`, and
//!   dependents of either are `skipped`; the sweep always completes
//!   and ends with a summary ([`progress::SweepSummary`]).
//!
//! The executor is a fixed worker pool over a single
//! `Mutex`+`Condvar`-protected ready queue (`crossbeam` and
//! `parking_lot` cannot be resolved in this offline environment, and
//! at ~150 cells of milliseconds-to-seconds each, queue contention is
//! noise — the work units dwarf the locking).
//!
//! ```
//! use scu_harness::{Harness, Job, JobGraph};
//! use serde_json::Value;
//!
//! let mut graph = JobGraph::new();
//! for i in 0..4u64 {
//!     graph.push(Job::new(format!("cell-{i}"), move || Value::U64(i * i)));
//! }
//! let sweep = Harness::new().jobs(2).run(&graph);
//! assert!(sweep.summary.all_done());
//! assert_eq!(sweep.outcomes[3].value(), Some(&Value::U64(9)));
//! ```

pub mod cache;
pub mod cancel;
pub mod cli;
pub mod error;
pub mod executor;
pub mod failpoint;
pub mod hash;
pub mod job;
pub mod journal;
pub mod progress;
pub mod session;
pub mod trace_bridge;

pub use cache::{GetResult, ResultCache, ResultCacheStats, ResultStore, StoreStats};
pub use cli::CliArgs;
pub use error::HarnessError;
pub use executor::{
    capped_backoff, default_jobs, effective_workers, ExecContext, ExecOptions, ExecResult,
};
pub use job::{Attempt, Job, JobGraph, JobId, Outcome};
pub use journal::{Journal, JournalEntry};
pub use progress::{Progress, ProgressEvent, ProgressObserver, SweepSummary};

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything a finished sweep produced.
#[derive(Debug)]
pub struct Sweep {
    /// Per-job outcomes, in [`JobGraph`] insertion order.
    pub outcomes: Vec<Outcome>,
    /// Aggregate counts, failures and timings.
    pub summary: SweepSummary,
    /// Cache activity during the sweep (zeroes when caching is off).
    pub cache_stats: ResultCacheStats,
}

/// Builder-style front door: configure once, run a [`JobGraph`].
#[derive(Clone)]
pub struct Harness {
    jobs: usize,
    threads_per_job: usize,
    cache_dir: Option<PathBuf>,
    store_backend: Option<Arc<dyn ResultStore>>,
    timeout: Option<Duration>,
    narrate: bool,
    progress_file: Option<PathBuf>,
    observer: Option<progress::ProgressObserver>,
    retries: u32,
    backoff: Duration,
    backoff_cap: Duration,
    manifest: Option<PathBuf>,
    resume: bool,
    strict_resume: bool,
    handle_sigint: bool,
    cancel_flag: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    trace_cache: bool,
    /// Store directory to mount the functional-trace cache from when
    /// the *result* cache is off (`--no-cache` without
    /// `--no-trace-cache`): results recompute, recorded traces still
    /// replay — byte-identical either way.
    trace_dir: Option<PathBuf>,
}

impl std::fmt::Debug for Harness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Harness")
            .field("jobs", &self.jobs)
            .field("threads_per_job", &self.threads_per_job)
            .field("cache_dir", &self.cache_dir)
            .field("store_backend", &self.store_backend.is_some())
            .field("timeout", &self.timeout)
            .field("narrate", &self.narrate)
            .field("progress_file", &self.progress_file)
            .field("observer", &self.observer.is_some())
            .field("retries", &self.retries)
            .field("manifest", &self.manifest)
            .field("resume", &self.resume)
            .field("strict_resume", &self.strict_resume)
            .field("handle_sigint", &self.handle_sigint)
            .field("cancel_flag", &self.cancel_flag.is_some())
            .finish()
    }
}

impl Default for Harness {
    fn default() -> Self {
        Harness {
            jobs: default_jobs(),
            threads_per_job: 1,
            cache_dir: None,
            store_backend: None,
            timeout: None,
            narrate: false,
            progress_file: None,
            observer: None,
            retries: 0,
            backoff: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(2),
            manifest: None,
            resume: false,
            strict_resume: false,
            handle_sigint: false,
            cancel_flag: None,
            trace_cache: true,
            trace_dir: None,
        }
    }
}

impl Harness {
    /// A harness with default options: all cores, no cache, no
    /// timeout, silent.
    pub fn new() -> Self {
        Harness::default()
    }

    /// Sets the worker-thread count (clamped to at least 1).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Declares how many simulator threads each job spawns internally
    /// (the GPU engine's `SimThreads` knob), so the executor can keep
    /// `jobs × threads_per_job` within the machine's parallelism. The
    /// harness itself never sets that knob — the binary does.
    pub fn threads_per_job(mut self, threads: usize) -> Self {
        self.threads_per_job = threads.max(1);
        self
    }

    /// Enables the on-disk result cache rooted at `dir`.
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Uses an already-open store as the result cache instead of
    /// opening [`Harness::cache_dir`]. This is how the sweep server
    /// shares one store between its scheduler and every batch harness
    /// — the LSM layout is single-writer per directory, so two
    /// independent opens of the same directory must not happen.
    /// Takes precedence over `cache_dir`.
    pub fn store_backend(mut self, backend: Arc<dyn ResultStore>) -> Self {
        self.store_backend = Some(backend);
        self
    }

    /// Sets the per-cell wall-clock budget.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Narrates per-cell completions on stderr.
    pub fn narrate(mut self, narrate: bool) -> Self {
        self.narrate = narrate;
        self
    }

    /// Mirrors progress lines into a file (e.g.
    /// `results/reproduce_progress.txt`).
    pub fn progress_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.progress_file = Some(path.into());
        self
    }

    /// Delivers every per-job completion to `observer` as a structured
    /// [`ProgressEvent`], from worker threads — the hook the sweep
    /// server streams to its clients.
    pub fn observer(mut self, observer: progress::ProgressObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Drains the sweep when `flag` rises, exactly like SIGINT does —
    /// in-flight cells finish and reach the journal, unstarted cells
    /// report [`Outcome::Cancelled`] — but scoped to this harness
    /// instead of the process-global signal flag. Takes precedence
    /// over [`Harness::handle_sigint`]'s flag when both are set.
    pub fn cancel_flag(mut self, flag: std::sync::Arc<std::sync::atomic::AtomicBool>) -> Self {
        self.cancel_flag = Some(flag);
        self
    }

    /// Retries failed or timed-out cells up to `retries` times with
    /// capped exponential backoff (library default: 0, single shot).
    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Sets the base backoff (doubles per attempt) and its cap.
    pub fn backoff(mut self, base: Duration, cap: Duration) -> Self {
        self.backoff = base;
        self.backoff_cap = cap;
        self
    }

    /// Journals each completion to `path` (e.g.
    /// `results/manifest.json`) so an interrupted sweep can resume.
    pub fn manifest(mut self, path: impl Into<PathBuf>) -> Self {
        self.manifest = Some(path.into());
        self
    }

    /// Pre-resolves jobs already journaled by an interrupted sweep
    /// instead of truncating the manifest. Needs [`Harness::manifest`].
    pub fn resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Fails (rather than warns) a resumed cell whose re-run timeline
    /// digest disagrees with the journaled one — divergence becomes a
    /// failed cell and a non-zero sweep exit.
    pub fn strict_resume(mut self, strict: bool) -> Self {
        self.strict_resume = strict;
        self
    }

    /// Installs a SIGINT handler for the run: the first Ctrl-C drains
    /// in-flight cells and writes the manifest, the second kills.
    pub fn handle_sigint(mut self, handle: bool) -> Self {
        self.handle_sigint = handle;
        self
    }

    /// Enables or disables the functional-trace cache (`--no-trace-cache`;
    /// default on). With a result cache open, recorded per-warp GPU
    /// traces are persisted through the same store and replayed on
    /// warm runs — byte-identical results, the functional phase's
    /// wall-clock gone. Without a store to mount (no cache and no
    /// `trace_dir`) this is inert.
    pub fn trace_cache(mut self, on: bool) -> Self {
        self.trace_cache = on;
        self
    }

    /// Applies the shared CLI flags (`--jobs`, `--sim-threads`,
    /// `--no-cache`, `--no-trace-cache`, `--timeout-secs`,
    /// `--retries`, `--resume`) on top of the current configuration.
    /// `default_cache_dir` is used unless `--no-cache` was given.
    pub fn apply_cli(mut self, args: &CliArgs, default_cache_dir: impl Into<PathBuf>) -> Self {
        self.jobs = args.jobs.max(1);
        self.threads_per_job = args.sim_threads.max(1);
        self.timeout = args.timeout;
        self.retries = args.retries;
        self.resume = args.resume;
        self.strict_resume = args.strict_resume;
        let default_cache_dir = default_cache_dir.into();
        (self.cache_dir, self.trace_dir) = if args.no_cache {
            // Results recompute, but recorded functional traces still
            // replay from the store (they cannot change result bytes);
            // --no-trace-cache on top makes the run fully cold.
            (None, (!args.no_trace_cache).then_some(default_cache_dir))
        } else {
            (Some(default_cache_dir), None)
        };
        self.trace_cache = !args.no_trace_cache;
        self
    }

    /// Runs the graph to completion (or to a drained cancellation).
    ///
    /// Every harness-side failure degrades rather than kills the
    /// sweep: an unusable cache runs uncached, an unusable manifest
    /// runs unjournaled, an unreadable resume journal resumes nothing.
    pub fn run(&self, graph: &JobGraph) -> Sweep {
        if self.handle_sigint {
            cancel::install_sigint_handler();
        }
        let cache = match &self.store_backend {
            Some(backend) => Some(ResultCache::from_backend(Arc::clone(backend))),
            None => self
                .cache_dir
                .as_ref()
                .and_then(|dir| match ResultCache::open(dir) {
                    Ok(c) => Some(c),
                    Err(e) => {
                        eprintln!(
                            "[scu-harness] cannot open cache at {}: {e}; running uncached",
                            dir.display()
                        );
                        None
                    }
                }),
        };
        // Mount the functional-trace cache on the same store: warm
        // cells replay recorded per-warp traces instead of re-recording
        // them. An uncached run still mounts the store for traces alone
        // (via `trace_dir`) — replay cannot change result bytes, so
        // `--no-cache` keeps its recompute guarantee; only
        // `--no-trace-cache` leaves the engine recording cold.
        let trace_backend = match (&cache, &self.trace_dir) {
            (Some(c), _) => Some(c.backend()),
            (None, Some(dir)) if self.trace_cache => match ResultCache::open(dir) {
                Ok(c) => Some(c.backend()),
                Err(e) => {
                    eprintln!(
                        "[scu-harness] cannot open trace store at {}: {e}; recording cold",
                        dir.display()
                    );
                    None
                }
            },
            _ => None,
        };
        trace_bridge::install(trace_backend, self.trace_cache);
        // With an LSM-backed cache the store's write-ahead log *is* the
        // journal: each finished cell is one CRC-framed append, and
        // resume state is replayed from the same bytes as the cache.
        // The line-JSON manifest file remains the journal for legacy
        // and uncached runs, byte-for-byte as before.
        let unified = self.manifest.is_some()
            && cache
                .as_ref()
                .is_some_and(|c| c.backend().unified_journal());
        let mut resume_digests = None;
        let resume_map = if !self.resume {
            None
        } else if unified {
            let backend = cache.as_ref().expect("unified implies a cache").backend();
            match backend.resume_state() {
                Ok(state) => {
                    // A leftover line-JSON manifest (sweeps from before
                    // the store migration) still feeds resume; the
                    // store wins where both journaled a cell.
                    let (mut map, mut digests) = match self.manifest.as_deref() {
                        Some(path) if path.exists() => (
                            Journal::load_resume_map(path).unwrap_or_default(),
                            Journal::load_digest_map(path).unwrap_or_default(),
                        ),
                        _ => (HashMap::new(), HashMap::new()),
                    };
                    map.extend(state.values);
                    digests.extend(state.digests);
                    if !map.is_empty() {
                        eprintln!(
                            "[scu-harness] resuming: {} cell(s) already journaled in {}",
                            map.len(),
                            backend.dir().display()
                        );
                    }
                    resume_digests = Some(digests);
                    Some(map)
                }
                Err(e) => {
                    eprintln!("[scu-harness] cannot resume: {e}; starting fresh");
                    None
                }
            }
        } else {
            match self.manifest.as_ref() {
                Some(path) => match Journal::load_resume_map(path) {
                    Ok(map) => {
                        if !map.is_empty() {
                            eprintln!(
                                "[scu-harness] resuming: {} cell(s) already journaled in {}",
                                map.len(),
                                path.display()
                            );
                        }
                        // Digests cross-check re-run cells against what
                        // the interrupted sweep observed (warn, or fail
                        // under strict_resume).
                        resume_digests = Journal::load_digest_map(path).ok();
                        Some(map)
                    }
                    Err(e) => {
                        eprintln!("[scu-harness] cannot resume: {e}; starting fresh");
                        None
                    }
                },
                None => None,
            }
        };
        // A fresh (non-resumed) sweep truncates any stale journal so
        // it only ever describes this sweep's completions: the store
        // does this logically (a new epoch), the file journal
        // physically.
        let journal = if unified {
            let backend = cache.as_ref().expect("unified implies a cache").backend();
            match backend.begin_sweep(self.resume) {
                Ok(()) => {
                    if !self.resume {
                        if let Some(path) = self.manifest.as_deref().filter(|p| p.exists()) {
                            // Also empty any leftover pre-migration
                            // manifest so its stale entries cannot feed
                            // a later resume.
                            let _ = Journal::open(path, true);
                        }
                    }
                    Some(Journal::from_store(backend))
                }
                Err(e) => {
                    eprintln!("[scu-harness] cannot open manifest: {e}; running unjournaled");
                    None
                }
            }
        } else {
            self.manifest
                .as_ref()
                .and_then(|path| match Journal::open(path, !self.resume) {
                    Ok(j) => Some(j),
                    Err(e) => {
                        eprintln!("[scu-harness] cannot open manifest: {e}; running unjournaled");
                        None
                    }
                })
        };
        let mut progress = if self.narrate {
            Progress::stderr(graph.len())
        } else {
            Progress::silent(graph.len())
        };
        if let Some(path) = &self.progress_file {
            match progress.with_file(path) {
                Ok(p) => progress = p,
                Err(e) => {
                    eprintln!(
                        "[scu-harness] cannot write progress to {}: {e}",
                        path.display()
                    );
                    progress = if self.narrate {
                        Progress::stderr(graph.len())
                    } else {
                        Progress::silent(graph.len())
                    };
                }
            }
        }
        if let Some(observer) = &self.observer {
            progress = progress.with_observer(std::sync::Arc::clone(observer));
        }
        let opts = ExecOptions {
            jobs: self.jobs,
            timeout: self.timeout,
            retries: self.retries,
            backoff: self.backoff,
            backoff_cap: self.backoff_cap,
            threads_per_job: self.threads_per_job,
            strict_resume: self.strict_resume,
        };
        let ctx = ExecContext {
            cache: cache.as_ref(),
            journal: journal.as_ref(),
            resume: resume_map.as_ref(),
            resume_digests: resume_digests.as_ref(),
            cancel: match (&self.cancel_flag, self.handle_sigint) {
                (Some(flag), _) => Some(flag.as_ref()),
                (None, true) => Some(cancel::flag()),
                (None, false) => None,
            },
        };
        let start = Instant::now();
        let result = executor::execute(graph, &ctx, &opts, &progress);
        let summary = SweepSummary::new(
            graph,
            &result.outcomes,
            start.elapsed(),
            result.leaked_threads,
        );
        let cache_stats = cache.map(|c| c.stats()).unwrap_or_default();
        Sweep {
            outcomes: result.outcomes,
            summary,
            cache_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::Value;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("scu-harness-lib-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cell_graph() -> JobGraph {
        let mut g = JobGraph::new();
        for i in 0..6u64 {
            let key = Value::Object(vec![
                ("cell".to_string(), Value::U64(i)),
                ("model".to_string(), Value::Str("v1".into())),
            ]);
            g.push(Job::new(format!("cell-{i}"), move || Value::U64(i + 100)).with_cache_key(key));
        }
        g
    }

    #[test]
    fn warm_cache_serves_every_cell() {
        let dir = scratch("warm");
        let harness = Harness::new().jobs(4).cache_dir(&dir);
        let cold = harness.run(&cell_graph());
        assert!(cold.summary.all_done());
        assert_eq!(cold.summary.cached, 0);
        assert_eq!(cold.cache_stats.stores, 6);
        let warm = harness.run(&cell_graph());
        assert!(warm.summary.fully_cached());
        assert_eq!(warm.cache_stats.hits, 6);
        let values = |s: &Sweep| -> Vec<Value> {
            s.outcomes
                .iter()
                .map(|o| o.value().unwrap().clone())
                .collect()
        };
        assert_eq!(values(&cold), values(&warm));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let seq = Harness::new().jobs(1).run(&cell_graph());
        let par = Harness::new().jobs(6).run(&cell_graph());
        assert_eq!(seq.outcomes.len(), par.outcomes.len());
        for (a, b) in seq.outcomes.iter().zip(&par.outcomes) {
            assert_eq!(a.value(), b.value());
        }
    }

    #[test]
    fn apply_cli_respects_no_cache() {
        let args = CliArgs::parse([
            "--no-cache".to_string(),
            "--jobs".to_string(),
            "2".to_string(),
        ])
        .unwrap();
        let h = Harness::new().apply_cli(&args, "unused-cache-dir");
        assert_eq!(h.jobs, 2);
        assert!(h.cache_dir.is_none());
        assert_eq!(
            h.trace_dir.as_deref(),
            Some(std::path::Path::new("unused-cache-dir")),
            "--no-cache alone keeps the trace store mounted"
        );
        let with_cache =
            Harness::new().apply_cli(&CliArgs::parse(Vec::<String>::new()).unwrap(), "some-dir");
        assert_eq!(
            with_cache.cache_dir.as_deref(),
            Some(std::path::Path::new("some-dir"))
        );
        assert!(with_cache.trace_dir.is_none(), "traces ride the cache");
        let cold = Harness::new().apply_cli(
            &CliArgs::parse(["--no-cache".to_string(), "--no-trace-cache".to_string()]).unwrap(),
            "some-dir",
        );
        assert!(cold.cache_dir.is_none() && cold.trace_dir.is_none() && !cold.trace_cache);
    }

    #[test]
    fn manifest_then_resume_serves_journaled_cells() {
        let dir = scratch("resume");
        let manifest = dir.join("manifest.json");
        let first = Harness::new()
            .jobs(2)
            .manifest(&manifest)
            .run(&cell_graph());
        assert!(first.summary.all_done());
        assert_eq!(journal::Journal::load(&manifest).unwrap().len(), 6);
        let resumed = Harness::new()
            .jobs(2)
            .manifest(&manifest)
            .resume(true)
            .run(&cell_graph());
        assert!(resumed.summary.fully_cached(), "all cells pre-resolved");
        let values = |s: &Sweep| -> Vec<Value> {
            s.outcomes
                .iter()
                .map(|o| o.value().unwrap().clone())
                .collect()
        };
        assert_eq!(values(&first), values(&resumed));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_sweep_truncates_stale_manifest() {
        let dir = scratch("truncate");
        let manifest = dir.join("manifest.json");
        Harness::new().manifest(&manifest).run(&cell_graph());
        let mut g = JobGraph::new();
        g.push(Job::new("only", || Value::U64(1)));
        Harness::new().manifest(&manifest).run(&g);
        assert_eq!(journal::Journal::load(&manifest).unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lsm_cache_unifies_the_journal_and_resumes_without_recompute() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        let dir = scratch("unified");
        let cache_dir = dir.join("cache");
        let manifest = dir.join("manifest.json");
        let runs = Arc::new(AtomicU32::new(0));
        let counted_graph = |runs: &Arc<AtomicU32>| -> JobGraph {
            let mut g = JobGraph::new();
            for i in 0..6u64 {
                let key = Value::Object(vec![
                    ("cell".to_string(), Value::U64(i)),
                    ("model".to_string(), Value::Str("v1".into())),
                ]);
                let r = Arc::clone(runs);
                g.push(
                    Job::new(format!("cell-{i}"), move || {
                        r.fetch_add(1, Ordering::SeqCst);
                        Value::U64(i + 100)
                    })
                    .with_cache_key(key),
                );
            }
            g
        };
        let first = Harness::new()
            .jobs(2)
            .cache_dir(&cache_dir)
            .manifest(&manifest)
            .run(&counted_graph(&runs));
        assert!(first.summary.all_done());
        assert_eq!(runs.load(Ordering::SeqCst), 6);
        assert!(
            !manifest.exists(),
            "the store's WAL is the journal; no manifest file is written"
        );
        assert!(cache_dir.join("CURRENT").exists(), "LSM layout in place");
        let resumed = Harness::new()
            .jobs(2)
            .cache_dir(&cache_dir)
            .manifest(&manifest)
            .resume(true)
            .run(&counted_graph(&runs));
        assert!(resumed.summary.fully_cached(), "all cells pre-resolved");
        assert_eq!(runs.load(Ordering::SeqCst), 6, "resume recomputed nothing");
        let values = |s: &Sweep| -> Vec<Value> {
            s.outcomes
                .iter()
                .map(|o| o.value().unwrap().clone())
                .collect()
        };
        assert_eq!(values(&first), values(&resumed));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unified_resume_merges_a_leftover_legacy_manifest() {
        let dir = scratch("unified-merge");
        let cache_dir = dir.join("cache");
        let manifest = dir.join("manifest.json");
        // A pre-migration sweep left a line-JSON manifest behind.
        let j = Journal::open(&manifest, true).unwrap();
        j.append(&JournalEntry {
            key: Some(Value::Object(vec![
                ("cell".to_string(), Value::U64(0)),
                ("model".to_string(), Value::Str("v1".into())),
            ])),
            id: "cell-0".into(),
            value: Value::U64(100),
            digest: None,
        })
        .unwrap();
        drop(j);
        let mut g = JobGraph::new();
        let key = Value::Object(vec![
            ("cell".to_string(), Value::U64(0)),
            ("model".to_string(), Value::Str("v1".into())),
        ]);
        g.push(
            Job::new("cell-0", || panic!("must be served from the journal")).with_cache_key(key),
        );
        let sweep = Harness::new()
            .cache_dir(&cache_dir)
            .manifest(&manifest)
            .resume(true)
            .run(&g);
        assert!(sweep.summary.all_done());
        assert_eq!(sweep.outcomes[0].value(), Some(&Value::U64(100)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unified_fresh_sweep_empties_a_leftover_manifest() {
        let dir = scratch("unified-truncate");
        let cache_dir = dir.join("cache");
        let manifest = dir.join("manifest.json");
        Harness::new().manifest(&manifest).run(&cell_graph());
        assert_eq!(Journal::load(&manifest).unwrap().len(), 6);
        Harness::new()
            .cache_dir(&cache_dir)
            .manifest(&manifest)
            .run(&cell_graph());
        assert!(
            Journal::load(&manifest).unwrap().is_empty(),
            "stale pre-migration entries cannot feed a later resume"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_store_backend_is_used_for_caching() {
        let dir = scratch("shared-backend");
        let cache = ResultCache::open(&dir).unwrap();
        let warmup = Harness::new()
            .store_backend(cache.backend())
            .run(&cell_graph());
        assert_eq!(warmup.cache_stats.stores, 6);
        let warm = Harness::new()
            .store_backend(cache.backend())
            .run(&cell_graph());
        assert!(warm.summary.fully_cached());
        // Counters are store-wide: both sweeps hit the same backend.
        assert_eq!(cache.stats().stores, 6);
        assert_eq!(cache.stats().hits, 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn builder_retries_recover_a_flaky_cell() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        let flakes = Arc::new(AtomicU32::new(0));
        let f = Arc::clone(&flakes);
        let mut g = JobGraph::new();
        g.push(Job::new("flaky", move || {
            if f.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("first attempt flakes");
            }
            Value::U64(7)
        }));
        let sweep = Harness::new()
            .retries(2)
            .backoff(Duration::from_millis(1), Duration::from_millis(10))
            .run(&g);
        assert!(sweep.summary.all_done());
        assert_eq!(sweep.summary.retried, vec!["flaky".to_string()]);
        assert!(sweep.outcomes[0].was_retried());
    }

    #[test]
    fn doc_example_shape() {
        let mut graph = JobGraph::new();
        for i in 0..4u64 {
            graph.push(Job::new(format!("cell-{i}"), move || Value::U64(i * i)));
        }
        let sweep = Harness::new().jobs(2).run(&graph);
        assert!(sweep.summary.all_done());
        assert_eq!(sweep.outcomes[3].value(), Some(&Value::U64(9)));
    }
}

//! # scu-harness — parallel experiment orchestration
//!
//! The reproduction matrix (algorithm × dataset × platform × machine
//! mode) is 150+ independent, deterministic simulator cells. This
//! crate runs them concurrently while keeping the sequential path's
//! guarantees:
//!
//! - **Determinism** — each cell is a pure closure owning its
//!   configuration; outcomes are returned in submission order, so a
//!   run with `--jobs 16` is byte-identical to `--jobs 1`.
//! - **Content-addressed caching** — results are JSON blobs keyed by
//!   a stable hash of the cell configuration plus a model-version
//!   string; after a code tweak that bumps the version, only
//!   invalidated cells recompute ([`cache::ResultCache`]).
//! - **Fault isolation** — a panicking cell is caught and reported
//!   `FAILED`, a cell over its wall-clock budget `TIMED-OUT`, and
//!   dependents of either are `skipped`; the sweep always completes
//!   and ends with a summary ([`progress::SweepSummary`]).
//!
//! The executor is a fixed worker pool over a single
//! `Mutex`+`Condvar`-protected ready queue (`crossbeam` and
//! `parking_lot` cannot be resolved in this offline environment, and
//! at ~150 cells of milliseconds-to-seconds each, queue contention is
//! noise — the work units dwarf the locking).
//!
//! ```
//! use scu_harness::{Harness, Job, JobGraph};
//! use serde_json::Value;
//!
//! let mut graph = JobGraph::new();
//! for i in 0..4u64 {
//!     graph.push(Job::new(format!("cell-{i}"), move || Value::U64(i * i)));
//! }
//! let sweep = Harness::new().jobs(2).run(&graph);
//! assert!(sweep.summary.all_done());
//! assert_eq!(sweep.outcomes[3].value(), Some(&Value::U64(9)));
//! ```

pub mod cache;
pub mod cli;
pub mod executor;
pub mod hash;
pub mod job;
pub mod progress;

pub use cache::{CacheStats, ResultCache};
pub use cli::CliArgs;
pub use executor::{default_jobs, ExecOptions};
pub use job::{Job, JobGraph, JobId, Outcome};
pub use progress::{Progress, SweepSummary};

use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Everything a finished sweep produced.
#[derive(Debug)]
pub struct Sweep {
    /// Per-job outcomes, in [`JobGraph`] insertion order.
    pub outcomes: Vec<Outcome>,
    /// Aggregate counts, failures and timings.
    pub summary: SweepSummary,
    /// Cache activity during the sweep (zeroes when caching is off).
    pub cache_stats: CacheStats,
}

/// Builder-style front door: configure once, run a [`JobGraph`].
#[derive(Debug, Clone)]
pub struct Harness {
    jobs: usize,
    cache_dir: Option<PathBuf>,
    timeout: Option<Duration>,
    narrate: bool,
    progress_file: Option<PathBuf>,
}

impl Default for Harness {
    fn default() -> Self {
        Harness {
            jobs: default_jobs(),
            cache_dir: None,
            timeout: None,
            narrate: false,
            progress_file: None,
        }
    }
}

impl Harness {
    /// A harness with default options: all cores, no cache, no
    /// timeout, silent.
    pub fn new() -> Self {
        Harness::default()
    }

    /// Sets the worker-thread count (clamped to at least 1).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Enables the on-disk result cache rooted at `dir`.
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Sets the per-cell wall-clock budget.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Narrates per-cell completions on stderr.
    pub fn narrate(mut self, narrate: bool) -> Self {
        self.narrate = narrate;
        self
    }

    /// Mirrors progress lines into a file (e.g.
    /// `results/reproduce_progress.txt`).
    pub fn progress_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.progress_file = Some(path.into());
        self
    }

    /// Applies the shared CLI flags (`--jobs`, `--no-cache`,
    /// `--timeout-secs`) on top of the current configuration.
    /// `default_cache_dir` is used unless `--no-cache` was given.
    pub fn apply_cli(mut self, args: &CliArgs, default_cache_dir: impl Into<PathBuf>) -> Self {
        self.jobs = args.jobs.max(1);
        self.timeout = args.timeout;
        self.cache_dir = if args.no_cache {
            None
        } else {
            Some(default_cache_dir.into())
        };
        self
    }

    /// Runs the graph to completion.
    pub fn run(&self, graph: &JobGraph) -> Sweep {
        let cache = self
            .cache_dir
            .as_ref()
            .and_then(|dir| match ResultCache::open(dir) {
                Ok(c) => Some(c),
                Err(e) => {
                    eprintln!(
                        "[scu-harness] cannot open cache at {}: {e}; running uncached",
                        dir.display()
                    );
                    None
                }
            });
        let mut progress = if self.narrate {
            Progress::stderr(graph.len())
        } else {
            Progress::silent(graph.len())
        };
        if let Some(path) = &self.progress_file {
            match progress.with_file(path) {
                Ok(p) => progress = p,
                Err(e) => {
                    eprintln!(
                        "[scu-harness] cannot write progress to {}: {e}",
                        path.display()
                    );
                    progress = if self.narrate {
                        Progress::stderr(graph.len())
                    } else {
                        Progress::silent(graph.len())
                    };
                }
            }
        }
        let opts = ExecOptions {
            jobs: self.jobs,
            timeout: self.timeout,
        };
        let start = Instant::now();
        let outcomes = executor::execute(graph, cache.as_ref(), &opts, &progress);
        let summary = SweepSummary::new(graph, &outcomes, start.elapsed());
        let cache_stats = cache.map(|c| c.stats()).unwrap_or_default();
        Sweep {
            outcomes,
            summary,
            cache_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::Value;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("scu-harness-lib-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cell_graph() -> JobGraph {
        let mut g = JobGraph::new();
        for i in 0..6u64 {
            let key = Value::Object(vec![
                ("cell".to_string(), Value::U64(i)),
                ("model".to_string(), Value::Str("v1".into())),
            ]);
            g.push(Job::new(format!("cell-{i}"), move || Value::U64(i + 100)).with_cache_key(key));
        }
        g
    }

    #[test]
    fn warm_cache_serves_every_cell() {
        let dir = scratch("warm");
        let harness = Harness::new().jobs(4).cache_dir(&dir);
        let cold = harness.run(&cell_graph());
        assert!(cold.summary.all_done());
        assert_eq!(cold.summary.cached, 0);
        assert_eq!(cold.cache_stats.stores, 6);
        let warm = harness.run(&cell_graph());
        assert!(warm.summary.fully_cached());
        assert_eq!(warm.cache_stats.hits, 6);
        let values = |s: &Sweep| -> Vec<Value> {
            s.outcomes
                .iter()
                .map(|o| o.value().unwrap().clone())
                .collect()
        };
        assert_eq!(values(&cold), values(&warm));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let seq = Harness::new().jobs(1).run(&cell_graph());
        let par = Harness::new().jobs(6).run(&cell_graph());
        assert_eq!(seq.outcomes.len(), par.outcomes.len());
        for (a, b) in seq.outcomes.iter().zip(&par.outcomes) {
            assert_eq!(a.value(), b.value());
        }
    }

    #[test]
    fn apply_cli_respects_no_cache() {
        let args = CliArgs::parse([
            "--no-cache".to_string(),
            "--jobs".to_string(),
            "2".to_string(),
        ])
        .unwrap();
        let h = Harness::new().apply_cli(&args, "unused-cache-dir");
        assert_eq!(h.jobs, 2);
        assert!(h.cache_dir.is_none());
        let with_cache =
            Harness::new().apply_cli(&CliArgs::parse(Vec::<String>::new()).unwrap(), "some-dir");
        assert_eq!(
            with_cache.cache_dir.as_deref(),
            Some(std::path::Path::new("some-dir"))
        );
    }

    #[test]
    fn doc_example_shape() {
        let mut graph = JobGraph::new();
        for i in 0..4u64 {
            graph.push(Job::new(format!("cell-{i}"), move || Value::U64(i * i)));
        }
        let sweep = Harness::new().jobs(2).run(&graph);
        assert!(sweep.summary.all_done());
        assert_eq!(sweep.outcomes[3].value(), Some(&Value::U64(9)));
    }
}

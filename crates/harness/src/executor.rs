//! The parallel executor: a fixed pool of worker threads draining a
//! dependency-ordered ready queue.
//!
//! `crossbeam`/`parking_lot` are unavailable in this offline build, so
//! the pool is built on `std::sync` — one `Mutex<SchedState>` +
//! `Condvar` protects the ready queue, the indegree counts and the
//! unfinished counter together, which rules out the classic lost-
//! wakeup between "queue looked empty" and "last job finished".
//!
//! Determinism: each job owns its inputs and its work closure is pure,
//! so the *values* produced are independent of scheduling; outcomes
//! are recorded into a slot vector indexed by [`JobId`], so the
//! returned order is insertion order regardless of completion order.
//! Running with one worker or sixteen yields byte-identical results.
//!
//! Fault isolation and recovery, layered per job:
//!
//! 1. **Resume** — with a resume map (journaled completions from an
//!    interrupted sweep), a matching job is pre-resolved without
//!    running.
//! 2. **Cache** — a content-addressed hit short-circuits execution.
//! 3. **Retry** — a panicking or timed-out attempt is retried up to
//!    [`ExecOptions::retries`] times with capped exponential backoff;
//!    every failed attempt is recorded in the outcome's history.
//! 4. **Isolation** — the final panic is caught with `catch_unwind`
//!    and reported as [`Outcome::Failed`]; transitive dependents become
//!    [`Outcome::Skipped`]; everything else proceeds.
//!
//! Timeouts: with a configured budget the job runs on a dedicated
//! thread; on expiry the thread is *abandoned* (threads cannot be
//! killed safely) and the worker moves on — pool capacity is restored
//! immediately because the worker itself never ran the cell. Abandoned
//! threads are tracked: those that finish before the sweep ends are
//! joined (reclaimed), the rest are counted as
//! [`ExecResult::leaked_threads`] so a sweep that shed threads says so
//! in its summary instead of leaking silently.
//!
//! Cancellation: when the cancel flag rises (SIGINT), workers finish
//! their in-flight jobs — completions still reach the journal — and
//! stop drawing new ones; never-started jobs report
//! [`Outcome::Cancelled`].

use std::collections::HashMap;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use serde_json::Value;

use crate::cache::ResultCache;
use crate::error::lock_unpoisoned;
use crate::job::{Attempt, Job, JobGraph, JobId, Outcome};
use crate::journal::{Journal, JournalEntry};
use crate::progress::Progress;

/// Executor knobs.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Worker threads; clamped to `1..=graph.len()`.
    pub jobs: usize,
    /// Per-job wall-clock budget; `None` disables the watchdog and
    /// runs jobs inline on the workers.
    pub timeout: Option<Duration>,
    /// Retries after a failed or timed-out attempt (0 = single shot).
    pub retries: u32,
    /// Base backoff slept after the first failed attempt; doubles per
    /// attempt, capped at [`ExecOptions::backoff_cap`].
    pub backoff: Duration,
    /// Upper bound on a single backoff sleep.
    pub backoff_cap: Duration,
    /// Simulator threads each job spawns internally (the GPU engine's
    /// `SimThreads` knob). The executor only uses this to cap `jobs`
    /// so `jobs × threads_per_job` cannot oversubscribe the machine;
    /// it never changes what a job computes.
    pub threads_per_job: usize,
    /// Treat a resumed cell's timeline-digest mismatch as a failure
    /// instead of a warning (the `--strict-resume` flag). CI uses this
    /// to turn silent model/config divergence into a non-zero exit.
    pub strict_resume: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            jobs: default_jobs(),
            timeout: None,
            retries: 0,
            backoff: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(2),
            threads_per_job: 1,
            strict_resume: false,
        }
    }
}

/// The sweep's retry pacing: `base · 2^prior`, saturating, never above
/// `cap`. `prior` is how many attempts have already failed (0 for the
/// first retry). Shared by the executor's cell retries and the HTTP
/// client's transient-error retries so both back off identically.
pub fn capped_backoff(base: Duration, cap: Duration, prior_attempts: usize) -> Duration {
    base.saturating_mul(1u32 << prior_attempts.min(16)).min(cap)
}

/// Everything the executor consults besides the graph itself.
#[derive(Default)]
pub struct ExecContext<'a> {
    /// Content-addressed result cache, if caching is on.
    pub cache: Option<&'a ResultCache>,
    /// Journal receiving each completion, if journaling is on.
    pub journal: Option<&'a Journal>,
    /// Journaled completions from an interrupted sweep, keyed by
    /// [`JournalEntry::resume_key`].
    pub resume: Option<&'a HashMap<String, Value>>,
    /// Timeline digests from the interrupted sweep's journal, keyed by
    /// job id. A cell that *re-runs* during a resumed sweep (its cache
    /// key changed, so the resume map missed it) is cross-checked
    /// against the digest journaled for the same id; a mismatch warns,
    /// or fails the cell under [`ExecOptions::strict_resume`].
    pub resume_digests: Option<&'a HashMap<String, u64>>,
    /// Rises when the sweep should drain and stop (SIGINT).
    pub cancel: Option<&'a AtomicBool>,
}

/// What a finished (or drained) execution produced.
#[derive(Debug)]
pub struct ExecResult {
    /// Per-job outcomes in insertion order.
    pub outcomes: Vec<Outcome>,
    /// Timed-out worker threads still running when the sweep ended.
    pub leaked_threads: usize,
}

/// The machine's available parallelism (1 if unknown).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Caps the worker count so `workers × threads_per_job` does not
/// oversubscribe `available` hardware threads.
///
/// Returns the effective worker count and whether the oversubscription
/// cap (as opposed to the usual `1..=graph_len` clamp) kicked in. Pure
/// so the policy is unit-testable apart from the executor.
pub fn effective_workers(
    jobs: usize,
    threads_per_job: usize,
    graph_len: usize,
    available: usize,
) -> (usize, bool) {
    let jobs = jobs.clamp(1, graph_len.max(1));
    let budget = (available.max(1) / threads_per_job.max(1)).max(1);
    if jobs > budget {
        (budget, true)
    } else {
        (jobs, false)
    }
}

/// The oversubscription warning fires once per process, not once per
/// sweep — reproduce_all runs many sweeps with identical options.
static OVERSUBSCRIBE_WARNED: AtomicBool = AtomicBool::new(false);

struct SchedState {
    ready: VecDeque<JobId>,
    indegree: Vec<usize>,
    unfinished: usize,
}

/// A cell thread abandoned by the timeout watchdog: joinable once
/// `finished` rises, leaked if the sweep ends first.
struct Abandoned {
    handle: std::thread::JoinHandle<()>,
    finished: Arc<AtomicBool>,
}

struct Scheduler<'g> {
    graph: &'g JobGraph,
    dependents: Vec<Vec<JobId>>,
    state: Mutex<SchedState>,
    cv: Condvar,
    results: Mutex<Vec<Option<Outcome>>>,
    abandoned: Mutex<Vec<Abandoned>>,
}

impl<'g> Scheduler<'g> {
    fn new(graph: &'g JobGraph) -> Self {
        let n = graph.len();
        let mut dependents = vec![Vec::new(); n];
        let mut indegree = vec![0usize; n];
        for (id, job) in graph.jobs().iter().enumerate() {
            indegree[id] = job.deps.len();
            for &d in &job.deps {
                dependents[d].push(id);
            }
        }
        let ready: VecDeque<JobId> = (0..n).filter(|&i| indegree[i] == 0).collect();
        Scheduler {
            graph,
            dependents,
            state: Mutex::new(SchedState {
                ready,
                indegree,
                unfinished: n,
            }),
            cv: Condvar::new(),
            results: Mutex::new(vec![None; n]),
            abandoned: Mutex::new(Vec::new()),
        }
    }

    /// Blocks until a job is ready, everything is finished, or the
    /// sweep is cancelled.
    fn next_job(&self, cancel: Option<&AtomicBool>) -> Option<JobId> {
        let cancelled = || cancel.is_some_and(|c| c.load(Ordering::SeqCst));
        let mut state = lock_unpoisoned(&self.state, "scheduler state");
        loop {
            if cancelled() {
                return None;
            }
            if let Some(id) = state.ready.pop_front() {
                return Some(id);
            }
            if state.unfinished == 0 {
                return None;
            }
            // A bounded wait keeps draining responsive to a cancel
            // raised while every worker is parked.
            let (guard, _timeout) = self
                .cv
                .wait_timeout(state, Duration::from_millis(50))
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            state = guard;
        }
    }

    /// Records an outcome and releases any newly-ready dependents.
    fn record(&self, id: JobId, outcome: Outcome) {
        // Results first: a dependent reading its deps must find them.
        lock_unpoisoned(&self.results, "results")[id] = Some(outcome);
        let mut state = lock_unpoisoned(&self.state, "scheduler state");
        state.unfinished -= 1;
        for &d in &self.dependents[id] {
            state.indegree[d] -= 1;
            if state.indegree[d] == 0 {
                state.ready.push_back(d);
            }
        }
        drop(state);
        self.cv.notify_all();
    }

    /// The id of the first dependency that did not complete, if any.
    fn failed_dep(&self, job: &Job) -> Option<String> {
        let results = lock_unpoisoned(&self.results, "results");
        for &d in &job.deps {
            let dep_done = results[d].as_ref().is_some_and(Outcome::is_done);
            if !dep_done {
                return Some(self.graph.jobs()[d].id.clone());
            }
        }
        None
    }

    /// Reclaims abandoned cell threads that finished on their own;
    /// returns how many are still running (leaked).
    fn sweep_abandoned(&self) -> usize {
        let mut abandoned = lock_unpoisoned(&self.abandoned, "abandoned threads");
        let mut leaked = 0usize;
        for a in abandoned.drain(..) {
            if a.finished.load(Ordering::SeqCst) {
                let _ = a.handle.join();
            } else {
                leaked += 1;
                // Dropping the handle detaches the thread; its closure
                // Arc keeps the environment alive until it returns.
            }
        }
        leaked
    }
}

/// Runs every job in `graph`, returning outcomes in insertion order
/// plus the count of threads the timeout watchdog had to shed.
pub fn execute(
    graph: &JobGraph,
    ctx: &ExecContext<'_>,
    opts: &ExecOptions,
    progress: &Progress,
) -> ExecResult {
    if graph.is_empty() {
        return ExecResult {
            outcomes: Vec::new(),
            leaked_threads: 0,
        };
    }
    let available = default_jobs();
    let (workers, clamped) =
        effective_workers(opts.jobs, opts.threads_per_job, graph.len(), available);
    if clamped && !OVERSUBSCRIBE_WARNED.swap(true, Ordering::SeqCst) {
        eprintln!(
            "scu-harness: warning: {} jobs x {} sim threads oversubscribes {} available \
             threads; running {} workers instead",
            opts.jobs, opts.threads_per_job, available, workers
        );
    }
    let sched = Scheduler::new(graph);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let sched = &sched;
            std::thread::Builder::new()
                .name(format!("scu-harness-{w}"))
                .spawn_scoped(scope, move || {
                    while let Some(id) = sched.next_job(ctx.cancel) {
                        let job = &sched.graph.jobs()[id];
                        let outcome = run_one(job, ctx, opts, sched);
                        progress.job_finished(&job.id, &outcome);
                        sched.record(id, outcome);
                    }
                })
                .expect("spawning worker thread");
        }
    });
    let leaked_threads = sched.sweep_abandoned();
    let outcomes = lock_unpoisoned(&sched.results, "results")
        .iter_mut()
        .map(|slot| slot.take().unwrap_or(Outcome::Cancelled))
        .collect();
    ExecResult {
        outcomes,
        leaked_threads,
    }
}

fn run_one(job: &Job, ctx: &ExecContext<'_>, opts: &ExecOptions, sched: &Scheduler<'_>) -> Outcome {
    if let Some(failed_dep) = sched.failed_dep(job) {
        return Outcome::Skipped { failed_dep };
    }
    let start = Instant::now();
    if let Some(resume) = ctx.resume {
        let rk = JournalEntry::resume_key(job.cache_key.as_ref(), &job.id);
        if let Some(value) = resume.get(&rk) {
            return Outcome::Done {
                value: value.clone(),
                duration: start.elapsed(),
                cached: true,
                retries: Vec::new(),
            };
        }
    }
    if let (Some(cache), Some(key)) = (ctx.cache, job.cache_key.as_ref()) {
        if let Some(value) = cache.load(key) {
            let outcome = Outcome::Done {
                value,
                duration: start.elapsed(),
                cached: true,
                retries: Vec::new(),
            };
            journal_done(ctx, job, &outcome);
            return outcome;
        }
    }
    let outcome = run_with_retries(job, opts, start, sched);
    if let (Some(digests), Outcome::Done { value, .. }) = (ctx.resume_digests, &outcome) {
        if let (Some(&journaled), Some(fresh)) = (digests.get(&job.id), timeline_digest(value)) {
            if journaled != fresh {
                if opts.strict_resume {
                    // Divergence is an error: the fresh value is
                    // neither cached nor journaled, so the sweep exits
                    // non-zero and nothing records the ambiguous run.
                    return Outcome::Failed {
                        error: format!(
                            "strict resume: re-ran with timeline digest {fresh:016x} but \
                             the interrupted sweep journaled {journaled:016x} (model or \
                             configuration changed between sweeps)"
                        ),
                        retries: Vec::new(),
                    };
                }
                eprintln!(
                    "[scu-harness] warning: cell '{}' re-ran with timeline digest \
                     {fresh:016x} but the interrupted sweep journaled {journaled:016x} \
                     (model or configuration changed between sweeps)",
                    job.id
                );
            }
        }
    }
    if let (Some(cache), Some(key), Outcome::Done { value, .. }) =
        (ctx.cache, job.cache_key.as_ref(), &outcome)
    {
        if let Err(e) = cache.store(key, value) {
            // A write failure degrades caching, not correctness.
            eprintln!("[scu-harness] cache store failed for '{}': {e}", job.id);
        }
    }
    journal_done(ctx, job, &outcome);
    outcome
}

/// The per-cell timeline digest, when the result value carries one.
fn timeline_digest(value: &Value) -> Option<u64> {
    value.get("timeline_digest").and_then(Value::as_u64)
}

/// Appends a completion to the journal, degrading on failure.
fn journal_done(ctx: &ExecContext<'_>, job: &Job, outcome: &Outcome) {
    let (Some(journal), Outcome::Done { value, .. }) = (ctx.journal, outcome) else {
        return;
    };
    let entry = JournalEntry {
        key: job.cache_key.clone(),
        id: job.id.clone(),
        value: value.clone(),
        digest: timeline_digest(value),
    };
    if let Err(e) = journal.append(&entry) {
        // A short journal only costs recomputation on resume.
        eprintln!("[scu-harness] journal append failed for '{}': {e}", job.id);
    }
}

/// One attempt plus up to `opts.retries` retries with capped
/// exponential backoff; each failed attempt lands in the history.
fn run_with_retries(
    job: &Job,
    opts: &ExecOptions,
    start: Instant,
    sched: &Scheduler<'_>,
) -> Outcome {
    let mut history: Vec<Attempt> = Vec::new();
    loop {
        let attempt = match opts.timeout {
            None => run_inline(job, start),
            Some(limit) => run_with_watchdog(job, start, limit, Some(sched)),
        };
        let error = match &attempt {
            Outcome::Done {
                value,
                duration,
                cached,
                ..
            } => {
                return Outcome::Done {
                    value: value.clone(),
                    duration: *duration,
                    cached: *cached,
                    retries: history,
                };
            }
            Outcome::Failed { error, .. } => error.clone(),
            Outcome::TimedOut { limit, .. } => {
                format!("timed out after {:.3} s", limit.as_secs_f64())
            }
            Outcome::Skipped { .. } | Outcome::Cancelled => unreachable!("attempts run"),
        };
        if history.len() as u32 >= opts.retries {
            return match attempt {
                Outcome::Failed { error, .. } => Outcome::Failed {
                    error,
                    retries: history,
                },
                Outcome::TimedOut { limit, .. } => Outcome::TimedOut {
                    limit,
                    retries: history,
                },
                _ => unreachable!("non-done attempt"),
            };
        }
        let backoff = capped_backoff(opts.backoff, opts.backoff_cap, history.len());
        history.push(Attempt { error, backoff });
        std::thread::sleep(backoff);
    }
}

fn run_inline(job: &Job, start: Instant) -> Outcome {
    let work = &job.work;
    match catch_unwind(AssertUnwindSafe(|| work())) {
        Ok(value) => Outcome::Done {
            value,
            duration: start.elapsed(),
            cached: false,
            retries: Vec::new(),
        },
        Err(payload) => Outcome::Failed {
            error: panic_message(payload.as_ref()),
            retries: Vec::new(),
        },
    }
}

fn run_with_watchdog(
    job: &Job,
    start: Instant,
    limit: Duration,
    sched: Option<&Scheduler<'_>>,
) -> Outcome {
    let work = job.work.clone();
    let finished = Arc::new(AtomicBool::new(false));
    let done_flag = Arc::clone(&finished);
    let (tx, rx) = std::sync::mpsc::channel::<Result<Value, String>>();
    let spawned = std::thread::Builder::new()
        .name(format!("scu-cell-{}", job.id))
        .spawn(move || {
            let result =
                catch_unwind(AssertUnwindSafe(|| work())).map_err(|p| panic_message(p.as_ref()));
            // The receiver may have timed out and gone away.
            let _ = tx.send(result);
            done_flag.store(true, Ordering::SeqCst);
        });
    let handle = match spawned {
        Ok(h) => h,
        // Could not get a watchdog thread; run inline instead of
        // failing the cell (the timeout is advisory, the result not).
        Err(_) => return run_inline(job, start),
    };
    match rx.recv_timeout(limit) {
        Ok(Ok(value)) => {
            let _ = handle.join();
            Outcome::Done {
                value,
                duration: start.elapsed(),
                cached: false,
                retries: Vec::new(),
            }
        }
        Ok(Err(error)) => {
            let _ = handle.join();
            Outcome::Failed {
                error,
                retries: Vec::new(),
            }
        }
        Err(RecvTimeoutError::Timeout) => {
            // Abandon the cell thread — it cannot be killed — but track
            // it so the sweep can reclaim or count it at the end.
            if let Some(sched) = sched {
                lock_unpoisoned(&sched.abandoned, "abandoned threads")
                    .push(Abandoned { handle, finished });
            }
            Outcome::TimedOut {
                limit,
                retries: Vec::new(),
            }
        }
        Err(RecvTimeoutError::Disconnected) => Outcome::Failed {
            error: "cell thread vanished without reporting".to_string(),
            retries: Vec::new(),
        },
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::progress::Progress;
    use std::sync::atomic::AtomicU32;

    fn silent() -> Progress {
        Progress::silent(0)
    }

    fn run(graph: &JobGraph, jobs: usize) -> Vec<Outcome> {
        execute(
            graph,
            &ExecContext::default(),
            &ExecOptions {
                jobs,
                ..ExecOptions::default()
            },
            &silent(),
        )
        .outcomes
    }

    #[test]
    fn outcomes_are_in_insertion_order_regardless_of_parallelism() {
        let build = || {
            let mut g = JobGraph::new();
            for i in 0..40u64 {
                // Reverse sleep pattern: later jobs finish earlier.
                g.push(Job::new(format!("job-{i}"), move || {
                    std::thread::sleep(Duration::from_micros(40 - i));
                    Value::U64(i * i)
                }));
            }
            g
        };
        let seq: Vec<Outcome> = run(&build(), 1);
        let par: Vec<Outcome> = run(&build(), 8);
        let values = |v: &[Outcome]| -> Vec<Value> {
            v.iter().map(|o| o.value().unwrap().clone()).collect()
        };
        assert_eq!(values(&seq), values(&par));
        assert_eq!(values(&seq)[3], Value::U64(9));
    }

    #[test]
    fn panicking_job_fails_alone() {
        let mut g = JobGraph::new();
        g.push(Job::new("ok-1", || Value::U64(1)));
        g.push(Job::new("bad", || panic!("deliberate cell failure")));
        g.push(Job::new("ok-2", || Value::U64(2)));
        let out = run(&g, 4);
        assert!(out[0].is_done());
        assert!(matches!(&out[1], Outcome::Failed { error, .. } if error.contains("deliberate")));
        assert!(out[2].is_done());
    }

    #[test]
    fn dependencies_run_in_order_and_failures_cascade_to_skips() {
        let mut g = JobGraph::new();
        let a = g.push(Job::new("a", || Value::U64(1)));
        let b = g.push(Job::new("b", || panic!("boom")));
        let c = g.push(Job::new("c", move || Value::U64(3)).after(&[a]));
        let d = g.push(Job::new("d", move || Value::U64(4)).after(&[b]));
        let e = g.push(Job::new("e", move || Value::U64(5)).after(&[d]));
        let out = run(&g, 4);
        assert!(out[a].is_done() && out[c].is_done());
        assert!(matches!(out[b], Outcome::Failed { .. }));
        assert!(matches!(&out[d], Outcome::Skipped { failed_dep } if failed_dep == "b"));
        assert!(matches!(&out[e], Outcome::Skipped { failed_dep } if failed_dep == "d"));
    }

    #[test]
    fn timeout_marks_cell_without_aborting_sweep_and_counts_the_leak() {
        let mut g = JobGraph::new();
        g.push(Job::new("slow", || {
            std::thread::sleep(Duration::from_secs(5));
            Value::Null
        }));
        g.push(Job::new("fast", || Value::U64(7)));
        let opts = ExecOptions {
            jobs: 2,
            timeout: Some(Duration::from_millis(30)),
            ..ExecOptions::default()
        };
        let result = execute(&g, &ExecContext::default(), &opts, &silent());
        assert!(matches!(result.outcomes[0], Outcome::TimedOut { .. }));
        assert_eq!(result.outcomes[1].value(), Some(&Value::U64(7)));
        assert_eq!(
            result.leaked_threads, 1,
            "the abandoned 5 s cell thread outlives the sweep"
        );
    }

    #[test]
    fn abandoned_thread_that_finishes_is_reclaimed_not_leaked() {
        let mut g = JobGraph::new();
        g.push(Job::new("brief-overrun", || {
            std::thread::sleep(Duration::from_millis(60));
            Value::Null
        }));
        // Enough in-budget jobs to keep the sweep alive past the
        // abandoned cell's 60 ms, so it finishes and can be joined.
        for i in 0..10u64 {
            g.push(Job::new(format!("quick-{i}"), move || {
                std::thread::sleep(Duration::from_millis(15));
                Value::U64(i)
            }));
        }
        let opts = ExecOptions {
            jobs: 1,
            timeout: Some(Duration::from_millis(30)),
            ..ExecOptions::default()
        };
        let result = execute(&g, &ExecContext::default(), &opts, &silent());
        assert!(matches!(result.outcomes[0], Outcome::TimedOut { .. }));
        assert_eq!(result.leaked_threads, 0, "finished strays are joined");
    }

    #[test]
    fn transient_failure_is_retried_then_ok_with_history() {
        let flakes = Arc::new(AtomicU32::new(0));
        let f = Arc::clone(&flakes);
        let mut g = JobGraph::new();
        g.push(Job::new("flaky", move || {
            if f.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("transient fault");
            }
            Value::U64(42)
        }));
        let opts = ExecOptions {
            jobs: 1,
            retries: 3,
            backoff: Duration::from_millis(1),
            ..ExecOptions::default()
        };
        let out = execute(&g, &ExecContext::default(), &opts, &silent()).outcomes;
        assert!(out[0].was_retried());
        assert_eq!(out[0].value(), Some(&Value::U64(42)));
        let history = out[0].retries();
        assert_eq!(history.len(), 2);
        assert!(history.iter().all(|a| a.error.contains("transient")));
        // Exponential: second backoff doubles the first.
        assert_eq!(history[1].backoff, history[0].backoff * 2);
    }

    #[test]
    fn permanent_failure_exhausts_retries_and_keeps_history() {
        let mut g = JobGraph::new();
        g.push(Job::new("doomed", || panic!("always broken")));
        let opts = ExecOptions {
            jobs: 1,
            retries: 2,
            backoff: Duration::from_millis(1),
            ..ExecOptions::default()
        };
        let out = execute(&g, &ExecContext::default(), &opts, &silent()).outcomes;
        match &out[0] {
            Outcome::Failed { error, retries } => {
                assert!(error.contains("always broken"));
                assert_eq!(retries.len(), 2, "two failed attempts precede the verdict");
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn backoff_is_capped() {
        let opts = ExecOptions {
            backoff: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
            retries: 6,
            jobs: 1,
            ..ExecOptions::default()
        };
        let mut g = JobGraph::new();
        g.push(Job::new("doomed", || panic!("nope")));
        let out = execute(&g, &ExecContext::default(), &opts, &silent()).outcomes;
        let history = out[0].retries();
        assert_eq!(history.len(), 6);
        assert!(history
            .iter()
            .all(|a| a.backoff <= Duration::from_millis(2)));
    }

    #[test]
    fn cancel_drains_in_flight_and_marks_the_rest_cancelled() {
        let cancel = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&cancel);
        let mut g = JobGraph::new();
        g.push(Job::new("trigger", move || {
            flag.store(true, Ordering::SeqCst);
            Value::U64(1)
        }));
        for i in 1..5u64 {
            g.push(Job::new(format!("never-{i}"), move || Value::U64(i)));
        }
        let ctx = ExecContext {
            cancel: Some(&cancel),
            ..ExecContext::default()
        };
        let out = execute(
            &g,
            &ctx,
            &ExecOptions {
                jobs: 1,
                ..ExecOptions::default()
            },
            &silent(),
        )
        .outcomes;
        assert!(out[0].is_done(), "in-flight job drains to completion");
        for o in &out[1..] {
            assert_eq!(o, &Outcome::Cancelled);
        }
    }

    #[test]
    fn resume_map_pre_resolves_without_running() {
        let ran = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&ran);
        let key = Value::Str("resume-key".into());
        let mut g = JobGraph::new();
        g.push(
            Job::new("resumable", move || {
                flag.store(true, Ordering::SeqCst);
                Value::U64(0)
            })
            .with_cache_key(key.clone()),
        );
        let mut resume = HashMap::new();
        resume.insert(
            JournalEntry::resume_key(Some(&key), "resumable"),
            Value::U64(99),
        );
        let ctx = ExecContext {
            resume: Some(&resume),
            ..ExecContext::default()
        };
        let out = execute(&g, &ctx, &ExecOptions::default(), &silent()).outcomes;
        assert_eq!(out[0].value(), Some(&Value::U64(99)));
        assert!(out[0].is_cached());
        assert!(!ran.load(Ordering::SeqCst), "journaled cell must not rerun");
    }

    #[test]
    fn rerun_cell_with_mismatched_journal_digest_warns_but_completes() {
        // The cell's cache key changed between sweeps (e.g. a model
        // bump), so the resume map misses and it re-runs; its fresh
        // digest disagrees with the journaled one. The outcome must
        // still be Done — the mismatch is diagnostic only.
        let mut g = JobGraph::new();
        g.push(
            Job::new("cell", || {
                Value::Object(vec![("timeline_digest".into(), Value::U64(0xbeef))])
            })
            .with_cache_key(Value::Str("new-model-key".into())),
        );
        let resume = HashMap::new(); // no resume match -> re-run
        let mut digests = HashMap::new();
        digests.insert("cell".to_string(), 0xdeadu64);
        let ctx = ExecContext {
            resume: Some(&resume),
            resume_digests: Some(&digests),
            ..ExecContext::default()
        };
        let out = execute(&g, &ctx, &ExecOptions::default(), &silent()).outcomes;
        assert!(out[0].is_done(), "digest mismatch must not fail the cell");
        assert!(!out[0].is_cached());
    }

    #[test]
    fn strict_resume_fails_the_cell_on_digest_mismatch() {
        let mut g = JobGraph::new();
        g.push(
            Job::new("cell", || {
                Value::Object(vec![("timeline_digest".into(), Value::U64(0xbeef))])
            })
            .with_cache_key(Value::Str("new-model-key".into())),
        );
        let resume = HashMap::new();
        let mut digests = HashMap::new();
        digests.insert("cell".to_string(), 0xdeadu64);
        let ctx = ExecContext {
            resume: Some(&resume),
            resume_digests: Some(&digests),
            ..ExecContext::default()
        };
        let opts = ExecOptions {
            strict_resume: true,
            ..ExecOptions::default()
        };
        let out = execute(&g, &ctx, &opts, &silent()).outcomes;
        match &out[0] {
            Outcome::Failed { error, .. } => {
                assert!(error.contains("strict resume"), "got: {error}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        // A matching digest passes untouched under strict mode.
        digests.insert("cell".to_string(), 0xbeefu64);
        let ctx = ExecContext {
            resume: Some(&resume),
            resume_digests: Some(&digests),
            ..ExecContext::default()
        };
        let out = execute(&g, &ctx, &opts, &silent()).outcomes;
        assert!(out[0].is_done());
    }

    #[test]
    fn capped_backoff_doubles_then_saturates() {
        let base = Duration::from_millis(100);
        let cap = Duration::from_secs(2);
        assert_eq!(capped_backoff(base, cap, 0), Duration::from_millis(100));
        assert_eq!(capped_backoff(base, cap, 1), Duration::from_millis(200));
        assert_eq!(capped_backoff(base, cap, 2), Duration::from_millis(400));
        assert_eq!(capped_backoff(base, cap, 5), cap);
        // The shift itself is clamped: absurd attempt counts stay at cap.
        assert_eq!(capped_backoff(base, cap, 10_000), cap);
    }

    #[test]
    fn cache_round_trip_through_executor() {
        let dir =
            std::env::temp_dir().join(format!("scu-harness-exec-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).unwrap();
        let key = Value::Str("cell-key".into());
        let build = |key: Value| {
            let mut g = JobGraph::new();
            g.push(Job::new("cell", || Value::U64(99)).with_cache_key(key));
            g
        };
        let ctx = ExecContext {
            cache: Some(&cache),
            ..ExecContext::default()
        };
        let first = execute(
            &build(key.clone()),
            &ctx,
            &ExecOptions::default(),
            &silent(),
        )
        .outcomes;
        assert!(first[0].is_done() && !first[0].is_cached());
        let second = execute(&build(key), &ctx, &ExecOptions::default(), &silent()).outcomes;
        assert!(second[0].is_cached());
        assert_eq!(second[0].value(), first[0].value());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_records_completions_as_they_happen() {
        let dir = std::env::temp_dir().join(format!("scu-harness-exec-jnl-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("manifest.json");
        let journal = Journal::open(&path, true).unwrap();
        let mut g = JobGraph::new();
        g.push(Job::new("ok", || Value::U64(5)).with_cache_key(Value::U64(1)));
        g.push(Job::new("bad", || panic!("no journal entry for me")));
        let ctx = ExecContext {
            journal: Some(&journal),
            ..ExecContext::default()
        };
        execute(&g, &ctx, &ExecOptions::default(), &silent());
        let entries = Journal::load(&path).unwrap();
        assert_eq!(entries.len(), 1, "only completions are journaled");
        assert_eq!(entries[0].id, "ok");
        assert_eq!(entries[0].value, Value::U64(5));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_graph_is_a_no_op() {
        assert!(run(&JobGraph::new(), 4).is_empty());
    }

    #[test]
    fn effective_workers_keeps_legacy_clamp_without_sim_threads() {
        // threads_per_job = 1 must reproduce `jobs.clamp(1, graph_len)`.
        assert_eq!(effective_workers(8, 1, 100, 8), (8, false));
        assert_eq!(effective_workers(8, 1, 3, 8), (3, false));
        assert_eq!(effective_workers(0, 1, 3, 8), (1, false));
        assert_eq!(effective_workers(4, 1, 0, 8), (1, false));
    }

    #[test]
    fn effective_workers_caps_jobs_times_sim_threads() {
        // 8 jobs x 4 sim threads on 8 hardware threads -> 2 workers.
        assert_eq!(effective_workers(8, 4, 100, 8), (2, true));
        // Exactly at budget: no clamp.
        assert_eq!(effective_workers(2, 4, 100, 8), (2, false));
        // threads_per_job beyond the machine still leaves one worker.
        assert_eq!(effective_workers(8, 64, 100, 8), (1, true));
        // The graph-length clamp applies before the budget check.
        assert_eq!(effective_workers(8, 4, 2, 8), (2, false));
        // Degenerate available parallelism never yields zero workers.
        assert_eq!(effective_workers(4, 2, 100, 0), (1, true));
    }

    #[test]
    fn oversubscribed_execute_still_completes_all_jobs() {
        let mut g = JobGraph::new();
        for i in 0..6u64 {
            g.push(Job::new(format!("j{i}"), move || Value::U64(i)));
        }
        let opts = ExecOptions {
            jobs: usize::MAX,
            threads_per_job: usize::MAX,
            ..ExecOptions::default()
        };
        let out = execute(&g, &ExecContext::default(), &opts, &silent()).outcomes;
        assert_eq!(out.len(), 6);
        assert!(out.iter().all(Outcome::is_done));
    }
}

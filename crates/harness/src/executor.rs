//! The parallel executor: a fixed pool of worker threads draining a
//! dependency-ordered ready queue.
//!
//! `crossbeam`/`parking_lot` are unavailable in this offline build, so
//! the pool is built on `std::sync` — one `Mutex<SchedState>` +
//! `Condvar` protects the ready queue, the indegree counts and the
//! unfinished counter together, which rules out the classic lost-
//! wakeup between "queue looked empty" and "last job finished".
//!
//! Determinism: each job owns its inputs and its work closure is pure,
//! so the *values* produced are independent of scheduling; outcomes
//! are recorded into a slot vector indexed by [`JobId`], so the
//! returned order is insertion order regardless of completion order.
//! Running with one worker or sixteen yields byte-identical results.
//!
//! Fault isolation: a panicking job is caught with `catch_unwind` and
//! reported as [`Outcome::Failed`]; its transitive dependents become
//! [`Outcome::Skipped`]; everything else proceeds. With a configured
//! timeout the job runs on a dedicated thread that is *abandoned* on
//! expiry (threads cannot be killed safely); the closure's `Arc` keeps
//! its environment alive until the stray thread finishes.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use serde_json::Value;

use crate::cache::ResultCache;
use crate::job::{Job, JobGraph, JobId, Outcome};
use crate::progress::Progress;

/// Executor knobs.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Worker threads; clamped to `1..=graph.len()`.
    pub jobs: usize,
    /// Per-job wall-clock budget; `None` disables the watchdog and
    /// runs jobs inline on the workers.
    pub timeout: Option<Duration>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            jobs: default_jobs(),
            timeout: None,
        }
    }
}

/// The machine's available parallelism (1 if unknown).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

struct SchedState {
    ready: VecDeque<JobId>,
    indegree: Vec<usize>,
    unfinished: usize,
}

struct Scheduler<'g> {
    graph: &'g JobGraph,
    dependents: Vec<Vec<JobId>>,
    state: Mutex<SchedState>,
    cv: Condvar,
    results: Mutex<Vec<Option<Outcome>>>,
}

impl<'g> Scheduler<'g> {
    fn new(graph: &'g JobGraph) -> Self {
        let n = graph.len();
        let mut dependents = vec![Vec::new(); n];
        let mut indegree = vec![0usize; n];
        for (id, job) in graph.jobs().iter().enumerate() {
            indegree[id] = job.deps.len();
            for &d in &job.deps {
                dependents[d].push(id);
            }
        }
        let ready: VecDeque<JobId> = (0..n).filter(|&i| indegree[i] == 0).collect();
        Scheduler {
            graph,
            dependents,
            state: Mutex::new(SchedState {
                ready,
                indegree,
                unfinished: n,
            }),
            cv: Condvar::new(),
            results: Mutex::new(vec![None; n]),
        }
    }

    /// Blocks until a job is ready or everything is finished.
    fn next_job(&self) -> Option<JobId> {
        let mut state = self.state.lock().expect("scheduler state poisoned");
        loop {
            if let Some(id) = state.ready.pop_front() {
                return Some(id);
            }
            if state.unfinished == 0 {
                return None;
            }
            state = self.cv.wait(state).expect("scheduler state poisoned");
        }
    }

    /// Records an outcome and releases any newly-ready dependents.
    fn record(&self, id: JobId, outcome: Outcome) {
        // Results first: a dependent reading its deps must find them.
        self.results.lock().expect("results poisoned")[id] = Some(outcome);
        let mut state = self.state.lock().expect("scheduler state poisoned");
        state.unfinished -= 1;
        for &d in &self.dependents[id] {
            state.indegree[d] -= 1;
            if state.indegree[d] == 0 {
                state.ready.push_back(d);
            }
        }
        drop(state);
        self.cv.notify_all();
    }

    /// The id of the first dependency that did not complete, if any.
    fn failed_dep(&self, job: &Job) -> Option<String> {
        let results = self.results.lock().expect("results poisoned");
        for &d in &job.deps {
            let dep_done = results[d].as_ref().is_some_and(Outcome::is_done);
            if !dep_done {
                return Some(self.graph.jobs()[d].id.clone());
            }
        }
        None
    }
}

/// Runs every job in `graph`, returning outcomes in insertion order.
pub fn execute(
    graph: &JobGraph,
    cache: Option<&ResultCache>,
    opts: &ExecOptions,
    progress: &Progress,
) -> Vec<Outcome> {
    if graph.is_empty() {
        return Vec::new();
    }
    let workers = opts.jobs.clamp(1, graph.len());
    let sched = Scheduler::new(graph);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let sched = &sched;
            std::thread::Builder::new()
                .name(format!("scu-harness-{w}"))
                .spawn_scoped(scope, move || {
                    while let Some(id) = sched.next_job() {
                        let job = &sched.graph.jobs()[id];
                        let outcome = run_one(job, cache, opts.timeout, sched);
                        progress.job_finished(&job.id, &outcome);
                        sched.record(id, outcome);
                    }
                })
                .expect("spawning worker thread");
        }
    });
    sched
        .results
        .into_inner()
        .expect("results poisoned")
        .into_iter()
        .map(|o| o.expect("every job has an outcome"))
        .collect()
}

fn run_one(
    job: &Job,
    cache: Option<&ResultCache>,
    timeout: Option<Duration>,
    sched: &Scheduler<'_>,
) -> Outcome {
    if let Some(failed_dep) = sched.failed_dep(job) {
        return Outcome::Skipped { failed_dep };
    }
    let start = Instant::now();
    if let (Some(cache), Some(key)) = (cache, job.cache_key.as_ref()) {
        if let Some(value) = cache.load(key) {
            return Outcome::Done {
                value,
                duration: start.elapsed(),
                cached: true,
            };
        }
    }
    let outcome = match timeout {
        None => run_inline(job, start),
        Some(limit) => run_with_watchdog(job, start, limit),
    };
    if let (Some(cache), Some(key), Outcome::Done { value, .. }) =
        (cache, job.cache_key.as_ref(), &outcome)
    {
        if let Err(e) = cache.store(key, value) {
            // A write failure degrades caching, not correctness.
            eprintln!("[scu-harness] cache store failed for '{}': {e}", job.id);
        }
    }
    outcome
}

fn run_inline(job: &Job, start: Instant) -> Outcome {
    let work = &job.work;
    match catch_unwind(AssertUnwindSafe(|| work())) {
        Ok(value) => Outcome::Done {
            value,
            duration: start.elapsed(),
            cached: false,
        },
        Err(payload) => Outcome::Failed {
            error: panic_message(payload.as_ref()),
        },
    }
}

fn run_with_watchdog(job: &Job, start: Instant, limit: Duration) -> Outcome {
    let work = job.work.clone();
    let (tx, rx) = std::sync::mpsc::channel::<Result<Value, String>>();
    let spawned = std::thread::Builder::new()
        .name(format!("scu-cell-{}", job.id))
        .spawn(move || {
            let result =
                catch_unwind(AssertUnwindSafe(|| work())).map_err(|p| panic_message(p.as_ref()));
            // The receiver may have timed out and gone away.
            let _ = tx.send(result);
        });
    if spawned.is_err() {
        // Could not get a watchdog thread; run inline instead of
        // failing the cell (the timeout is advisory, the result not).
        return run_inline(job, start);
    }
    match rx.recv_timeout(limit) {
        Ok(Ok(value)) => Outcome::Done {
            value,
            duration: start.elapsed(),
            cached: false,
        },
        Ok(Err(error)) => Outcome::Failed { error },
        Err(RecvTimeoutError::Timeout) => Outcome::TimedOut { limit },
        Err(RecvTimeoutError::Disconnected) => Outcome::Failed {
            error: "cell thread vanished without reporting".to_string(),
        },
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::progress::Progress;

    fn silent() -> Progress {
        Progress::silent(0)
    }

    fn run(graph: &JobGraph, jobs: usize) -> Vec<Outcome> {
        execute(
            graph,
            None,
            &ExecOptions {
                jobs,
                timeout: None,
            },
            &silent(),
        )
    }

    #[test]
    fn outcomes_are_in_insertion_order_regardless_of_parallelism() {
        let build = || {
            let mut g = JobGraph::new();
            for i in 0..40u64 {
                // Reverse sleep pattern: later jobs finish earlier.
                g.push(Job::new(format!("job-{i}"), move || {
                    std::thread::sleep(Duration::from_micros(40 - i));
                    Value::U64(i * i)
                }));
            }
            g
        };
        let seq: Vec<Outcome> = run(&build(), 1);
        let par: Vec<Outcome> = run(&build(), 8);
        let values = |v: &[Outcome]| -> Vec<Value> {
            v.iter().map(|o| o.value().unwrap().clone()).collect()
        };
        assert_eq!(values(&seq), values(&par));
        assert_eq!(values(&seq)[3], Value::U64(9));
    }

    #[test]
    fn panicking_job_fails_alone() {
        let mut g = JobGraph::new();
        g.push(Job::new("ok-1", || Value::U64(1)));
        g.push(Job::new("bad", || panic!("deliberate cell failure")));
        g.push(Job::new("ok-2", || Value::U64(2)));
        let out = run(&g, 4);
        assert!(out[0].is_done());
        assert!(matches!(&out[1], Outcome::Failed { error } if error.contains("deliberate")));
        assert!(out[2].is_done());
    }

    #[test]
    fn dependencies_run_in_order_and_failures_cascade_to_skips() {
        let mut g = JobGraph::new();
        let a = g.push(Job::new("a", || Value::U64(1)));
        let b = g.push(Job::new("b", || panic!("boom")));
        let c = g.push(Job::new("c", move || Value::U64(3)).after(&[a]));
        let d = g.push(Job::new("d", move || Value::U64(4)).after(&[b]));
        let e = g.push(Job::new("e", move || Value::U64(5)).after(&[d]));
        let out = run(&g, 4);
        assert!(out[a].is_done() && out[c].is_done());
        assert!(matches!(out[b], Outcome::Failed { .. }));
        assert!(matches!(&out[d], Outcome::Skipped { failed_dep } if failed_dep == "b"));
        assert!(matches!(&out[e], Outcome::Skipped { failed_dep } if failed_dep == "d"));
    }

    #[test]
    fn timeout_marks_cell_without_aborting_sweep() {
        let mut g = JobGraph::new();
        g.push(Job::new("slow", || {
            std::thread::sleep(Duration::from_secs(5));
            Value::Null
        }));
        g.push(Job::new("fast", || Value::U64(7)));
        let opts = ExecOptions {
            jobs: 2,
            timeout: Some(Duration::from_millis(30)),
        };
        let out = execute(&g, None, &opts, &silent());
        assert!(matches!(out[0], Outcome::TimedOut { .. }));
        assert_eq!(out[1].value(), Some(&Value::U64(7)));
    }

    #[test]
    fn cache_round_trip_through_executor() {
        let dir =
            std::env::temp_dir().join(format!("scu-harness-exec-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).unwrap();
        let key = Value::Str("cell-key".into());
        let build = |key: Value| {
            let mut g = JobGraph::new();
            g.push(Job::new("cell", || Value::U64(99)).with_cache_key(key));
            g
        };
        let first = execute(
            &build(key.clone()),
            Some(&cache),
            &ExecOptions::default(),
            &silent(),
        );
        assert!(first[0].is_done() && !first[0].is_cached());
        let second = execute(
            &build(key),
            Some(&cache),
            &ExecOptions::default(),
            &silent(),
        );
        assert!(second[0].is_cached());
        assert_eq!(second[0].value(), first[0].value());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_graph_is_a_no_op() {
        assert!(run(&JobGraph::new(), 4).is_empty());
    }
}

//! Deterministic fault injection ("failpoints").
//!
//! A failpoint is a named site in the code — `failpoint::apply("cell-run")`
//! — that normally does nothing, but can be armed to panic, return an
//! error, sleep, or fail with an I/O error, either on every hit or only
//! on the Nth. Arming happens two ways:
//!
//! - the `SCU_FAILPOINTS` environment variable, parsed once on first
//!   use (the CI fault-injection matrix drives the binaries this way);
//! - the [`scoped`] builder API, which arms sites for the lifetime of a
//!   guard and is what the test suite uses (tests pick disjoint site
//!   names, so parallel tests do not interfere).
//!
//! Spec grammar, `;`-separated items:
//!
//! ```text
//! site=action[(arg)][@N|@N+]
//!
//! actions:  panic[(msg)]   panic at the site
//!           error[(msg)]   typed error from Result-shaped sites
//!           delay(ms)      sleep before proceeding
//!           io-error       std::io::Error from I/O-shaped sites
//!           stall[(ms)]    sleep (default 60 s) then proceed — models a
//!                          hung peer; pair with short socket timeouts
//!           disconnect     ConnectionReset from I/O-shaped sites —
//!                          models a peer vanishing mid-transfer
//! trigger:  @N             fire on the Nth hit only (1-based)
//!           @N+            fire on the Nth and every later hit
//!           (none)         fire on every hit
//! ```
//!
//! e.g. `SCU_FAILPOINTS='cell-run=panic@3;cache-load=io-error'`.
//!
//! Triggers are seeded by a per-site hit counter, so a given
//! configuration fires at the same hits on every run — injection is as
//! deterministic as the code under test.
//!
//! **Cost when inactive**: every entry point first reads one relaxed
//! `AtomicBool`; with `SCU_FAILPOINTS` unset and no scoped guards the
//! registry is never locked and never allocated, so the instrumented
//! hot paths stay byte-identical in behaviour and unmeasurable in
//! overhead.
//!
//! Site registry (every site compiled into the workspace):
//!
//! | site                 | location                          | shapes honoured |
//! |----------------------|-----------------------------------|-----------------|
//! | `cell-run`           | `scu_algos::cell::Cell::run`      | panic, delay, error (as panic) |
//! | `graph-build`        | `scu_algos::cell::shared_graph`   | panic, delay    |
//! | `cache-load`         | `ResultStore::get` (both backends)| io-error, delay |
//! | `cache-store`        | `ResultStore::put` (both backends)| io-error, delay |
//! | `journal-append`     | `ResultStore::journal_append` / `Journal::append` | io-error, delay |
//! | `trace-cache-load`   | `trace_bridge::StoreTraceBridge::load` (degrades to a cold recording) | io-error, delay |
//! | `trace-cache-store`  | `trace_bridge::StoreTraceBridge::store` (drops the recording) | io-error, delay |
//! | `wal-append`         | `scu_store::wal::Wal::append`     | io-error, delay |
//! | `segment-flush`      | `scu_store::lsm` memtable flush   | io-error, delay |
//! | `compact`            | `scu_store::lsm` compaction pass  | io-error, delay |
//! | `server-accept`      | `scu_server` accept loop          | io-error, disconnect, delay, stall |
//! | `server-read`        | `scu_server::http::read_request`  | io-error, disconnect, delay, stall |
//! | `server-stream-write`| `scu_server::http::ChunkedWriter` | io-error, disconnect, delay, stall |
//! | `scheduler-enqueue`  | `scu_server::Scheduler::submit`   | error, delay    |

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

use crate::error::lock_unpoisoned;

/// What an armed failpoint does when its trigger matches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Panic with the message (default: the site name).
    Panic(String),
    /// Return [`Injected`] from Result-shaped sites.
    Error(String),
    /// Sleep this long, then proceed normally.
    Delay(Duration),
    /// Return a `std::io::Error` from I/O-shaped sites.
    IoError,
    /// Sleep this long (default 60 s), then proceed — a hung peer.
    /// Unlike `delay` it is meant to outlive the socket timeout at the
    /// site, so the *deadline* machinery fires rather than the sleep
    /// elapsing.
    Stall(Duration),
    /// Return `ConnectionReset` from I/O-shaped sites — the peer
    /// vanished mid-transfer.
    Disconnect,
}

/// When an armed failpoint fires, relative to the per-site hit counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Every hit.
    Always,
    /// The Nth hit only (1-based).
    Nth(u64),
    /// The Nth hit and every later one.
    FromNth(u64),
}

impl Trigger {
    fn fires(self, hit: u64) -> bool {
        match self {
            Trigger::Always => true,
            Trigger::Nth(n) => hit == n,
            Trigger::FromNth(n) => hit >= n,
        }
    }
}

/// One armed site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spec {
    /// What to do.
    pub action: Action,
    /// When to do it.
    pub trigger: Trigger,
}

/// The error produced by `error`/`io-error` actions at Result-shaped
/// sites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Injected {
    /// The site that fired.
    pub site: String,
    /// The configured message.
    pub message: String,
}

impl std::fmt::Display for Injected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failpoint '{}': {}", self.site, self.message)
    }
}

impl std::error::Error for Injected {}

struct SiteState {
    spec: Spec,
    hits: u64,
}

/// `true` while any site is armed; the only cost paid by an unarmed
/// process.
static ACTIVE: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<HashMap<String, SiteState>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, SiteState>>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut map = HashMap::new();
        if let Ok(env) = std::env::var("SCU_FAILPOINTS") {
            match parse(&env) {
                Ok(specs) => {
                    for (site, spec) in specs {
                        map.insert(site, SiteState { spec, hits: 0 });
                    }
                }
                Err(e) => eprintln!("[scu-harness] ignoring malformed SCU_FAILPOINTS: {e}"),
            }
        }
        if !map.is_empty() {
            ACTIVE.store(true, Ordering::SeqCst);
        }
        Mutex::new(map)
    })
}

/// Parses a failpoint spec string (the `SCU_FAILPOINTS` grammar).
///
/// # Errors
///
/// Returns a description of the first malformed item.
pub fn parse(spec: &str) -> Result<Vec<(String, Spec)>, String> {
    let mut out = Vec::new();
    for item in spec.split(';').map(str::trim).filter(|s| !s.is_empty()) {
        let (site, rhs) = item
            .split_once('=')
            .ok_or_else(|| format!("'{item}': expected site=action"))?;
        let (action_part, trigger) = match rhs.rsplit_once('@') {
            Some((a, t)) => {
                let trigger = if let Some(n) = t.strip_suffix('+') {
                    Trigger::FromNth(parse_nth(n, item)?)
                } else {
                    Trigger::Nth(parse_nth(t, item)?)
                };
                (a, trigger)
            }
            None => (rhs, Trigger::Always),
        };
        let (name, arg) = match action_part.split_once('(') {
            Some((n, rest)) => {
                let arg = rest
                    .strip_suffix(')')
                    .ok_or_else(|| format!("'{item}': unclosed argument"))?;
                (n.trim(), Some(arg.to_string()))
            }
            None => (action_part.trim(), None),
        };
        let action = match name {
            "panic" => Action::Panic(arg.unwrap_or_else(|| format!("failpoint '{site}'"))),
            "error" => Action::Error(arg.unwrap_or_else(|| "injected error".to_string())),
            "delay" => {
                let ms: u64 = arg
                    .as_deref()
                    .unwrap_or("")
                    .parse()
                    .map_err(|_| format!("'{item}': delay needs milliseconds"))?;
                Action::Delay(Duration::from_millis(ms))
            }
            "io-error" => Action::IoError,
            "stall" => {
                let ms: u64 = match arg.as_deref() {
                    None => 60_000,
                    Some(text) => text
                        .parse()
                        .map_err(|_| format!("'{item}': stall needs milliseconds"))?,
                };
                Action::Stall(Duration::from_millis(ms))
            }
            "disconnect" => Action::Disconnect,
            other => return Err(format!("'{item}': unknown action '{other}'")),
        };
        out.push((site.trim().to_string(), Spec { action, trigger }));
    }
    Ok(out)
}

fn parse_nth(text: &str, item: &str) -> Result<u64, String> {
    text.parse::<u64>()
        .ok()
        .filter(|&n| n >= 1)
        .ok_or_else(|| format!("'{item}': trigger expects a positive hit number"))
}

/// Whether any failpoint is armed. The first call forces the registry
/// to parse `SCU_FAILPOINTS` (otherwise env-armed sites would never
/// raise `ACTIVE`); after that the fast path is one completed-`Once`
/// check plus one relaxed atomic load.
#[inline]
pub fn active() -> bool {
    static ENV_CHECKED: std::sync::Once = std::sync::Once::new();
    ENV_CHECKED.call_once(|| {
        let _ = registry();
    });
    ACTIVE.load(Ordering::Relaxed)
}

/// Consults the registry for `site`, advancing its hit counter.
/// Returns the action to perform if the site is armed and its trigger
/// matches this hit.
fn fire(site: &str) -> Option<Action> {
    if !active() {
        return None;
    }
    let mut map = lock_unpoisoned(registry(), "failpoint registry");
    let state = map.get_mut(site)?;
    state.hits += 1;
    state
        .spec
        .trigger
        .fires(state.hits)
        .then(|| state.spec.action.clone())
}

/// The site entry point for infallible code paths: sleeps on `delay`,
/// panics on `panic` — and on `error`/`io-error` too, since a site with
/// no `Result` channel can only surface an injected fault by panicking
/// (the harness's `catch_unwind` isolation turns it into a failed
/// cell).
#[inline]
pub fn apply(site: &str) {
    if !active() {
        return;
    }
    match fire(site) {
        None => {}
        Some(Action::Delay(d)) | Some(Action::Stall(d)) => std::thread::sleep(d),
        Some(Action::Panic(msg)) => panic!("{msg}"),
        Some(Action::Error(msg)) => panic!("failpoint '{site}': {msg}"),
        Some(Action::IoError) => panic!("failpoint '{site}': injected io error"),
        Some(Action::Disconnect) => panic!("failpoint '{site}': injected disconnect"),
    }
}

/// The site entry point for `Result`-shaped paths.
///
/// # Errors
///
/// Returns [`Injected`] when an `error` action fires.
#[inline]
pub fn check(site: &str) -> Result<(), Injected> {
    if !active() {
        return Ok(());
    }
    match fire(site) {
        None => Ok(()),
        Some(Action::Delay(d)) | Some(Action::Stall(d)) => {
            std::thread::sleep(d);
            Ok(())
        }
        Some(Action::Panic(msg)) => panic!("{msg}"),
        Some(Action::Error(msg)) => Err(Injected {
            site: site.to_string(),
            message: msg,
        }),
        Some(Action::IoError) => Err(Injected {
            site: site.to_string(),
            message: format!("injected io fault at '{site}'"),
        }),
        Some(Action::Disconnect) => Err(Injected {
            site: site.to_string(),
            message: format!("injected disconnect at '{site}'"),
        }),
    }
}

/// The site entry point for I/O paths.
///
/// # Errors
///
/// Returns an `std::io::Error` when an `io-error`, `error`, or
/// `disconnect` action fires; `disconnect` maps to
/// `ErrorKind::ConnectionReset` so callers exercise the same branch a
/// vanished peer takes.
#[inline]
pub fn io(site: &str) -> std::io::Result<()> {
    if !active() {
        return Ok(());
    }
    match fire(site) {
        None => Ok(()),
        Some(Action::Delay(d)) | Some(Action::Stall(d)) => {
            std::thread::sleep(d);
            Ok(())
        }
        Some(Action::Panic(msg)) => panic!("{msg}"),
        Some(Action::Error(msg)) => {
            Err(std::io::Error::other(format!("failpoint '{site}': {msg}")))
        }
        Some(Action::IoError) => Err(std::io::Error::other(format!(
            "failpoint '{site}': injected io fault at '{site}'"
        ))),
        Some(Action::Disconnect) => Err(std::io::Error::new(
            std::io::ErrorKind::ConnectionReset,
            format!("failpoint '{site}': injected disconnect"),
        )),
    }
}

/// Routes `scu-store`'s failpoint sites (`cache-load`, `cache-store`,
/// `journal-append`, `wal-append`, `segment-flush`, `compact`) through
/// this registry, so `SCU_FAILPOINTS` and [`scoped`] drive the storage
/// layer exactly like every other site. Idempotent; called by every
/// cache/harness constructor that touches a store.
pub fn install_store_hook() {
    scu_store::failpoints::install(io);
}

/// Arms the sites described by `spec` for the lifetime of the returned
/// guard — the programmatic equivalent of `SCU_FAILPOINTS`, used by
/// tests. Guards from different sites compose; re-arming a live site
/// replaces its spec and resets its hit counter.
///
/// # Panics
///
/// Panics on a malformed spec (tests should not silently run without
/// their faults).
pub fn scoped(spec: &str) -> ScopedFailpoints {
    let specs = parse(spec).expect("malformed failpoint spec");
    let mut map = lock_unpoisoned(registry(), "failpoint registry");
    let mut sites = Vec::new();
    for (site, spec) in specs {
        map.insert(site.clone(), SiteState { spec, hits: 0 });
        sites.push(site);
    }
    if !map.is_empty() {
        ACTIVE.store(true, Ordering::SeqCst);
    }
    ScopedFailpoints { sites }
}

/// Disarms its sites on drop; see [`scoped`].
#[must_use = "failpoints disarm when the guard drops"]
pub struct ScopedFailpoints {
    sites: Vec<String>,
}

impl Drop for ScopedFailpoints {
    fn drop(&mut self) {
        let mut map = lock_unpoisoned(registry(), "failpoint registry");
        for site in &self.sites {
            map.remove(site);
        }
        if map.is_empty() {
            ACTIVE.store(false, Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_sites_do_nothing() {
        // No guard armed for these names: all shapes are no-ops.
        apply("fp-test-unarmed");
        assert!(check("fp-test-unarmed").is_ok());
        assert!(io("fp-test-unarmed").is_ok());
    }

    #[test]
    fn parse_grammar() {
        let specs = parse("a=panic; b=error(oops)@3 ;c=delay(25)@2+;d=io-error").unwrap();
        assert_eq!(specs.len(), 4);
        assert_eq!(
            specs[0],
            (
                "a".to_string(),
                Spec {
                    action: Action::Panic("failpoint 'a'".into()),
                    trigger: Trigger::Always
                }
            )
        );
        assert_eq!(specs[1].1.action, Action::Error("oops".into()));
        assert_eq!(specs[1].1.trigger, Trigger::Nth(3));
        assert_eq!(
            specs[2].1,
            Spec {
                action: Action::Delay(Duration::from_millis(25)),
                trigger: Trigger::FromNth(2)
            }
        );
        assert_eq!(specs[3].1.action, Action::IoError);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("no-equals").is_err());
        assert!(parse("a=explode").is_err());
        assert!(parse("a=panic@0").is_err());
        assert!(parse("a=delay(ten)").is_err());
        assert!(parse("a=panic(unclosed").is_err());
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let _fp = scoped("fp-test-nth=error@2");
        assert!(check("fp-test-nth").is_ok()); // hit 1
        assert!(check("fp-test-nth").is_err()); // hit 2 fires
        assert!(check("fp-test-nth").is_ok()); // hit 3
    }

    #[test]
    fn from_nth_trigger_fires_from_then_on() {
        let _fp = scoped("fp-test-from=io-error@2+");
        assert!(io("fp-test-from").is_ok());
        assert!(io("fp-test-from").is_err());
        assert!(io("fp-test-from").is_err());
    }

    #[test]
    fn panic_action_panics_with_message() {
        let _fp = scoped("fp-test-panic=panic(kaboom)");
        let err = std::panic::catch_unwind(|| apply("fp-test-panic")).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert_eq!(msg, "kaboom");
    }

    #[test]
    fn guard_disarms_on_drop() {
        {
            let _fp = scoped("fp-test-drop=error");
            assert!(check("fp-test-drop").is_err());
        }
        assert!(check("fp-test-drop").is_ok());
    }

    #[test]
    fn stall_and_disconnect_parse() {
        let specs = parse("a=stall;b=stall(250)@2;c=disconnect").unwrap();
        assert_eq!(specs[0].1.action, Action::Stall(Duration::from_secs(60)));
        assert_eq!(
            specs[1].1,
            Spec {
                action: Action::Stall(Duration::from_millis(250)),
                trigger: Trigger::Nth(2)
            }
        );
        assert_eq!(specs[2].1.action, Action::Disconnect);
        assert!(parse("a=stall(soon)").is_err());
    }

    #[test]
    fn disconnect_maps_to_connection_reset_at_io_sites() {
        let _fp = scoped("fp-test-disc=disconnect");
        let err = io("fp-test-disc").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionReset);
        assert!(err.to_string().contains("injected disconnect"));
        // The Result-shaped entry point surfaces it as a typed error.
        let _fp2 = scoped("fp-test-disc2=disconnect");
        assert!(check("fp-test-disc2").is_err());
    }

    #[test]
    fn stall_action_sleeps_then_proceeds() {
        let _fp = scoped("fp-test-stall=stall(15)");
        let start = std::time::Instant::now();
        assert!(io("fp-test-stall").is_ok());
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn delay_action_sleeps_then_proceeds() {
        let _fp = scoped("fp-test-delay=delay(15)");
        let start = std::time::Instant::now();
        apply("fp-test-delay");
        assert!(start.elapsed() >= Duration::from_millis(15));
    }
}

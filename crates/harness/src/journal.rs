//! The crash-resume journal (`results/manifest.json`).
//!
//! A sweep's journal records every completed cell as one compact JSON
//! object per line — `{"key":…,"id":…,"value":…}` — appended and
//! flushed the moment the cell finishes. Line-oriented appends are what
//! make the file a *journal*: a SIGKILL mid-sweep loses at most the
//! line being written, and [`Journal::load`] tolerates exactly that by
//! stopping at the first malformed line and returning the intact
//! prefix.
//!
//! Resume (`--resume`) loads the journal and pre-resolves every job
//! whose full cache key (or id, for uncacheable jobs) matches a
//! journaled entry — byte-identical values, no recomputation, no
//! dependence on the result cache being enabled. Jobs not journaled
//! complete run normally and append themselves, so an interrupted sweep
//! converges over any number of resumes.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use serde_json::Value;

use crate::error::{lock_unpoisoned, HarnessError};
use crate::failpoint;

/// One completed cell, as journaled.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// The job's cache key, if it had one.
    pub key: Option<Value>,
    /// The job's human-readable id.
    pub id: String,
    /// The value the job produced.
    pub value: Value,
    /// The run's timeline digest, when the value carried one — lets a
    /// resumed sweep cross-check a re-run cell against what the
    /// interrupted sweep observed.
    pub digest: Option<u64>,
}

impl JournalEntry {
    /// The string a resume pass matches jobs against: the canonical
    /// serialisation of the cache key, or the id for uncacheable jobs.
    pub fn resume_key(key: Option<&Value>, id: &str) -> String {
        match key {
            Some(k) => format!(
                "key:{}",
                serde_json::to_string(k).expect("serialising a Value cannot fail")
            ),
            None => format!("id:{id}"),
        }
    }

    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("key".to_string(), self.key.clone().unwrap_or(Value::Null)),
            ("id".to_string(), Value::Str(self.id.clone())),
            ("value".to_string(), self.value.clone()),
        ];
        if let Some(d) = self.digest {
            fields.push(("digest".to_string(), Value::U64(d)));
        }
        Value::Object(fields)
    }

    fn from_value(v: &Value) -> Result<Self, String> {
        let key = match v.get("key") {
            None => return Err("missing 'key'".to_string()),
            Some(Value::Null) => None,
            Some(k) => Some(k.clone()),
        };
        let id = v
            .get("id")
            .and_then(Value::as_str)
            .ok_or("missing 'id'")?
            .to_string();
        let value = v.get("value").cloned().ok_or("missing 'value'")?;
        // Tolerant of journals written before digests existed.
        let digest = v.get("digest").and_then(Value::as_u64);
        Ok(JournalEntry {
            key,
            id,
            value,
            digest,
        })
    }
}

/// An append-only journal of completed cells.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<File>,
}

impl Journal {
    /// Opens `path` for appending, creating parent directories. With
    /// `truncate` any previous journal is discarded (a fresh,
    /// non-resumed sweep must not inherit stale completions).
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Io`] if the file cannot be opened.
    pub fn open(path: impl Into<PathBuf>, truncate: bool) -> Result<Self, HarnessError> {
        let path = path.into();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| HarnessError::io("create journal dir", dir, e))?;
        }
        let file = OpenOptions::new()
            .create(true)
            .append(!truncate)
            .write(true)
            .truncate(truncate)
            .open(&path)
            .map_err(|e| HarnessError::io("open journal", &path, e))?;
        Ok(Journal {
            path,
            file: Mutex::new(file),
        })
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one completed cell and flushes, so the entry survives a
    /// kill that lands any time after this call returns.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Io`] on write failure; callers degrade
    /// (the cell still counts as done, the journal is just shorter).
    pub fn append(&self, entry: &JournalEntry) -> Result<(), HarnessError> {
        failpoint::io("journal-append")
            .map_err(|e| HarnessError::io("append journal", &self.path, e))?;
        let line =
            serde_json::to_string(&entry.to_value()).expect("serialising a Value cannot fail");
        let mut file = lock_unpoisoned(&self.file, "journal file");
        writeln!(file, "{line}")
            .and_then(|()| file.flush())
            .map_err(|e| HarnessError::io("append journal", &self.path, e))
    }

    /// Loads the intact prefix of the journal at `path`. A malformed
    /// line (the tail a SIGKILL tore) ends the prefix with a warning;
    /// a missing file is an empty journal.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Io`] only if the file exists but cannot
    /// be read.
    pub fn load(path: impl AsRef<Path>) -> Result<Vec<JournalEntry>, HarnessError> {
        let path = path.as_ref();
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(HarnessError::io("read journal", path, e)),
        };
        let mut entries = Vec::new();
        for (ln, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let parsed = serde_json::from_str::<Value>(line)
                .map_err(|e| e.to_string())
                .and_then(|v| JournalEntry::from_value(&v));
            match parsed {
                Ok(entry) => entries.push(entry),
                Err(reason) => {
                    let err = HarnessError::CorruptJournal {
                        path: path.to_path_buf(),
                        line: ln + 1,
                        reason,
                    };
                    eprintln!(
                        "[scu-harness] {err}; resuming from the {} intact entries",
                        entries.len()
                    );
                    break;
                }
            }
        }
        Ok(entries)
    }

    /// Loads the journal as a resume map: [`JournalEntry::resume_key`]
    /// → value. Later entries win (a cell journaled twice across
    /// resumes is the same value anyway).
    pub fn load_resume_map(path: impl AsRef<Path>) -> Result<HashMap<String, Value>, HarnessError> {
        let entries = Journal::load(path)?;
        let mut map = HashMap::with_capacity(entries.len());
        for e in entries {
            map.insert(JournalEntry::resume_key(e.key.as_ref(), &e.id), e.value);
        }
        Ok(map)
    }

    /// Loads the journaled timeline digests keyed by job id. A resumed
    /// sweep uses this to cross-check cells it *re-runs* (because the
    /// model version or configuration changed their cache key) against
    /// what the interrupted sweep observed for the same id.
    pub fn load_digest_map(path: impl AsRef<Path>) -> Result<HashMap<String, u64>, HarnessError> {
        let entries = Journal::load(path)?;
        let mut map = HashMap::new();
        for e in entries {
            if let Some(d) = e.digest {
                map.insert(e.id, d);
            }
        }
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("scu-journal-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.join("manifest.json")
    }

    fn entry(n: u64) -> JournalEntry {
        JournalEntry {
            key: Some(Value::Object(vec![("cell".into(), Value::U64(n))])),
            id: format!("cell-{n}"),
            value: Value::U64(n * 10),
            digest: Some(n * 1000),
        }
    }

    #[test]
    fn append_then_load_round_trips() {
        let path = scratch("round-trip");
        let j = Journal::open(&path, true).unwrap();
        j.append(&entry(1)).unwrap();
        j.append(&entry(2)).unwrap();
        let loaded = Journal::load(&path).unwrap();
        assert_eq!(loaded, vec![entry(1), entry(2)]);
        let map = Journal::load_resume_map(&path).unwrap();
        assert_eq!(
            map.get(&JournalEntry::resume_key(entry(2).key.as_ref(), "cell-2")),
            Some(&Value::U64(20))
        );
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn truncated_tail_yields_intact_prefix() {
        let path = scratch("torn");
        let j = Journal::open(&path, true).unwrap();
        j.append(&entry(1)).unwrap();
        j.append(&entry(2)).unwrap();
        // Tear the final line mid-write, as a SIGKILL would.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 9]).unwrap();
        let loaded = Journal::load(&path).unwrap();
        assert_eq!(loaded, vec![entry(1)]);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn reopen_without_truncate_appends() {
        let path = scratch("reopen");
        Journal::open(&path, true)
            .unwrap()
            .append(&entry(1))
            .unwrap();
        Journal::open(&path, false)
            .unwrap()
            .append(&entry(2))
            .unwrap();
        assert_eq!(Journal::load(&path).unwrap().len(), 2);
        Journal::open(&path, true).unwrap();
        assert!(
            Journal::load(&path).unwrap().is_empty(),
            "truncate discards"
        );
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn digests_round_trip_and_pre_digest_journals_load() {
        let path = scratch("digest");
        let j = Journal::open(&path, true).unwrap();
        j.append(&entry(3)).unwrap();
        // A line from before digests existed parses with digest: None.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            writeln!(f, r#"{{"key":null,"id":"old","value":7}}"#).unwrap();
        }
        let loaded = Journal::load(&path).unwrap();
        assert_eq!(loaded[0].digest, Some(3000));
        assert_eq!(loaded[1].digest, None);
        let digests = Journal::load_digest_map(&path).unwrap();
        assert_eq!(digests.get("cell-3"), Some(&3000));
        assert!(!digests.contains_key("old"));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn missing_journal_is_empty() {
        assert!(Journal::load("/nonexistent/scu/manifest.json")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn uncacheable_jobs_resume_by_id() {
        let e = JournalEntry {
            key: None,
            id: "plain".into(),
            value: Value::Bool(true),
            digest: None,
        };
        let path = scratch("by-id");
        let j = Journal::open(&path, true).unwrap();
        j.append(&e).unwrap();
        let map = Journal::load_resume_map(&path).unwrap();
        assert_eq!(map.get("id:plain"), Some(&Value::Bool(true)));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn injected_io_error_surfaces_typed() {
        let _fp = crate::failpoint::scoped("journal-append=io-error");
        let path = scratch("io-fault");
        let j = Journal::open(&path, true).unwrap();
        let err = j.append(&entry(1)).unwrap_err();
        assert!(matches!(
            err,
            HarnessError::Io {
                op: "append journal",
                ..
            }
        ));
        assert!(Journal::load(&path).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}

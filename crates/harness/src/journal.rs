//! The crash-resume journal.
//!
//! A sweep's journal records every completed cell the moment it
//! finishes, so a SIGKILL loses at most the entry being written and a
//! resumed sweep (`--resume`) serves journaled cells byte-identically
//! with no recomputation. Two shapes exist behind one [`Journal`]:
//!
//! - **File** (`results/manifest.json`): one compact JSON object per
//!   line — `{"key":…,"id":…,"value":…}` — appended and flushed per
//!   cell. [`Journal::load`] tolerates a torn tail by stopping at the
//!   first malformed line and returning the intact prefix.
//! - **Store**: when the cache directory holds an LSM store, the
//!   store's write-ahead log *is* the journal — one durability domain
//!   for cache and resume state instead of two files racing a kill.
//!   Appends become CRC-framed WAL records
//!   (`ResultStore::journal_append`); resume state comes from
//!   [`crate::Harness`] asking the store, not from re-parsing a file.
//!
//! The entry type is [`scu_store::JournalRecord`], re-exported under
//! its historical name so executor code is oblivious to the backend.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use serde_json::Value;

use crate::error::{lock_unpoisoned, HarnessError};
use crate::failpoint;

/// One completed cell, as journaled. (The definition lives in
/// `scu-store`, whose WAL records carry the same fields; the alias
/// keeps the harness's historical API.)
pub use scu_store::JournalRecord as JournalEntry;

use scu_store::ResultStore;

/// An append-only journal of completed cells.
#[derive(Debug)]
pub enum Journal {
    /// The line-JSON file journal (legacy layout, and always the shape
    /// behind an explicit `--manifest` path).
    File {
        /// Where the lines go.
        path: PathBuf,
        /// The open handle, flushed per append.
        file: Mutex<File>,
    },
    /// The store's WAL is the journal.
    Store(Arc<dyn ResultStore>),
}

impl Journal {
    /// Opens `path` for appending, creating parent directories. With
    /// `truncate` any previous journal is discarded (a fresh,
    /// non-resumed sweep must not inherit stale completions).
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Io`] if the file cannot be opened.
    pub fn open(path: impl Into<PathBuf>, truncate: bool) -> Result<Self, HarnessError> {
        let path = path.into();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| HarnessError::io("create journal dir", dir, e))?;
        }
        let file = OpenOptions::new()
            .create(true)
            .append(!truncate)
            .write(true)
            .truncate(truncate)
            .open(&path)
            .map_err(|e| HarnessError::io("open journal", &path, e))?;
        Ok(Journal::File {
            path,
            file: Mutex::new(file),
        })
    }

    /// Wraps a store whose WAL will receive the journal appends. The
    /// caller is responsible for having called
    /// `ResultStore::begin_sweep` to mark the sweep boundary.
    pub fn from_store(backend: Arc<dyn ResultStore>) -> Self {
        Journal::Store(backend)
    }

    /// The journal's path: the line-JSON file, or the store directory
    /// whose WAL absorbs the entries.
    pub fn path(&self) -> &Path {
        match self {
            Journal::File { path, .. } => path,
            Journal::Store(backend) => backend.dir(),
        }
    }

    /// Appends one completed cell durably, so the entry survives a
    /// kill that lands any time after this call returns. (The store
    /// shape fires the `journal-append` failpoint inside the backend;
    /// the file shape fires it here.)
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Io`] on write failure; callers degrade
    /// (the cell still counts as done, the journal is just shorter).
    pub fn append(&self, entry: &JournalEntry) -> Result<(), HarnessError> {
        match self {
            Journal::File { path, file } => {
                failpoint::io("journal-append")
                    .map_err(|e| HarnessError::io("append journal", path, e))?;
                let line = serde_json::to_string(&entry.to_value())
                    .expect("serialising a Value cannot fail");
                let mut file = lock_unpoisoned(file, "journal file");
                writeln!(file, "{line}")
                    .and_then(|()| file.flush())
                    .map_err(|e| HarnessError::io("append journal", path, e))
            }
            Journal::Store(backend) => backend
                .journal_append(entry)
                .map_err(|e| HarnessError::io("append journal", backend.dir(), e)),
        }
    }

    /// Loads the intact prefix of the *file* journal at `path`. A
    /// malformed line (the tail a SIGKILL tore) ends the prefix with a
    /// warning naming the line number, its byte offset, and how many
    /// trailing lines were discarded; a missing file is an empty
    /// journal.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Io`] only if the file exists but cannot
    /// be read.
    pub fn load(path: impl AsRef<Path>) -> Result<Vec<JournalEntry>, HarnessError> {
        let path = path.as_ref();
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(HarnessError::io("read journal", path, e)),
        };
        let mut entries = Vec::new();
        let mut offset = 0usize;
        let mut lines = text.lines().enumerate();
        for (ln, line) in &mut lines {
            let line_offset = offset;
            offset += line.len() + 1;
            if line.trim().is_empty() {
                continue;
            }
            let parsed = serde_json::from_str::<Value>(line)
                .map_err(|e| e.to_string())
                .and_then(|v| JournalEntry::from_value(&v));
            match parsed {
                Ok(entry) => entries.push(entry),
                Err(reason) => {
                    let discarded = 1 + lines.filter(|(_, rest)| !rest.trim().is_empty()).count();
                    let err = HarnessError::CorruptJournal {
                        path: path.to_path_buf(),
                        line: ln + 1,
                        reason,
                    };
                    eprintln!(
                        "[scu-harness] {err} (byte offset {line_offset}); discarding {discarded} \
                         trailing line(s), resuming from the {} intact entries",
                        entries.len()
                    );
                    break;
                }
            }
        }
        Ok(entries)
    }

    /// Loads the file journal as a resume map:
    /// [`JournalEntry::resume_key`] → value. Later entries win (a cell
    /// journaled twice across resumes is the same value anyway).
    pub fn load_resume_map(path: impl AsRef<Path>) -> Result<HashMap<String, Value>, HarnessError> {
        let entries = Journal::load(path)?;
        let mut map = HashMap::with_capacity(entries.len());
        for e in entries {
            map.insert(JournalEntry::resume_key(e.key.as_ref(), &e.id), e.value);
        }
        Ok(map)
    }

    /// Loads the journaled timeline digests keyed by job id. A resumed
    /// sweep uses this to cross-check cells it *re-runs* (because the
    /// model version or configuration changed their cache key) against
    /// what the interrupted sweep observed for the same id.
    pub fn load_digest_map(path: impl AsRef<Path>) -> Result<HashMap<String, u64>, HarnessError> {
        let entries = Journal::load(path)?;
        let mut map = HashMap::new();
        for e in entries {
            if let Some(d) = e.digest {
                map.insert(e.id, d);
            }
        }
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("scu-journal-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.join("manifest.json")
    }

    fn entry(n: u64) -> JournalEntry {
        JournalEntry {
            key: Some(Value::Object(vec![("cell".into(), Value::U64(n))])),
            id: format!("cell-{n}"),
            value: Value::U64(n * 10),
            digest: Some(n * 1000),
        }
    }

    #[test]
    fn append_then_load_round_trips() {
        let path = scratch("round-trip");
        let j = Journal::open(&path, true).unwrap();
        j.append(&entry(1)).unwrap();
        j.append(&entry(2)).unwrap();
        let loaded = Journal::load(&path).unwrap();
        assert_eq!(loaded, vec![entry(1), entry(2)]);
        let map = Journal::load_resume_map(&path).unwrap();
        assert_eq!(
            map.get(&JournalEntry::resume_key(entry(2).key.as_ref(), "cell-2")),
            Some(&Value::U64(20))
        );
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn truncated_tail_yields_intact_prefix() {
        let path = scratch("torn");
        let j = Journal::open(&path, true).unwrap();
        j.append(&entry(1)).unwrap();
        j.append(&entry(2)).unwrap();
        // Tear the final line mid-write, as a SIGKILL would.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 9]).unwrap();
        let loaded = Journal::load(&path).unwrap();
        assert_eq!(loaded, vec![entry(1)]);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn garbage_middle_discards_everything_after_it() {
        // The warning counts every discarded trailing line, not just
        // the malformed one — entries past the damage are unreachable.
        let path = scratch("garbage-middle");
        let j = Journal::open(&path, true).unwrap();
        j.append(&entry(1)).unwrap();
        drop(j);
        {
            // Hand-write a malformed line followed by two well-formed
            // ones: the parse stops at the damage, so the trailing
            // entries are discarded (and counted in the warning).
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            writeln!(f, "not json at all").unwrap();
        }
        let j = Journal::open(&path, false).unwrap();
        j.append(&entry(2)).unwrap();
        j.append(&entry(3)).unwrap();
        assert_eq!(Journal::load(&path).unwrap(), vec![entry(1)]);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn store_backed_journal_appends_into_the_wal() {
        let dir = std::env::temp_dir().join(format!("scu-journal-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let backend: Arc<dyn ResultStore> = Arc::new(scu_store::LsmStore::open(&dir).unwrap());
        backend.begin_sweep(false).unwrap();
        let j = Journal::from_store(Arc::clone(&backend));
        assert_eq!(j.path(), dir.as_path());
        j.append(&entry(1)).unwrap();
        j.append(&entry(2)).unwrap();
        let state = backend.resume_state().unwrap();
        assert_eq!(state.values.len(), 2);
        assert_eq!(
            state
                .values
                .get(&JournalEntry::resume_key(entry(2).key.as_ref(), "cell-2")),
            Some(&Value::U64(20))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_without_truncate_appends() {
        let path = scratch("reopen");
        Journal::open(&path, true)
            .unwrap()
            .append(&entry(1))
            .unwrap();
        Journal::open(&path, false)
            .unwrap()
            .append(&entry(2))
            .unwrap();
        assert_eq!(Journal::load(&path).unwrap().len(), 2);
        Journal::open(&path, true).unwrap();
        assert!(
            Journal::load(&path).unwrap().is_empty(),
            "truncate discards"
        );
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn digests_round_trip_and_pre_digest_journals_load() {
        let path = scratch("digest");
        let j = Journal::open(&path, true).unwrap();
        j.append(&entry(3)).unwrap();
        // A line from before digests existed parses with digest: None.
        {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            writeln!(f, r#"{{"key":null,"id":"old","value":7}}"#).unwrap();
        }
        let loaded = Journal::load(&path).unwrap();
        assert_eq!(loaded[0].digest, Some(3000));
        assert_eq!(loaded[1].digest, None);
        let digests = Journal::load_digest_map(&path).unwrap();
        assert_eq!(digests.get("cell-3"), Some(&3000));
        assert!(!digests.contains_key("old"));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn missing_journal_is_empty() {
        assert!(Journal::load("/nonexistent/scu/manifest.json")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn uncacheable_jobs_resume_by_id() {
        let e = JournalEntry {
            key: None,
            id: "plain".into(),
            value: Value::Bool(true),
            digest: None,
        };
        let path = scratch("by-id");
        let j = Journal::open(&path, true).unwrap();
        j.append(&e).unwrap();
        let map = Journal::load_resume_map(&path).unwrap();
        assert_eq!(map.get("id:plain"), Some(&Value::Bool(true)));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn injected_io_error_surfaces_typed() {
        let _fp = crate::failpoint::scoped("journal-append=io-error");
        let path = scratch("io-fault");
        let j = Journal::open(&path, true).unwrap();
        let err = j.append(&entry(1)).unwrap_err();
        assert!(matches!(
            err,
            HarnessError::Io {
                op: "append journal",
                ..
            }
        ));
        assert!(Journal::load(&path).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}

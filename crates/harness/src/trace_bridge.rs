//! Bridges the GPU engine's functional-trace cache onto the result
//! store.
//!
//! `scu-gpu` knows nothing about persistence: its
//! [`scu_gpu::trace_cache`] talks to an abstract
//! [`scu_gpu::trace_cache::TraceStore`]. This module implements that
//! trait over the harness's [`ResultStore`](crate::ResultStore) seam,
//! so recorded traces ride the same WAL / segment / quarantine /
//! compaction machinery as cached results — one store directory, one
//! crash story, one corruption story.
//!
//! Failure posture matches the result cache: every store-side problem
//! degrades to "run cold". A load error is a miss, a store error drops
//! the recording, and store-level corruption surfaces as
//! [`TraceLoad::Corrupt`] so the engine re-records (and its fresh
//! store supersedes the quarantined bytes).
//!
//! The `trace-cache-load` / `trace-cache-store` failpoints fire here —
//! at the seam, not inside the store — so fault-injection runs exercise
//! exactly the degradation paths a real IO failure would take.

use std::sync::Arc;

use scu_gpu::trace_cache::{self, TraceLoad};

use crate::failpoint;
use crate::ResultStore;

/// [`scu_gpu::trace_cache::TraceStore`] over an open result store.
#[derive(Debug)]
pub struct StoreTraceBridge {
    backend: Arc<dyn ResultStore>,
}

impl StoreTraceBridge {
    /// Wraps `backend`; cheap, no IO.
    pub fn new(backend: Arc<dyn ResultStore>) -> Self {
        StoreTraceBridge { backend }
    }
}

impl trace_cache::TraceStore for StoreTraceBridge {
    fn load(&self, key: &str) -> TraceLoad {
        if failpoint::io("trace-cache-load").is_err() {
            // An unreadable trace is a miss: the engine records cold.
            return TraceLoad::Missing;
        }
        match self.backend.get_trace(key) {
            scu_store::TraceGet::Hit(bytes) => TraceLoad::Data(bytes),
            scu_store::TraceGet::Miss => TraceLoad::Missing,
            scu_store::TraceGet::Corrupt => TraceLoad::Corrupt,
        }
    }

    fn store(&self, key: &str, bytes: &[u8]) -> bool {
        if failpoint::io("trace-cache-store").is_err() {
            return false;
        }
        match self.backend.put_trace(key, bytes) {
            Ok(()) => true,
            Err(e) => {
                eprintln!("[scu-harness] trace store failed for {key}: {e}; running uncached");
                false
            }
        }
    }
}

/// Installs (or clears) the process-global trace cache according to
/// the harness configuration: `enabled` reflects `--no-trace-cache`,
/// and the bridge is only mounted when a result store is open —
/// traces have nowhere to live in uncached runs.
pub fn install(backend: Option<Arc<dyn ResultStore>>, enabled: bool) {
    trace_cache::set_enabled(enabled);
    match backend {
        Some(backend) if enabled => {
            trace_cache::install(Some(Arc::new(StoreTraceBridge::new(backend))));
        }
        _ => trace_cache::install(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scu_gpu::trace_cache::TraceStore;
    use scu_store::LsmStore;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("scu-trace-bridge-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn bridge_round_trips_bytes_through_the_store() {
        let dir = scratch("round");
        let store: Arc<dyn ResultStore> = Arc::new(LsmStore::open(&dir).unwrap());
        let bridge = StoreTraceBridge::new(Arc::clone(&store));
        assert!(matches!(bridge.load("k"), TraceLoad::Missing));
        assert!(bridge.store("k", &[1, 2, 3, 0xff]));
        assert!(matches!(bridge.load("k"), TraceLoad::Data(b) if b == vec![1, 2, 3, 0xff]));
        assert_eq!(store.stats().trace_stores, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_io_failures_degrade_to_cold_paths() {
        let dir = scratch("inject");
        let store: Arc<dyn ResultStore> = Arc::new(LsmStore::open(&dir).unwrap());
        let bridge = StoreTraceBridge::new(Arc::clone(&store));
        {
            let _g = failpoint::scoped("trace-cache-store=io-error");
            assert!(!bridge.store("k", &[9]), "store failure drops the trace");
        }
        assert!(bridge.store("k", &[9]), "and clears with the guard");
        {
            let _g = failpoint::scoped("trace-cache-load=io-error");
            assert!(
                matches!(bridge.load("k"), TraceLoad::Missing),
                "load failure is a miss, never corrupt data"
            );
        }
        assert!(matches!(bridge.load("k"), TraceLoad::Data(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

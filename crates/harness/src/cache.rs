//! Content-addressed on-disk result cache.
//!
//! Each entry is a JSON file named by the stable digest of the
//! canonical (compact) serialisation of its key — the cell
//! configuration plus a model-version string the caller bakes into the
//! key. A code change that alters results must bump the model version;
//! every digest then changes and the old entries become dead weight
//! rather than stale answers.
//!
//! Robustness properties:
//!
//! - **Corruption-proof reads**: the stored envelope carries the full
//!   key *and* a digest of the value's canonical bytes; a digest
//!   collision, truncated file, flipped byte, or hand-edited entry is
//!   detected, **quarantined** (moved to `<dir>/quarantine/` with a
//!   logged reason — never silently ignored), and reads as a miss. A
//!   mutated blob is either rejected-and-quarantined or byte-identical
//!   to what was stored; there is no third outcome.
//! - **Atomic writes**: entries are written to a temp file and
//!   renamed into place, so a crashed or concurrent writer cannot
//!   leave a half-written entry behind. Concurrent writers of the
//!   same key race benignly (same bytes either way).
//! - **Thread safety**: all methods take `&self`; hit/miss/store/
//!   quarantine counters are atomics.
//! - **Fault injection**: the IO paths carry the `cache-load` and
//!   `cache-store` failpoint sites; an injected IO error exercises the
//!   degraded paths (miss, store-skipped) without touching the disk.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use serde_json::Value;

use crate::error::HarnessError;
use crate::failpoint;
use crate::hash::stable_digest;

/// Counters of one cache's activity within this process.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ResultCacheStats {
    /// Successful loads.
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Entries written.
    pub stores: u64,
    /// Corrupt entries moved to the quarantine directory.
    pub quarantined: u64,
}

/// A directory of content-addressed JSON results.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    quarantined: AtomicU64,
}

/// What a raw load found.
enum Loaded {
    Hit(Value),
    Miss,
    Corrupt(String),
}

impl ResultCache {
    /// Opens (creating if needed) a cache directory.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Io`] if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, HarnessError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| HarnessError::io("create cache dir", &dir, e))?;
        Ok(ResultCache {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Where corrupt entries are moved.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join("quarantine")
    }

    /// The digest addressing `key`.
    pub fn digest_of(key: &Value) -> String {
        let canonical = serde_json::to_string(key).expect("serialising a Value cannot fail");
        stable_digest(canonical.as_bytes())
    }

    fn path_of(&self, key: &Value) -> PathBuf {
        self.dir.join(format!("{}.json", Self::digest_of(key)))
    }

    /// Loads the value stored for `key`, if present and intact. A
    /// corrupt entry is quarantined and reads as a miss.
    pub fn load(&self, key: &Value) -> Option<Value> {
        let path = self.path_of(key);
        match self.try_load(&path, key) {
            Loaded::Hit(value) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            Loaded::Miss => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Loaded::Corrupt(reason) => {
                self.quarantine(&path, &reason);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn try_load(&self, path: &Path, key: &Value) -> Loaded {
        if let Err(e) = failpoint::io("cache-load") {
            return Loaded::Corrupt(format!("read failed: {e}"));
        }
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Loaded::Miss,
            Err(e) => return Loaded::Corrupt(format!("read failed: {e}")),
        };
        let envelope: Value = match serde_json::from_str(&text) {
            Ok(v) => v,
            Err(e) => return Loaded::Corrupt(format!("not valid JSON ({e})")),
        };
        // Verify the full key: a digest collision, truncation-then-
        // rewrite, or hand-edited file must not read as a hit.
        if envelope.get("key") != Some(key) {
            return Loaded::Corrupt("stored key does not match the requested key".to_string());
        }
        let value = match envelope.get("value") {
            Some(v) => v.clone(),
            None => return Loaded::Corrupt("missing 'value'".to_string()),
        };
        // Verify the value's own digest: a byte flip inside the value
        // would keep the envelope parseable and the key intact, so the
        // key check alone cannot catch it.
        let expect = Self::value_check(&value);
        match envelope.get("check").and_then(Value::as_str) {
            Some(check) if check == expect => Loaded::Hit(value),
            Some(_) => Loaded::Corrupt("value digest mismatch".to_string()),
            None => Loaded::Corrupt("missing value digest".to_string()),
        }
    }

    /// Digest of the value's canonical bytes, stored alongside it.
    fn value_check(value: &Value) -> String {
        let canonical = serde_json::to_string(value).expect("serialising a Value cannot fail");
        stable_digest(canonical.as_bytes())
    }

    /// Moves a corrupt entry aside, keeping it for post-mortem instead
    /// of letting the next store silently paper over it.
    fn quarantine(&self, path: &Path, reason: &str) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        let qdir = self.quarantine_dir();
        let dest = qdir.join(path.file_name().unwrap_or_default());
        let moved = std::fs::create_dir_all(&qdir).and_then(|()| std::fs::rename(path, &dest));
        match moved {
            Ok(()) => eprintln!(
                "[scu-harness] quarantined corrupt cache entry {} -> {} ({reason})",
                path.display(),
                dest.display()
            ),
            Err(e) => eprintln!(
                "[scu-harness] corrupt cache entry {} ({reason}); quarantine failed: {e}",
                path.display()
            ),
        }
    }

    /// Stores `value` under `key`, atomically.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Io`] on write failure; callers treat a
    /// failed store as degraded caching, not a failed cell.
    pub fn store(&self, key: &Value, value: &Value) -> Result<(), HarnessError> {
        let final_path = self.path_of(key);
        failpoint::io("cache-store")
            .map_err(|e| HarnessError::io("store cache entry", &final_path, e))?;
        let envelope = Value::Object(vec![
            ("key".to_string(), key.clone()),
            ("value".to_string(), value.clone()),
            ("check".to_string(), Value::Str(Self::value_check(value))),
        ]);
        let text = serde_json::to_string(&envelope).expect("serialising a Value cannot fail");
        let tmp_path = final_path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp_path, text)
            .map_err(|e| HarnessError::io("store cache entry", &tmp_path, e))?;
        std::fs::rename(&tmp_path, &final_path)
            .map_err(|e| HarnessError::io("store cache entry", &final_path, e))?;
        self.stores.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// This process's hit/miss/store/quarantine counts so far.
    pub fn stats(&self) -> ResultCacheStats {
        ResultCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "scu-harness-cache-test-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn key(n: u64) -> Value {
        Value::Object(vec![("cell".into(), Value::U64(n))])
    }

    #[test]
    fn round_trips_and_counts() {
        let dir = scratch_dir("round-trip");
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.load(&key(1)), None);
        cache.store(&key(1), &Value::Str("result".into())).unwrap();
        assert_eq!(cache.load(&key(1)), Some(Value::Str("result".into())));
        assert_eq!(
            cache.stats(),
            ResultCacheStats {
                hits: 1,
                misses: 1,
                stores: 1,
                quarantined: 0
            }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn survives_reopen() {
        let dir = scratch_dir("reopen");
        ResultCache::open(&dir)
            .unwrap()
            .store(&key(7), &Value::U64(42))
            .unwrap();
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.load(&key(7)), Some(Value::U64(42)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_mismatch_is_quarantined() {
        let dir = scratch_dir("mismatch");
        let cache = ResultCache::open(&dir).unwrap();
        cache.store(&key(1), &Value::U64(1)).unwrap();
        // Corrupt the envelope by rewriting it under the same digest
        // with a different key.
        let path = cache.path_of(&key(1));
        std::fs::write(&path, r#"{"key":{"cell":999},"value":123}"#).unwrap();
        assert_eq!(cache.load(&key(1)), None);
        assert_eq!(cache.stats().quarantined, 1);
        assert!(!path.exists(), "corrupt entry moved out of the cache");
        assert!(
            cache
                .quarantine_dir()
                .join(path.file_name().unwrap())
                .exists(),
            "corrupt entry kept for post-mortem"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entry_is_quarantined_and_reads_as_miss() {
        let dir = scratch_dir("truncated");
        let cache = ResultCache::open(&dir).unwrap();
        cache.store(&key(2), &Value::U64(2)).unwrap();
        let path = cache.path_of(&key(2));
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert_eq!(cache.load(&key(2)), None);
        assert_eq!(cache.stats().quarantined, 1);
        assert!(!path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn value_byte_flip_is_quarantined_not_served() {
        let dir = scratch_dir("byte-flip");
        let cache = ResultCache::open(&dir).unwrap();
        cache.store(&key(3), &Value::U64(31337)).unwrap();
        let path = cache.path_of(&key(3));
        let text = std::fs::read_to_string(&path).unwrap();
        // Flip one digit inside the value: still valid JSON, key still
        // matches — only the value digest can catch this.
        let flipped = text.replacen("31337", "31338", 1);
        assert_ne!(text, flipped);
        std::fs::write(&path, flipped).unwrap();
        assert_eq!(cache.load(&key(3)), None);
        assert_eq!(cache.stats().quarantined, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_value_digest_is_rejected() {
        // Entries written by the pre-digest format must not be served.
        let dir = scratch_dir("old-format");
        let cache = ResultCache::open(&dir).unwrap();
        let path = cache.path_of(&key(4));
        std::fs::write(&path, r#"{"key":{"cell":4},"value":99}"#).unwrap();
        assert_eq!(cache.load(&key(4)), None);
        assert_eq!(cache.stats().quarantined, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_load_fault_degrades_to_miss() {
        let dir = scratch_dir("fp-load");
        let cache = ResultCache::open(&dir).unwrap();
        cache.store(&key(5), &Value::U64(5)).unwrap();
        {
            let _fp = crate::failpoint::scoped("cache-load=io-error");
            assert_eq!(cache.load(&key(5)), None, "injected IO error is a miss");
        }
        // The entry itself was untouched by the injected fault, but the
        // load path counted and attempted quarantine; a real hit works
        // again once the fault clears if the file survived the move.
        assert!(cache.stats().misses >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_store_fault_is_typed_and_skips_write() {
        let dir = scratch_dir("fp-store");
        let cache = ResultCache::open(&dir).unwrap();
        let _fp = crate::failpoint::scoped("cache-store=io-error");
        let err = cache.store(&key(6), &Value::U64(6)).unwrap_err();
        assert!(matches!(
            err,
            HarnessError::Io {
                op: "store cache entry",
                ..
            }
        ));
        assert_eq!(cache.stats().stores, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn digests_are_canonical_per_key() {
        assert_eq!(
            ResultCache::digest_of(&key(1)),
            ResultCache::digest_of(&key(1))
        );
        assert_ne!(
            ResultCache::digest_of(&key(1)),
            ResultCache::digest_of(&key(2))
        );
    }
}

//! Content-addressed on-disk result cache.
//!
//! Each entry is a JSON file named by the stable digest of the
//! canonical (compact) serialisation of its key — the cell
//! configuration plus a model-version string the caller bakes into the
//! key. A code change that alters results must bump the model version;
//! every digest then changes and the old entries become dead weight
//! rather than stale answers.
//!
//! Robustness properties:
//!
//! - **Collision-proof reads**: the stored envelope carries the full
//!   key; a digest collision or truncated file reads back as a miss,
//!   never as a wrong value.
//! - **Atomic writes**: entries are written to a temp file and
//!   renamed into place, so a crashed or concurrent writer cannot
//!   leave a half-written entry behind. Concurrent writers of the
//!   same key race benignly (same bytes either way).
//! - **Thread safety**: all methods take `&self`; hit/miss/store
//!   counters are atomics.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use serde_json::Value;

use crate::hash::stable_digest;

/// Counters of one cache's activity within this process.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Successful loads.
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Entries written.
    pub stores: u64,
}

/// A directory of content-addressed JSON results.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
}

impl ResultCache {
    /// Opens (creating if needed) a cache directory.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ResultCache {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The digest addressing `key`.
    pub fn digest_of(key: &Value) -> String {
        let canonical = serde_json::to_string(key).expect("serialising a Value cannot fail");
        stable_digest(canonical.as_bytes())
    }

    fn path_of(&self, key: &Value) -> PathBuf {
        self.dir.join(format!("{}.json", Self::digest_of(key)))
    }

    /// Loads the value stored for `key`, if present and intact.
    pub fn load(&self, key: &Value) -> Option<Value> {
        let loaded = self.try_load(key);
        match loaded {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        loaded
    }

    fn try_load(&self, key: &Value) -> Option<Value> {
        let text = std::fs::read_to_string(self.path_of(key)).ok()?;
        let envelope: Value = serde_json::from_str(&text).ok()?;
        // Verify the full key: a digest collision, truncation-then-
        // rewrite, or hand-edited file must read as a miss.
        if envelope.get("key") != Some(key) {
            return None;
        }
        envelope.get("value").cloned()
    }

    /// Stores `value` under `key`, atomically.
    pub fn store(&self, key: &Value, value: &Value) -> std::io::Result<()> {
        let envelope = Value::Object(vec![
            ("key".to_string(), key.clone()),
            ("value".to_string(), value.clone()),
        ]);
        let text = serde_json::to_string(&envelope).expect("serialising a Value cannot fail");
        let final_path = self.path_of(key);
        let tmp_path = final_path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp_path, text)?;
        std::fs::rename(&tmp_path, &final_path)?;
        self.stores.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// This process's hit/miss/store counts so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "scu-harness-cache-test-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn key(n: u64) -> Value {
        Value::Object(vec![("cell".into(), Value::U64(n))])
    }

    #[test]
    fn round_trips_and_counts() {
        let dir = scratch_dir("round-trip");
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.load(&key(1)), None);
        cache.store(&key(1), &Value::Str("result".into())).unwrap();
        assert_eq!(cache.load(&key(1)), Some(Value::Str("result".into())));
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                stores: 1
            }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn survives_reopen() {
        let dir = scratch_dir("reopen");
        ResultCache::open(&dir)
            .unwrap()
            .store(&key(7), &Value::U64(42))
            .unwrap();
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.load(&key(7)), Some(Value::U64(42)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_mismatch_reads_as_miss() {
        let dir = scratch_dir("mismatch");
        let cache = ResultCache::open(&dir).unwrap();
        cache.store(&key(1), &Value::U64(1)).unwrap();
        // Corrupt the envelope by rewriting it under the same digest
        // with a different key.
        let path = cache.path_of(&key(1));
        std::fs::write(&path, r#"{"key":{"cell":999},"value":123}"#).unwrap();
        assert_eq!(cache.load(&key(1)), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entry_reads_as_miss() {
        let dir = scratch_dir("truncated");
        let cache = ResultCache::open(&dir).unwrap();
        cache.store(&key(2), &Value::U64(2)).unwrap();
        let path = cache.path_of(&key(2));
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert_eq!(cache.load(&key(2)), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn digests_are_canonical_per_key() {
        assert_eq!(
            ResultCache::digest_of(&key(1)),
            ResultCache::digest_of(&key(1))
        );
        assert_ne!(
            ResultCache::digest_of(&key(1)),
            ResultCache::digest_of(&key(2))
        );
    }
}

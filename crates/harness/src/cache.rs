//! Content-addressed result cache — the harness-side front door to
//! [`scu_store::ResultStore`].
//!
//! Historically this module *was* the storage: one JSON blob per entry
//! named by the stable digest of the key's canonical serialisation.
//! That layout now lives in `scu_store::LegacyStore`; the default for
//! new directories is `scu_store::LsmStore` (WAL + mmap segments), and
//! [`ResultCache::open`] auto-detects which one a directory holds, so
//! existing result trees keep working unconverted.
//!
//! The guarantees are the trait's, unchanged from the blob era:
//!
//! - **Corruption-proof reads**: a truncated, flipped, or hand-edited
//!   entry is detected (key check + value digest in the legacy layout;
//!   CRC-framed records in the LSM layout), **quarantined** into
//!   `<dir>/quarantine/` (bounded — oldest evicted beyond a cap) and
//!   reads as a miss. Never a third outcome.
//! - **Atomic writes**: temp-file rename (legacy) or WAL append + an
//!   atomic manifest swap (LSM).
//! - **Thread safety**: all methods take `&self`; one cache may be
//!   shared across worker threads and batches.
//! - **Fault injection**: the `cache-load` and `cache-store` failpoint
//!   sites fire inside whichever backend is active.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use serde_json::Value;

use crate::error::HarnessError;
use crate::failpoint;

pub use scu_store::{GetResult, ResultStore, StoreStats};

/// Counters of one cache's activity within this process.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ResultCacheStats {
    /// Successful loads.
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Entries written.
    pub stores: u64,
    /// Corrupt entries quarantined by this process.
    pub quarantined: u64,
    /// Files currently retained in the quarantine directory (bounded
    /// by the store's cap; survives across processes).
    pub quarantined_total: u64,
}

/// A directory of content-addressed results, backed by whichever
/// [`ResultStore`] layout the directory holds.
#[derive(Debug, Clone)]
pub struct ResultCache {
    backend: Arc<dyn ResultStore>,
}

impl ResultCache {
    /// Opens (creating if needed) a cache directory, auto-detecting
    /// the layout: an LSM store where its `CURRENT` manifest exists,
    /// the legacy blob layout where loose `*.json` entries do, a fresh
    /// LSM store otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Io`] if the directory cannot be created
    /// or the store cannot be recovered.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, HarnessError> {
        failpoint::install_store_hook();
        let dir = dir.into();
        let backend = scu_store::open_dir(&dir, None)
            .map_err(|e| HarnessError::io("create cache dir", &dir, e))?;
        Ok(ResultCache { backend })
    }

    /// Opens the directory explicitly as the legacy per-file layout
    /// (used by corruption tests and migration tooling that poke blob
    /// files directly).
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Io`] if the directory cannot be created.
    pub fn open_legacy(dir: impl Into<PathBuf>) -> Result<Self, HarnessError> {
        failpoint::install_store_hook();
        let dir = dir.into();
        let backend = scu_store::LegacyStore::open(&dir)
            .map_err(|e| HarnessError::io("create cache dir", &dir, e))?;
        Ok(ResultCache {
            backend: Arc::new(backend),
        })
    }

    /// Wraps an already-open backend (how the server shares one store
    /// across its scheduler and every batch harness).
    pub fn from_backend(backend: Arc<dyn ResultStore>) -> Self {
        failpoint::install_store_hook();
        ResultCache { backend }
    }

    /// The backend, for sharing (see [`crate::Harness::store_backend`])
    /// and for store-level statistics.
    pub fn backend(&self) -> Arc<dyn ResultStore> {
        Arc::clone(&self.backend)
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        self.backend.dir()
    }

    /// Where corrupt entries are moved.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.backend.quarantine_dir()
    }

    /// The digest addressing `key` (the blob filename stem in the
    /// legacy layout; half of the record address in the LSM layout).
    pub fn digest_of(key: &Value) -> String {
        scu_store::LegacyStore::digest_of(key)
    }

    /// Loads the value stored for `key`, if present and intact. A
    /// corrupt entry is quarantined and reads as a miss.
    pub fn load(&self, key: &Value) -> Option<Value> {
        match self.backend.get(key) {
            GetResult::Hit(value) => Some(value),
            GetResult::Miss | GetResult::Corrupt => None,
        }
    }

    /// Stores `value` under `key`, atomically.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::Io`] on write failure; callers treat a
    /// failed store as degraded caching, not a failed cell.
    pub fn store(&self, key: &Value, value: &Value) -> Result<(), HarnessError> {
        self.backend
            .put(key, value)
            .map_err(|e| HarnessError::io("store cache entry", self.backend.dir(), e))
    }

    /// This process's hit/miss/store/quarantine counts so far.
    pub fn stats(&self) -> ResultCacheStats {
        let s = self.backend.stats();
        ResultCacheStats {
            hits: s.hits,
            misses: s.misses,
            stores: s.stores,
            quarantined: s.quarantined,
            quarantined_total: s.quarantined_total,
        }
    }

    /// The backend's full counter set (WAL appends, segment reads,
    /// compactions, …) for `/metrics` and diagnostics.
    pub fn store_stats(&self) -> StoreStats {
        self.backend.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "scu-harness-cache-test-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn key(n: u64) -> Value {
        Value::Object(vec![("cell".into(), Value::U64(n))])
    }

    #[test]
    fn round_trips_and_counts() {
        let dir = scratch_dir("round-trip");
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.load(&key(1)), None);
        cache.store(&key(1), &Value::Str("result".into())).unwrap();
        assert_eq!(cache.load(&key(1)), Some(Value::Str("result".into())));
        assert_eq!(
            cache.stats(),
            ResultCacheStats {
                hits: 1,
                misses: 1,
                stores: 1,
                quarantined: 0,
                quarantined_total: 0,
            }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn survives_reopen() {
        let dir = scratch_dir("reopen");
        ResultCache::open(&dir)
            .unwrap()
            .store(&key(7), &Value::U64(42))
            .unwrap();
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.load(&key(7)), Some(Value::U64(42)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_directories_use_the_lsm_backend() {
        let dir = scratch_dir("lsm-default");
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.store_stats().backend, "lsm");
        assert!(cache.backend().unified_journal());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_blob_directories_are_detected() {
        let dir = scratch_dir("legacy-detect");
        ResultCache::open_legacy(&dir)
            .unwrap()
            .store(&key(1), &Value::U64(10))
            .unwrap();
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.store_stats().backend, "legacy");
        assert_eq!(cache.load(&key(1)), Some(Value::U64(10)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_mismatch_is_quarantined() {
        let dir = scratch_dir("mismatch");
        let cache = ResultCache::open_legacy(&dir).unwrap();
        cache.store(&key(1), &Value::U64(1)).unwrap();
        // Corrupt the envelope by rewriting it under the same digest
        // with a different key.
        let path = dir.join(format!("{}.json", ResultCache::digest_of(&key(1))));
        std::fs::write(&path, r#"{"key":{"cell":999},"value":123}"#).unwrap();
        assert_eq!(cache.load(&key(1)), None);
        assert_eq!(cache.stats().quarantined, 1);
        assert!(!path.exists(), "corrupt entry moved out of the cache");
        assert!(
            cache
                .quarantine_dir()
                .join(path.file_name().unwrap())
                .exists(),
            "corrupt entry kept for post-mortem"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entry_is_quarantined_and_reads_as_miss() {
        let dir = scratch_dir("truncated");
        let cache = ResultCache::open_legacy(&dir).unwrap();
        cache.store(&key(2), &Value::U64(2)).unwrap();
        let path = dir.join(format!("{}.json", ResultCache::digest_of(&key(2))));
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert_eq!(cache.load(&key(2)), None);
        assert_eq!(cache.stats().quarantined, 1);
        assert!(!path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn value_byte_flip_is_quarantined_not_served() {
        let dir = scratch_dir("byte-flip");
        let cache = ResultCache::open_legacy(&dir).unwrap();
        cache.store(&key(3), &Value::U64(31337)).unwrap();
        let path = dir.join(format!("{}.json", ResultCache::digest_of(&key(3))));
        let text = std::fs::read_to_string(&path).unwrap();
        // Flip one digit inside the value: still valid JSON, key still
        // matches — only the value digest can catch this.
        let flipped = text.replacen("31337", "31338", 1);
        assert_ne!(text, flipped);
        std::fs::write(&path, flipped).unwrap();
        assert_eq!(cache.load(&key(3)), None);
        assert_eq!(cache.stats().quarantined, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_value_digest_is_rejected() {
        // Entries written by the pre-digest format must not be served.
        let dir = scratch_dir("old-format");
        let cache = ResultCache::open_legacy(&dir).unwrap();
        let path = dir.join(format!("{}.json", ResultCache::digest_of(&key(4))));
        std::fs::write(&path, r#"{"key":{"cell":4},"value":99}"#).unwrap();
        assert_eq!(cache.load(&key(4)), None);
        assert_eq!(cache.stats().quarantined, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_retention_is_bounded() {
        let dir = scratch_dir("q-cap");
        let cache = ResultCache::open_legacy(&dir).unwrap();
        // Corrupt far more entries than the cap retains.
        let over = scu_store::quarantine::DEFAULT_QUARANTINE_CAP as u64 + 10;
        for n in 0..over {
            cache.store(&key(n), &Value::U64(n)).unwrap();
            let path = dir.join(format!("{}.json", ResultCache::digest_of(&key(n))));
            std::fs::write(&path, "garbage").unwrap();
            assert_eq!(cache.load(&key(n)), None);
        }
        let stats = cache.stats();
        assert_eq!(stats.quarantined, over, "every corruption was counted");
        assert_eq!(
            stats.quarantined_total,
            scu_store::quarantine::DEFAULT_QUARANTINE_CAP as u64,
            "retention is capped, oldest evicted"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_load_fault_degrades_to_miss() {
        let dir = scratch_dir("fp-load");
        let cache = ResultCache::open_legacy(&dir).unwrap();
        cache.store(&key(5), &Value::U64(5)).unwrap();
        {
            let _fp = crate::failpoint::scoped("cache-load=io-error");
            assert_eq!(cache.load(&key(5)), None, "injected IO error is a miss");
        }
        // The entry itself was untouched by the injected fault, but the
        // load path counted and attempted quarantine; a real hit works
        // again once the fault clears if the file survived the move.
        assert!(cache.stats().misses >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_load_fault_on_lsm_misses_without_quarantine() {
        let dir = scratch_dir("fp-load-lsm");
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.store_stats().backend, "lsm");
        cache.store(&key(5), &Value::U64(5)).unwrap();
        {
            let _fp = crate::failpoint::scoped("cache-load=io-error");
            assert_eq!(cache.load(&key(5)), None, "injected IO error is a miss");
        }
        assert_eq!(cache.stats().quarantined, 0, "nothing was actually corrupt");
        assert_eq!(cache.load(&key(5)), Some(Value::U64(5)), "entry intact");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_store_fault_is_typed_and_skips_write() {
        for cache in [
            ResultCache::open_legacy(scratch_dir("fp-store-legacy")).unwrap(),
            ResultCache::open(scratch_dir("fp-store-lsm")).unwrap(),
        ] {
            let _fp = crate::failpoint::scoped("cache-store=io-error");
            let err = cache.store(&key(6), &Value::U64(6)).unwrap_err();
            assert!(matches!(
                err,
                HarnessError::Io {
                    op: "store cache entry",
                    ..
                }
            ));
            assert_eq!(cache.stats().stores, 0);
            let _ = std::fs::remove_dir_all(cache.dir());
        }
    }

    #[test]
    fn digests_are_canonical_per_key() {
        assert_eq!(
            ResultCache::digest_of(&key(1)),
            ResultCache::digest_of(&key(1))
        );
        assert_ne!(
            ResultCache::digest_of(&key(1)),
            ResultCache::digest_of(&key(2))
        );
    }
}

//! The harness's typed error taxonomy and poison-tolerant locking.
//!
//! Before this module, the lock/IO paths held the sweep together with
//! `expect(...)`: a panic while holding a mutex (possible only through
//! a bug or an injected fault — worker panics are caught per-cell)
//! poisoned the lock and the *next* accessor killed the whole sweep.
//! Robustness inverts that: locks recover the inner value (every
//! protected structure is valid after any partial update we perform),
//! and fallible IO surfaces as a [`HarnessError`] the caller downgrades
//! to a warning plus degraded behaviour — an unusable cache runs
//! uncached, an unusable journal runs unjournaled, never a dead sweep.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

/// Everything that can go wrong inside the harness itself (as opposed
/// to inside a cell, which is an [`crate::Outcome`]).
#[derive(Debug)]
pub enum HarnessError {
    /// An IO operation failed.
    Io {
        /// What the harness was doing, e.g. `"create cache dir"`.
        op: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A cache entry was present but not usable.
    CorruptCache {
        /// The entry's path.
        path: PathBuf,
        /// Why it was rejected.
        reason: String,
    },
    /// A journal line was present but not parseable.
    CorruptJournal {
        /// The journal's path.
        path: PathBuf,
        /// 1-based line number.
        line: usize,
        /// Why it was rejected.
        reason: String,
    },
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Io { op, path, source } => {
                write!(f, "{op} at {}: {source}", path.display())
            }
            HarnessError::CorruptCache { path, reason } => {
                write!(f, "corrupt cache entry {}: {reason}", path.display())
            }
            HarnessError::CorruptJournal { path, line, reason } => {
                write!(
                    f,
                    "corrupt journal {} line {line}: {reason}",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for HarnessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HarnessError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl HarnessError {
    /// Wraps an IO error with its operation and path.
    pub fn io(op: &'static str, path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        HarnessError::Io {
            op,
            path: path.into(),
            source,
        }
    }
}

/// Locks `mutex`, recovering the inner value if a previous holder
/// panicked. Safe for every harness lock: the protected structures
/// (ready queue, result slots, counters, registries, output files) are
/// each updated atomically from their own lock's perspective, so a
/// poisoned guard still protects a consistent value — degrading the
/// sweep beats killing it.
pub fn lock_unpoisoned<'a, T>(mutex: &'a Mutex<T>, what: &str) -> MutexGuard<'a, T> {
    mutex.lock().unwrap_or_else(|poisoned| {
        eprintln!("[scu-harness] {what} lock poisoned by an earlier panic; continuing");
        poisoned.into_inner()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn poisoned_lock_recovers_value() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.lock().is_err(), "lock is poisoned");
        assert_eq!(*lock_unpoisoned(&m, "test"), 7);
    }

    #[test]
    fn display_includes_context() {
        let e = HarnessError::io(
            "create cache dir",
            "/tmp/x",
            std::io::Error::from(std::io::ErrorKind::PermissionDenied),
        );
        let text = e.to_string();
        assert!(text.contains("create cache dir") && text.contains("/tmp/x"));
        let c = HarnessError::CorruptJournal {
            path: "/tmp/j".into(),
            line: 3,
            reason: "truncated".into(),
        };
        assert!(c.to_string().contains("line 3"));
    }
}

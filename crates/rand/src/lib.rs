//! Offline stand-in for `rand`.
//!
//! The build environment has no network and no registry cache, so the
//! real `rand` cannot be resolved. This crate supplies the slice the
//! workspace uses — [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and [`RngExt`]'s `random`/`random_range` — backed by xoshiro256++
//! (Blackman & Vigna) seeded through SplitMix64, the same construction
//! the upstream crate documents for seeding.
//!
//! Streams are deterministic per seed and stable across platforms and
//! releases: the graph generators derive every synthetic dataset from
//! these streams, and the experiment cache keys assume a given
//! `(dataset, scale, seed)` always reproduces the same graph. Do not
//! change the generator without bumping the model version in
//! `scu-algos`.

/// Core pseudo-random stream: 64 fresh bits per call.
pub trait RngCore {
    /// The next 64-bit output of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// 256 bits of state, period 2^256 − 1, passes BigCrush; chosen
    /// over a cryptographic generator because graph generation wants
    /// speed and reproducibility, not unpredictability.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion; guarantees a non-zero state for
            // every seed (SplitMix64 is a bijection, so the four
            // outputs cannot all be zero).
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable uniformly from the full `next_u64` stream.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable as `random_range` bounds.
pub trait UniformInt: Copy {
    /// Widens to the sampling domain.
    fn to_u64(self) -> u64;
    /// Narrows back; the value is guaranteed in range by construction.
    fn from_u64(v: u64) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize);

// Signed bounds map through an order-preserving bijection into u64
// (sign-extend, then flip the top bit), so the unsigned sampling path
// handles them unchanged.
macro_rules! uniform_int_signed {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                (self as i64 as u64) ^ (1u64 << 63)
            }
            fn from_u64(v: u64) -> Self {
                (v ^ (1u64 << 63)) as i64 as $t
            }
        }
    )*};
}
uniform_int_signed!(i8, i16, i32, i64, isize);

/// Ranges acceptable to [`RngExt::random_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws uniformly from the range. Panics on empty ranges.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform draw from `[0, n)` by rejection — no modulo bias.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    // Reject draws from the final partial copy of [0, n) in u64 space.
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

impl<T: UniformInt> SampleRange for std::ops::Range<T> {
    type Output = T;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "random_range called with empty range");
        T::from_u64(lo + uniform_below(rng, hi - lo))
    }
}

impl<T: UniformInt> SampleRange for std::ops::RangeInclusive<T> {
    type Output = T;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "random_range called with empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + uniform_below(rng, span + 1))
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait RngExt: RngCore {
    /// Draws one value of an inferable type.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: u32 = rng.random_range(10..20);
            assert!((10..20).contains(&x));
            let y: u32 = rng.random_range(1..=10);
            assert!((1..=10).contains(&y));
            let z: usize = rng.random_range(0..3);
            assert!(z < 3);
        }
    }

    #[test]
    fn f64_is_unit_interval_and_covers_it() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            lo_seen |= x < 0.1;
            hi_seen |= x > 0.9;
        }
        assert!(lo_seen && hi_seen, "draws did not cover the interval");
    }

    #[test]
    fn range_draws_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn stream_is_stable_across_releases() {
        // Golden values pin the generator: dataset reproducibility and
        // cache keys depend on this stream never changing.
        let mut rng = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.random()).collect();
        assert_eq!(
            first,
            [
                5987356902031041503,
                7051070477665621255,
                6633766593972829180,
                211316841551650330
            ]
        );
    }
}

//! The grouping configuration of the SCU's in-memory hash table (§4.3).
//!
//! Grouping assigns output positions so that edges whose destination
//! nodes lie in the same L2 cache line are stored together in the
//! compacted array, improving memory coalescing for the GPU kernels
//! that consume the frontier. Each hash entry holds one memory-block
//! tag and up to eight element slots (§4.3 explains why 8, not the 32
//! that would fill a whole line). On a block conflict the resident
//! group is *emitted* — its members receive the next consecutive
//! output positions — and the entry is reused; all resident groups are
//! emitted at the end of the pass.

use scu_mem::buffer::DeviceAllocator;
use scu_mem::cache::AccessKind;
use scu_mem::line::Addr;
use scu_mem::system::MemorySystem;

use crate::config::HashTableConfig;
use crate::stats::GroupStats;

/// Maximum elements per group (§4.3).
pub const MAX_GROUP: usize = 8;

#[derive(Debug, Clone)]
struct GroupEntry {
    block: u64,
    members: Vec<u32>,
}

#[inline]
fn fib_hash(x: u64, n: u64) -> u64 {
    (x.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16) % n
}

/// The grouping hash table.
///
/// Feed element input-indices tagged with their destination memory
/// block via [`GroupHash::push`]; emitted groups come back as vectors
/// of input indices in arrival order. [`GroupHash::flush`] drains the
/// table at the end of a pass.
#[derive(Debug, Clone)]
pub struct GroupHash {
    cfg: HashTableConfig,
    base: Addr,
    sets: Vec<Vec<Option<GroupEntry>>>,
    stats: GroupStats,
    latency_ns: f64,
}

impl GroupHash {
    /// Allocates a grouping table with geometry `cfg` in the simulated
    /// address space.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`HashTableConfig::validate`].
    pub fn new(alloc: &mut DeviceAllocator, cfg: HashTableConfig) -> Self {
        cfg.validate().expect("invalid hash geometry");
        let base = alloc.alloc(cfg.size_bytes);
        let sets = vec![vec![None; cfg.ways as usize]; cfg.num_sets() as usize];
        GroupHash {
            cfg,
            base,
            sets,
            stats: GroupStats::default(),
            latency_ns: 0.0,
        }
    }

    /// The geometry this table was built with.
    pub fn config(&self) -> &HashTableConfig {
        &self.cfg
    }

    /// Accumulated effectiveness counters.
    pub fn stats(&self) -> GroupStats {
        self.stats
    }

    /// Sum of probe access latencies, ns.
    pub fn latency_ns(&self) -> f64 {
        self.latency_ns
    }

    /// Empties the table and resets counters.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.fill(None);
        }
        self.stats = GroupStats::default();
        self.latency_ns = 0.0;
    }

    #[inline]
    fn set_addr(&self, set: u64) -> Addr {
        self.base + set * self.cfg.ways as u64 * self.cfg.entry_bytes as u64
    }

    fn touch(&mut self, mem: &mut MemorySystem, addr: Addr, kind: AccessKind) {
        // Hash entries are 4-32 bytes (Table 2's "bytes/line"):
        // sector-granularity L2 bandwidth, full-line DRAM fills.
        let out = mem.access_sector(addr, kind);
        self.latency_ns += out.latency_ns;
    }

    /// Inserts element `input_idx` destined for memory block `block`.
    ///
    /// Returns a group emitted as a side effect: either the entry that
    /// had to be evicted for a conflicting block, or the element's own
    /// group if it reached [`MAX_GROUP`].
    pub fn push(&mut self, mem: &mut MemorySystem, input_idx: u32, block: u64) -> Option<Vec<u32>> {
        self.stats.elements += 1;
        let set_idx = fib_hash(block, self.sets.len() as u64);
        let set_addr = self.set_addr(set_idx);
        self.touch(mem, set_addr, AccessKind::Read);

        let ways = self.cfg.ways as usize;

        // Same block resident?
        if let Some(w) = self.sets[set_idx as usize]
            .iter()
            .position(|e| e.as_ref().is_some_and(|e| e.block == block))
        {
            self.stats.joined += 1;
            let entry_addr = set_addr + w as u64 * self.cfg.entry_bytes as u64;
            self.touch(mem, entry_addr, AccessKind::Write);
            let entry = self.sets[set_idx as usize][w].as_mut().expect("checked");
            entry.members.push(input_idx);
            if entry.members.len() >= MAX_GROUP {
                let full = self.sets[set_idx as usize][w].take().expect("checked");
                self.stats.groups += 1;
                return Some(full.members);
            }
            return None;
        }

        // Empty way?
        if let Some(w) = self.sets[set_idx as usize].iter().position(Option::is_none) {
            let entry_addr = set_addr + w as u64 * self.cfg.entry_bytes as u64;
            self.touch(mem, entry_addr, AccessKind::Write);
            self.sets[set_idx as usize][w] = Some(GroupEntry {
                block,
                members: vec![input_idx],
            });
            return None;
        }

        // Conflict: evict a deterministic victim, emit its group.
        let w = fib_hash(block ^ 0x5bd1_e995, ways as u64) as usize;
        let entry_addr = set_addr + w as u64 * self.cfg.entry_bytes as u64;
        self.touch(mem, entry_addr, AccessKind::Write);
        let victim = self.sets[set_idx as usize][w]
            .replace(GroupEntry {
                block,
                members: vec![input_idx],
            })
            .expect("set is full");
        self.stats.groups += 1;
        Some(victim.members)
    }

    /// Drains every resident group in deterministic (set, way) order.
    pub fn flush(&mut self) -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        for set in &mut self.sets {
            for slot in set.iter_mut() {
                if let Some(e) = slot.take() {
                    self.stats.groups += 1;
                    out.push(e.members);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scu_mem::system::MemorySystemConfig;

    fn setup() -> (GroupHash, MemorySystem) {
        let mut alloc = DeviceAllocator::new();
        let cfg = HashTableConfig {
            size_bytes: 144 * 1024,
            ways: 16,
            entry_bytes: 32,
        };
        (
            GroupHash::new(&mut alloc, cfg),
            MemorySystem::new(MemorySystemConfig::tx1()),
        )
    }

    #[test]
    fn same_block_elements_group_together() {
        let (mut g, mut mem) = setup();
        assert!(g.push(&mut mem, 0, 100).is_none());
        assert!(g.push(&mut mem, 1, 100).is_none());
        assert!(g.push(&mut mem, 2, 100).is_none());
        let groups = g.flush();
        assert_eq!(groups, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn full_group_emitted_at_max_size() {
        let (mut g, mut mem) = setup();
        let mut emitted = None;
        for i in 0..MAX_GROUP as u32 {
            emitted = g.push(&mut mem, i, 7);
        }
        assert_eq!(emitted, Some((0..MAX_GROUP as u32).collect::<Vec<_>>()));
        assert!(g.flush().is_empty());
    }

    #[test]
    fn distinct_blocks_form_distinct_groups() {
        let (mut g, mut mem) = setup();
        g.push(&mut mem, 0, 1);
        g.push(&mut mem, 1, 2);
        g.push(&mut mem, 2, 1);
        let mut groups = g.flush();
        groups.sort();
        assert_eq!(groups, vec![vec![0, 2], vec![1]]);
    }

    #[test]
    fn every_element_appears_exactly_once() {
        let (mut g, mut mem) = setup();
        let n = 10_000u32;
        let mut all: Vec<u32> = Vec::new();
        for i in 0..n {
            // Pseudo-random blocks with some locality.
            let block = ((i as u64).wrapping_mul(2654435761)) % 1000;
            if let Some(grp) = g.push(&mut mem, i, block) {
                all.extend(grp);
            }
        }
        for grp in g.flush() {
            all.extend(grp);
        }
        all.sort_unstable();
        let expect: Vec<u32> = (0..n).collect();
        assert_eq!(all, expect, "grouping must be a permutation");
    }

    #[test]
    fn conflict_evicts_and_emits() {
        let mut alloc = DeviceAllocator::new();
        // 1 set x 2 ways.
        let cfg = HashTableConfig {
            size_bytes: 64,
            ways: 2,
            entry_bytes: 32,
        };
        let mut g = GroupHash::new(&mut alloc, cfg);
        let mut mem = MemorySystem::new(MemorySystemConfig::tx1());
        g.push(&mut mem, 0, 1);
        g.push(&mut mem, 1, 2);
        // Third distinct block must evict someone.
        let evicted = g.push(&mut mem, 2, 3);
        assert!(evicted.is_some());
        let total: usize = evicted.unwrap().len() + g.flush().iter().map(Vec::len).sum::<usize>();
        assert_eq!(total, 3);
    }

    #[test]
    fn stats_track_joins_and_groups() {
        let (mut g, mut mem) = setup();
        for i in 0..6u32 {
            g.push(&mut mem, i, (i % 2) as u64);
        }
        g.flush();
        let s = g.stats();
        assert_eq!(s.elements, 6);
        assert_eq!(s.groups, 2);
        assert_eq!(s.joined, 4);
        assert!((s.mean_group_size() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn clear_resets() {
        let (mut g, mut mem) = setup();
        g.push(&mut mem, 0, 1);
        g.clear();
        assert!(g.flush().is_empty());
        assert_eq!(g.stats().elements, 0);
    }

    #[test]
    fn pushes_generate_traffic() {
        let (mut g, mut mem) = setup();
        for i in 0..100u32 {
            g.push(&mut mem, i, i as u64);
        }
        assert!(mem.stats().l2.accesses >= 200);
        assert!(g.latency_ns() > 0.0);
    }
}

//! # scu-core — the Stream Compaction Unit device model
//!
//! This crate is the reproduction of the paper's contribution: a small
//! programmable unit attached to the GPU interconnect that performs
//! stream compaction for graph workloads (ISCA 2019, §3–§4).
//!
//! * [`config`] — hardware parameters (paper Table 1) and the
//!   per-GPU scalability parameters (Table 2): pipeline width and the
//!   filtering/grouping hash-table geometries.
//! * [`device`] — the [`device::ScuDevice`]: the five compaction
//!   operations of Figure 6 (*Bitmask Constructor*, *Data Compaction*,
//!   *Access Compaction*, *Replication Compaction*, *Access Expansion
//!   Compaction*), executed functionally against
//!   [`scu_mem::DeviceArray`] data while charging pipeline, memory
//!   and latency time through the shared [`scu_mem::MemorySystem`].
//! * [`hash`] — the reconfigurable in-memory hash table used by the
//!   enhanced SCU's *filtering* (unique / unique-best-cost, §4.2).
//! * [`group`] — the *grouping* configuration of the same table
//!   (§4.3): edges whose destination nodes share an L2 line get
//!   consecutive output positions.
//! * [`api`] — the application-facing command queue (the paper's
//!   "simple API").
//! * [`pipeline`] — per-unit occupancy decomposition of executed
//!   operations (which of Figure 7's units was the bottleneck).
//! * [`cyclesim`] — an independent cycle-stepped pipeline simulation
//!   used to validate the analytic timing bounds.
//! * [`streams`] — sequential-stream readers/writers used by the
//!   pipeline model to translate element streams into line traffic.
//! * [`stats`] — per-operation and accumulated device statistics.
//!
//! ## Example
//!
//! ```
//! use scu_core::{ScuConfig, ScuDevice};
//! use scu_mem::{DeviceAllocator, DeviceArray, MemorySystem, MemorySystemConfig};
//!
//! let mut mem = MemorySystem::new(MemorySystemConfig::tx1());
//! let mut scu = ScuDevice::new(ScuConfig::tx1());
//! let mut alloc = DeviceAllocator::new();
//!
//! let src = DeviceArray::from_vec(&mut alloc, vec![5u32, 9, 3, 7, 1]);
//! let flags = DeviceArray::from_vec(&mut alloc, vec![1u8, 0, 1, 0, 1]);
//! let mut dst: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 5);
//!
//! let op = scu.data_compaction(&mut mem, &src, Some(&flags), &mut dst);
//! assert_eq!(op.elements_out, 3);
//! assert_eq!(&dst.as_slice()[..3], &[5, 3, 1]);
//! ```

pub mod api;
pub mod config;
pub mod cyclesim;
pub mod device;
pub mod group;
pub mod hash;
pub mod pipeline;
pub mod stats;
pub mod streams;

pub use api::{Command, CommandQueue};
pub use config::{HashTableConfig, ScuConfig};
pub use device::{CompareOp, ScuDevice};
pub use group::GroupHash;
pub use hash::{FilterHash, FilterMode, VictimPolicy};
pub use pipeline::{Stage, StageOccupancy};
pub use stats::{OpKind, ScuOpStats, ScuStats};

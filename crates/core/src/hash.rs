//! The filtering configuration of the SCU's in-memory hash table (§4.2).
//!
//! Each element (node/edge ID) probes a set-associative table resident
//! in device memory and cached by the shared L2. A hit on the same ID
//! drops the element as a duplicate; a miss inserts it; a full set
//! overwrites a deterministic victim way ("in case of collisions the
//! corresponding hash table entry is overwritten" — the source of the
//! scheme's benign false negatives). The *unique-best-cost* mode
//! additionally stores a cost per ID and keeps an element only when it
//! improves the stored cost (used by SSSP).

use scu_mem::buffer::DeviceAllocator;
use scu_mem::cache::AccessKind;
use scu_mem::line::Addr;
use scu_mem::system::MemorySystem;

use crate::config::HashTableConfig;
use crate::stats::FilterStats;

/// Which duplicate-detection rule a probe applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterMode {
    /// Keep only the first occurrence of each ID (BFS).
    Unique,
    /// Keep an occurrence only if it improves the stored cost (SSSP).
    UniqueBestCost,
}

/// How a full set chooses its victim on a collision.
///
/// The paper overwrites "the corresponding hash table entry" — a
/// stateless choice that needs no metadata (§4.2: "a good trade-off
/// between complexity and effectiveness"). The LRU alternative exists
/// for the ablation that quantifies what the simplification costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VictimPolicy {
    /// Deterministic hash-indexed way, no metadata (the paper's
    /// scheme).
    Overwrite,
    /// Least-recently-used way (costs a per-way timestamp).
    Lru,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    id: u32,
    cost: u32,
    valid: bool,
    last_use: u64,
}

const EMPTY_SLOT: Slot = Slot {
    id: 0,
    cost: 0,
    valid: false,
    last_use: 0,
};

/// Fibonacci hash of an ID into `[0, n)`.
#[inline]
fn fib_hash(id: u32, n: u64) -> u64 {
    ((id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16) % n
}

/// The filtering hash table.
///
/// The table's backing storage is a real allocation in the simulated
/// address space, so probes generate L2/DRAM traffic and occupy L2
/// capacity exactly as the paper's design intends ("the hash in memory
/// ... does not require any additional hardware", §4.1).
#[derive(Debug, Clone)]
pub struct FilterHash {
    cfg: HashTableConfig,
    base: Addr,
    sets: Vec<Vec<Slot>>,
    policy: VictimPolicy,
    clock: u64,
    stats: FilterStats,
    latency_ns: f64,
}

impl FilterHash {
    /// Allocates a table with geometry `cfg` in the simulated address
    /// space.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`HashTableConfig::validate`].
    pub fn new(alloc: &mut DeviceAllocator, cfg: HashTableConfig) -> Self {
        Self::with_policy(alloc, cfg, VictimPolicy::Overwrite)
    }

    /// [`FilterHash::new`] with an explicit victim policy (ablation).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`HashTableConfig::validate`].
    pub fn with_policy(
        alloc: &mut DeviceAllocator,
        cfg: HashTableConfig,
        policy: VictimPolicy,
    ) -> Self {
        cfg.validate().expect("invalid hash geometry");
        // Reserve the address range without host storage: the logical
        // contents live in `sets`; only the addresses matter for
        // traffic and L2 occupancy.
        let base = alloc.alloc(cfg.size_bytes);
        let sets = vec![vec![EMPTY_SLOT; cfg.ways as usize]; cfg.num_sets() as usize];
        FilterHash {
            cfg,
            base,
            sets,
            policy,
            clock: 0,
            stats: FilterStats::default(),
            latency_ns: 0.0,
        }
    }

    /// The geometry this table was built with.
    pub fn config(&self) -> &HashTableConfig {
        &self.cfg
    }

    /// Base address of the table region.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Accumulated effectiveness counters.
    pub fn stats(&self) -> FilterStats {
        self.stats
    }

    /// Sum of probe access latencies, ns.
    pub fn latency_ns(&self) -> f64 {
        self.latency_ns
    }

    /// Empties the table and resets counters (called between frontier
    /// iterations when the algorithm requires a fresh table).
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.fill(EMPTY_SLOT);
        }
        self.stats = FilterStats::default();
        self.latency_ns = 0.0;
        self.clock = 0;
    }

    /// Address of a set's first entry (probes read the whole set,
    /// which fits in one or two L2 lines).
    #[inline]
    fn set_addr(&self, set: u64) -> Addr {
        self.base + set * self.cfg.ways as u64 * self.cfg.entry_bytes as u64
    }

    fn touch(&mut self, mem: &mut MemorySystem, addr: Addr, kind: AccessKind) {
        // Hash entries are 4-32 bytes (Table 2's "bytes/line"):
        // sector-granularity L2 bandwidth, full-line DRAM fills.
        let out = mem.access_sector(addr, kind);
        self.latency_ns += out.latency_ns;
    }

    /// Probes `id` in unique mode; returns `true` if the element is
    /// kept (first occurrence as far as the table knows).
    pub fn probe_unique(&mut self, mem: &mut MemorySystem, id: u32) -> bool {
        self.probe(mem, id, None)
    }

    /// Probes `id` with `cost` in unique-best-cost mode; returns `true`
    /// if the element is kept (new, or improves the stored cost).
    pub fn probe_best_cost(&mut self, mem: &mut MemorySystem, id: u32, cost: u32) -> bool {
        self.probe(mem, id, Some(cost))
    }

    fn probe(&mut self, mem: &mut MemorySystem, id: u32, cost: Option<u32>) -> bool {
        self.stats.probes += 1;
        self.clock += 1;
        let set_idx = fib_hash(id, self.sets.len() as u64);
        let set_addr = self.set_addr(set_idx);
        self.touch(mem, set_addr, AccessKind::Read);

        let ways = self.cfg.ways as usize;
        let set = &mut self.sets[set_idx as usize];

        // Hit?
        if let Some(w) = set.iter().position(|s| s.valid && s.id == id) {
            set[w].last_use = self.clock;
            let keep = match cost {
                None => false,
                Some(c) if c < set[w].cost => {
                    set[w].cost = c;
                    true
                }
                Some(_) => false,
            };
            if keep {
                self.stats.kept += 1;
                let entry_addr = set_addr + w as u64 * self.cfg.entry_bytes as u64;
                self.touch(mem, entry_addr, AccessKind::Write);
            } else {
                self.stats.dropped += 1;
            }
            return keep;
        }

        // Miss: insert into an empty way, else evict per the policy.
        let victim = match set.iter().position(|s| !s.valid) {
            Some(w) => w,
            None => {
                self.stats.evictions += 1;
                match self.policy {
                    VictimPolicy::Overwrite => (fib_hash(id ^ 0x5bd1_e995, ways as u64)) as usize,
                    VictimPolicy::Lru => {
                        set.iter()
                            .enumerate()
                            .min_by_key(|(_, s)| s.last_use)
                            .expect("ways is positive")
                            .0
                    }
                }
            }
        };
        set[victim] = Slot {
            id,
            cost: cost.unwrap_or(0),
            valid: true,
            last_use: self.clock,
        };
        self.stats.kept += 1;
        let entry_addr = set_addr + victim as u64 * self.cfg.entry_bytes as u64;
        self.touch(mem, entry_addr, AccessKind::Write);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scu_mem::system::MemorySystemConfig;

    fn setup(size_kb: u64, entry: u32) -> (FilterHash, MemorySystem) {
        let mut alloc = DeviceAllocator::new();
        let cfg = HashTableConfig {
            size_bytes: size_kb * 1024,
            ways: 16,
            entry_bytes: entry,
        };
        (
            FilterHash::new(&mut alloc, cfg),
            MemorySystem::new(MemorySystemConfig::tx1()),
        )
    }

    #[test]
    fn first_occurrence_kept_duplicate_dropped() {
        let (mut h, mut mem) = setup(128, 4);
        assert!(h.probe_unique(&mut mem, 42));
        assert!(!h.probe_unique(&mut mem, 42));
        assert!(!h.probe_unique(&mut mem, 42));
        let s = h.stats();
        assert_eq!(s.probes, 3);
        assert_eq!(s.kept, 1);
        assert_eq!(s.dropped, 2);
    }

    #[test]
    fn distinct_ids_all_kept_when_table_large() {
        let (mut h, mut mem) = setup(1024, 4);
        for id in 0..10_000u32 {
            assert!(h.probe_unique(&mut mem, id));
        }
        assert_eq!(h.stats().dropped, 0);
    }

    #[test]
    fn best_cost_keeps_improvements_only() {
        let (mut h, mut mem) = setup(128, 8);
        assert!(h.probe_best_cost(&mut mem, 7, 100));
        assert!(!h.probe_best_cost(&mut mem, 7, 100)); // equal: not better
        assert!(h.probe_best_cost(&mut mem, 7, 50)); // improvement
        assert!(!h.probe_best_cost(&mut mem, 7, 75)); // regression
    }

    #[test]
    fn tiny_table_produces_false_negatives_not_false_positives() {
        // A 1-set table: heavy collisions. Duplicates may slip through
        // (false negatives) but every *kept* answer for a brand-new ID
        // must be true-positive — i.e. the first probe of an ID is
        // always kept.
        let mut alloc = DeviceAllocator::new();
        let cfg = HashTableConfig {
            size_bytes: 64,
            ways: 16,
            entry_bytes: 4,
        };
        let mut h = FilterHash::new(&mut alloc, cfg);
        let mut mem = MemorySystem::new(MemorySystemConfig::tx1());
        for id in 0..1000u32 {
            assert!(
                h.probe_unique(&mut mem, id),
                "first probe of {id} must keep"
            );
        }
        assert!(h.stats().evictions > 0);
    }

    #[test]
    fn clear_forgets_everything() {
        let (mut h, mut mem) = setup(128, 4);
        h.probe_unique(&mut mem, 1);
        h.clear();
        assert!(h.probe_unique(&mut mem, 1));
        assert_eq!(h.stats().probes, 1);
    }

    #[test]
    fn probes_generate_l2_traffic() {
        let (mut h, mut mem) = setup(128, 4);
        for id in 0..100u32 {
            h.probe_unique(&mut mem, id);
        }
        assert!(mem.stats().l2.accesses >= 200); // read + write per keep
        assert!(h.latency_ns() > 0.0);
    }

    #[test]
    fn lru_policy_beats_overwrite_on_skewed_streams() {
        // A hot set of IDs re-probed between bursts of cold ones: LRU
        // keeps the hot entries resident, the stateless overwrite
        // policy sometimes evicts them.
        let cfg = HashTableConfig {
            size_bytes: 1024,
            ways: 16,
            entry_bytes: 4,
        };
        let mut mem = MemorySystem::new(MemorySystemConfig::tx1());
        let mut drops = Vec::new();
        for policy in [VictimPolicy::Overwrite, VictimPolicy::Lru] {
            let mut alloc = DeviceAllocator::new();
            let mut h = FilterHash::with_policy(&mut alloc, cfg, policy);
            for round in 0..200u32 {
                for hot in 0..8u32 {
                    h.probe_unique(&mut mem, hot);
                }
                for cold in 0..32u32 {
                    h.probe_unique(&mut mem, 1000 + round * 32 + cold);
                }
            }
            drops.push(h.stats().dropped);
        }
        assert!(
            drops[1] >= drops[0],
            "LRU dropped {} vs overwrite {}",
            drops[1],
            drops[0]
        );
    }

    #[test]
    fn small_table_mostly_hits_in_l2() {
        // 132 KB table inside a 256 KB L2: after warm-up, probe reads
        // should mostly hit.
        let (mut h, mut mem) = setup(132, 4);
        for id in 0..200_000u32 {
            h.probe_unique(&mut mem, id % 30_000);
        }
        let s = mem.stats().l2;
        assert!(s.hit_rate() > 0.8, "hit rate {}", s.hit_rate());
    }
}

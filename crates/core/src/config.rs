//! SCU hardware parameters (paper Tables 1 and 2).

use serde::{Deserialize, Serialize};

/// Geometry of the reconfigurable in-memory hash table used by the
/// enhanced SCU's filtering and grouping operations (§4.1).
///
/// The table lives in ordinary device memory and is cached by the
/// shared L2 — "using existing memory does not require any additional
/// hardware" (§4.1) — so its size relative to the L2 determines how
/// many probes hit on chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HashTableConfig {
    /// Total table size in bytes.
    pub size_bytes: u64,
    /// Set associativity (16 in all paper configurations).
    pub ways: u32,
    /// Bytes per entry: 4 for BFS filtering (node ID), 8 for SSSP
    /// filtering (node ID + best cost), 32 for grouping (block tag +
    /// up to 8 element slots).
    pub entry_bytes: u32,
}

impl HashTableConfig {
    /// Total number of entries.
    pub fn num_entries(&self) -> u64 {
        self.size_bytes / self.entry_bytes as u64
    }

    /// Number of sets (`entries / ways`).
    pub fn num_sets(&self) -> u64 {
        self.num_entries() / self.ways as u64
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a message if any field is zero or the size does not
    /// divide evenly into sets of `ways` entries.
    pub fn validate(&self) -> Result<(), String> {
        if self.ways == 0 || self.entry_bytes == 0 || self.size_bytes == 0 {
            return Err("hash geometry fields must be positive".into());
        }
        if !self
            .size_bytes
            .is_multiple_of(self.entry_bytes as u64 * self.ways as u64)
        {
            return Err(format!(
                "hash size {} does not divide into sets of {} x {}B entries",
                self.size_bytes, self.ways, self.entry_bytes
            ));
        }
        Ok(())
    }
}

/// Full parameter set of one SCU instance.
///
/// Fixed parameters come from Table 1 (buffers, coalescing unit);
/// scalability parameters come from Table 2 (pipeline width and hash
/// table sizes per target GPU). §5.1 explains the two knobs: pipeline
/// width is an RTL parameter, hash sizes are set at runtime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScuConfig {
    /// Target system name ("GTX980" / "TX1").
    pub name: &'static str,
    /// Clock frequency, matched to the host GPU (1.27 / 1.0 GHz).
    pub freq_ghz: f64,
    /// Elements processed per cycle (4 for GTX980, 1 for TX1).
    pub pipeline_width: u32,
    /// Vector-parameter FIFO (Table 1: 5 KB).
    pub vector_buffer_bytes: u32,
    /// Data Fetch request FIFO (Table 1: 38 KB).
    pub fifo_request_buffer_bytes: u32,
    /// Filtering/grouping request buffer (Table 1: 18 KB).
    pub hash_request_buffer_bytes: u32,
    /// Coalescing unit in-flight requests (Table 1: 32).
    pub coalescer_in_flight: u32,
    /// Coalescing unit merge window (Table 1: 4).
    pub coalescer_merge_window: u32,
    /// Fixed cycles to configure the Address Generator per operation.
    pub op_setup_cycles: u32,
    /// Host-side cost of issuing one SCU operation through the API
    /// (driver write of the configuration registers), ns.
    pub op_issue_ns: f64,
    /// Fraction of peak DRAM bandwidth the SCU's dedicated sequential
    /// streams sustain (§3.2's deep request FIFOs and write coalescing
    /// are designed for near-peak streaming; Figure 13 shows the SCU
    /// side approaching peak).
    pub dram_efficiency: f64,
    /// Hash geometry for BFS unique filtering (Table 2).
    pub filter_bfs_hash: HashTableConfig,
    /// Hash geometry for SSSP unique-best-cost filtering (Table 2).
    pub filter_sssp_hash: HashTableConfig,
    /// Hash geometry for SSSP grouping (Table 2).
    pub grouping_hash: HashTableConfig,
}

impl ScuConfig {
    /// SCU sized for the high-performance GTX 980 system (Table 2):
    /// pipeline width 4; 1 MB / 1.5 MB / 1.2 MB hash tables.
    pub fn gtx980() -> Self {
        ScuConfig {
            name: "GTX980",
            freq_ghz: 1.27,
            pipeline_width: 4,
            vector_buffer_bytes: 5 * 1024,
            fifo_request_buffer_bytes: 38 * 1024,
            hash_request_buffer_bytes: 18 * 1024,
            coalescer_in_flight: 32,
            coalescer_merge_window: 4,
            op_setup_cycles: 64,
            op_issue_ns: 500.0,
            dram_efficiency: 0.90,
            filter_bfs_hash: HashTableConfig {
                size_bytes: 1024 * 1024,
                ways: 16,
                entry_bytes: 4,
            },
            filter_sssp_hash: HashTableConfig {
                size_bytes: 1536 * 1024,
                ways: 16,
                entry_bytes: 8,
            },
            grouping_hash: HashTableConfig {
                size_bytes: 1_228_800, // 1.2 MB (2400 sets x 16 x 32 B)
                ways: 16,
                entry_bytes: 32,
            },
        }
    }

    /// SCU sized for the low-power Tegra X1 system (Table 2):
    /// pipeline width 1; 132 KB / 192 KB / 144 KB hash tables.
    pub fn tx1() -> Self {
        ScuConfig {
            name: "TX1",
            freq_ghz: 1.0,
            pipeline_width: 1,
            vector_buffer_bytes: 5 * 1024,
            fifo_request_buffer_bytes: 38 * 1024,
            hash_request_buffer_bytes: 18 * 1024,
            coalescer_in_flight: 32,
            coalescer_merge_window: 4,
            op_setup_cycles: 64,
            op_issue_ns: 500.0,
            dram_efficiency: 0.90,
            filter_bfs_hash: HashTableConfig {
                size_bytes: 132 * 1024,
                ways: 16,
                entry_bytes: 4,
            },
            filter_sssp_hash: HashTableConfig {
                size_bytes: 192 * 1024,
                ways: 16,
                entry_bytes: 8,
            },
            grouping_hash: HashTableConfig {
                size_bytes: 144 * 1024,
                ways: 16,
                entry_bytes: 32,
            },
        }
    }

    /// Cycle time, ns.
    pub fn cycle_ns(&self) -> f64 {
        1.0 / self.freq_ghz
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.freq_ghz <= 0.0 {
            return Err("frequency must be positive".into());
        }
        if self.pipeline_width == 0 {
            return Err("pipeline width must be positive".into());
        }
        if self.coalescer_in_flight == 0 || self.coalescer_merge_window == 0 {
            return Err("coalescer parameters must be positive".into());
        }
        if !(0.0 < self.dram_efficiency && self.dram_efficiency <= 1.0) {
            return Err("dram_efficiency must be in (0, 1]".into());
        }
        if self.op_issue_ns < 0.0 {
            return Err("op_issue_ns must be non-negative".into());
        }
        self.filter_bfs_hash.validate()?;
        self.filter_sssp_hash.validate()?;
        self.grouping_hash.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        ScuConfig::gtx980().validate().unwrap();
        ScuConfig::tx1().validate().unwrap();
    }

    #[test]
    fn table2_pipeline_widths() {
        assert_eq!(ScuConfig::gtx980().pipeline_width, 4);
        assert_eq!(ScuConfig::tx1().pipeline_width, 1);
    }

    #[test]
    fn table2_hash_sizes() {
        let g = ScuConfig::gtx980();
        assert_eq!(g.filter_bfs_hash.size_bytes, 1 << 20);
        assert_eq!(g.filter_sssp_hash.size_bytes, 1536 * 1024);
        let t = ScuConfig::tx1();
        assert_eq!(t.filter_bfs_hash.size_bytes, 132 * 1024);
        assert_eq!(t.filter_sssp_hash.size_bytes, 192 * 1024);
        assert_eq!(t.grouping_hash.size_bytes, 144 * 1024);
    }

    #[test]
    fn hash_geometry_math() {
        let h = HashTableConfig {
            size_bytes: 1 << 20,
            ways: 16,
            entry_bytes: 4,
        };
        assert_eq!(h.num_entries(), 262_144);
        assert_eq!(h.num_sets(), 16_384);
    }

    #[test]
    fn invalid_geometry_rejected() {
        let h = HashTableConfig {
            size_bytes: 100,
            ways: 16,
            entry_bytes: 4,
        };
        assert!(h.validate().is_err());
        let h = HashTableConfig {
            size_bytes: 0,
            ways: 16,
            entry_bytes: 4,
        };
        assert!(h.validate().is_err());
    }

    #[test]
    fn grouping_entries_hold_eight_slots() {
        // 32-byte entries = block tag + 8 x 4-byte element slots (§4.3).
        let g = ScuConfig::gtx980().grouping_hash;
        assert_eq!(g.entry_bytes, 32);
    }
}

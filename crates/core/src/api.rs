//! The application-facing command API (§3: "Applications can make use
//! of it through a simple API").
//!
//! [`CommandQueue`] wraps an [`ScuDevice`] with a small driver layer:
//! commands are described declaratively as [`Command`] values, can be
//! inspected/logged before submission, and execute in order. This is
//! the layer a runtime like the paper's modified CUDA graph libraries
//! would call; the algorithm implementations in `scu-algos` call the
//! device methods directly for brevity.
//!
//! ```
//! use scu_core::api::{Command, CommandQueue};
//! use scu_core::{ScuConfig, ScuDevice};
//! use scu_mem::{DeviceAllocator, DeviceArray, MemorySystem, MemorySystemConfig};
//!
//! let mut mem = MemorySystem::new(MemorySystemConfig::tx1());
//! let mut q = CommandQueue::new(ScuDevice::new(ScuConfig::tx1()));
//! let mut alloc = DeviceAllocator::new();
//!
//! let src = DeviceArray::from_vec(&mut alloc, vec![4u32, 8, 15, 16, 23, 42]);
//! let mut flags: DeviceArray<u8> = DeviceArray::zeroed(&mut alloc, 6);
//! let mut dst: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 6);
//!
//! q.submit(&mut mem, Command::BitmaskConstruct {
//!     src: &src, count: 6,
//!     cmp: scu_core::CompareOp::Gt, reference: 10,
//!     flags_out: &mut flags,
//! });
//! q.submit(&mut mem, Command::DataCompaction {
//!     src: &src, count: 6, flags: Some(&flags), dst: &mut dst,
//! });
//! assert_eq!(&dst.as_slice()[..3], &[15, 16, 23]);
//! assert_eq!(q.history().len(), 2);
//! ```

use scu_mem::buffer::DeviceArray;
use scu_mem::system::MemorySystem;

use crate::device::{CompareOp, ScuDevice};
use crate::stats::{OpKind, ScuOpStats};

/// A declarative SCU command over `u32` element streams (node/edge
/// IDs, the element type of every operation in the paper's Figure 6).
#[derive(Debug)]
pub enum Command<'a> {
    /// Compare `src[0..count]` against `reference`, write 0/1 flags.
    BitmaskConstruct {
        /// Input elements.
        src: &'a DeviceArray<u32>,
        /// Elements to process.
        count: usize,
        /// Comparison operator.
        cmp: CompareOp,
        /// Reference value.
        reference: u32,
        /// Output flag vector.
        flags_out: &'a mut DeviceArray<u8>,
    },
    /// Keep flagged elements of a sequential stream.
    DataCompaction {
        /// Input elements.
        src: &'a DeviceArray<u32>,
        /// Elements to process.
        count: usize,
        /// Optional keep flags (all kept when `None`).
        flags: Option<&'a DeviceArray<u8>>,
        /// Compacted output.
        dst: &'a mut DeviceArray<u32>,
    },
    /// Gather `src[index]` for each flagged index entry.
    AccessCompaction {
        /// Gather source.
        src: &'a DeviceArray<u32>,
        /// Index vector.
        indexes: &'a DeviceArray<u32>,
        /// Entries to process.
        count: usize,
        /// Optional keep flags.
        flags: Option<&'a DeviceArray<u8>>,
        /// Compacted output.
        dst: &'a mut DeviceArray<u32>,
    },
    /// Replicate each kept element `counts[i]` times.
    ReplicationCompaction {
        /// Input elements.
        src: &'a DeviceArray<u32>,
        /// Replication counts.
        counts: &'a DeviceArray<u32>,
        /// Entries to process.
        count: usize,
        /// Optional keep flags.
        flags: Option<&'a DeviceArray<u8>>,
        /// Replicated output.
        dst: &'a mut DeviceArray<u32>,
    },
    /// Gather CSR slices `src[indexes[i] .. indexes[i] + counts[i]]`.
    AccessExpansionCompaction {
        /// Gather source (e.g. the CSR edge array).
        src: &'a DeviceArray<u32>,
        /// Slice start offsets.
        indexes: &'a DeviceArray<u32>,
        /// Slice lengths.
        counts: &'a DeviceArray<u32>,
        /// Entries to process.
        count: usize,
        /// Optional per-expanded-element keep flags.
        elem_flags: Option<&'a DeviceArray<u8>>,
        /// Expanded output.
        dst: &'a mut DeviceArray<u32>,
    },
}

impl Command<'_> {
    /// The operation kind this command maps to.
    pub fn kind(&self) -> OpKind {
        match self {
            Command::BitmaskConstruct { .. } => OpKind::BitmaskConstructor,
            Command::DataCompaction { .. } => OpKind::DataCompaction,
            Command::AccessCompaction { .. } => OpKind::AccessCompaction,
            Command::ReplicationCompaction { .. } => OpKind::ReplicationCompaction,
            Command::AccessExpansionCompaction { .. } => OpKind::AccessExpansionCompaction,
        }
    }
}

/// An in-order command queue over one SCU, retaining per-command
/// statistics (the driver's view of Figure 5's single shared unit).
#[derive(Debug)]
pub struct CommandQueue {
    device: ScuDevice,
    history: Vec<ScuOpStats>,
}

impl CommandQueue {
    /// Creates a queue owning `device`.
    pub fn new(device: ScuDevice) -> Self {
        CommandQueue {
            device,
            history: Vec::new(),
        }
    }

    /// Executes one command to completion and records its statistics.
    ///
    /// Returns the number of elements written to the destination.
    pub fn submit(&mut self, mem: &mut MemorySystem, cmd: Command<'_>) -> u64 {
        let stats = match cmd {
            Command::BitmaskConstruct {
                src,
                count,
                cmp,
                reference,
                flags_out,
            } => self
                .device
                .bitmask_construct(mem, src, count, cmp, reference, flags_out),
            Command::DataCompaction {
                src,
                count,
                flags,
                dst,
            } => self
                .device
                .data_compaction_n(mem, src, count, flags, None, dst, 0),
            Command::AccessCompaction {
                src,
                indexes,
                count,
                flags,
                dst,
            } => self
                .device
                .access_compaction(mem, src, indexes, count, flags, dst),
            Command::ReplicationCompaction {
                src,
                counts,
                count,
                flags,
                dst,
            } => self
                .device
                .replication_compaction(mem, src, counts, count, flags, None, dst),
            Command::AccessExpansionCompaction {
                src,
                indexes,
                counts,
                count,
                elem_flags,
                dst,
            } => self.device.access_expansion_compaction(
                mem, src, indexes, counts, count, elem_flags, None, dst,
            ),
        };
        let out = stats.elements_out;
        self.history.push(stats);
        out
    }

    /// Attaches a trace probe to the underlying device; every
    /// submitted command then emits a
    /// [`scu_trace::Event::ScuOpRetired`] as it retires.
    pub fn set_probe(&mut self, probe: scu_trace::Probe) {
        self.device.set_probe(probe);
    }

    /// Per-command statistics, in submission order.
    pub fn history(&self) -> &[ScuOpStats] {
        &self.history
    }

    /// Total SCU busy time across all submitted commands, ns.
    pub fn total_time_ns(&self) -> f64 {
        self.history.iter().map(|s| s.time_ns).sum()
    }

    /// The underlying device (for aggregate statistics).
    pub fn device(&self) -> &ScuDevice {
        &self.device
    }

    /// Consumes the queue, returning the device.
    pub fn into_device(self) -> ScuDevice {
        self.device
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScuConfig;
    use scu_mem::buffer::DeviceAllocator;
    use scu_mem::system::MemorySystemConfig;

    fn setup() -> (CommandQueue, MemorySystem, DeviceAllocator) {
        (
            CommandQueue::new(ScuDevice::new(ScuConfig::tx1())),
            MemorySystem::new(MemorySystemConfig::tx1()),
            DeviceAllocator::new(),
        )
    }

    #[test]
    fn pipeline_of_commands_matches_direct_calls() {
        let (mut q, mut mem, mut alloc) = setup();
        let src = DeviceArray::from_vec(&mut alloc, vec![1u32, 5, 2, 8, 3]);
        let mut flags: DeviceArray<u8> = DeviceArray::zeroed(&mut alloc, 5);
        let mut dst: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 5);
        q.submit(
            &mut mem,
            Command::BitmaskConstruct {
                src: &src,
                count: 5,
                cmp: CompareOp::Ge,
                reference: 3,
                flags_out: &mut flags,
            },
        );
        let kept = q.submit(
            &mut mem,
            Command::DataCompaction {
                src: &src,
                count: 5,
                flags: Some(&flags),
                dst: &mut dst,
            },
        );
        assert_eq!(kept, 3);
        assert_eq!(&dst.as_slice()[..3], &[5, 8, 3]);
        assert_eq!(q.history().len(), 2);
        assert_eq!(q.history()[0].op, OpKind::BitmaskConstructor);
        assert!(q.total_time_ns() > 0.0);
    }

    #[test]
    fn expansion_command_works() {
        let (mut q, mut mem, mut alloc) = setup();
        let src = DeviceArray::from_vec(&mut alloc, (10u32..30).collect());
        let indexes = DeviceArray::from_vec(&mut alloc, vec![0u32, 10]);
        let counts = DeviceArray::from_vec(&mut alloc, vec![2u32, 3]);
        let mut dst: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 5);
        let n = q.submit(
            &mut mem,
            Command::AccessExpansionCompaction {
                src: &src,
                indexes: &indexes,
                counts: &counts,
                count: 2,
                elem_flags: None,
                dst: &mut dst,
            },
        );
        assert_eq!(n, 5);
        assert_eq!(dst.as_slice(), &[10, 11, 20, 21, 22]);
    }

    #[test]
    fn command_kinds_are_reported() {
        let (_, _, mut alloc) = setup();
        let src = DeviceArray::from_vec(&mut alloc, vec![0u32]);
        let mut dst: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 1);
        let cmd = Command::DataCompaction {
            src: &src,
            count: 1,
            flags: None,
            dst: &mut dst,
        };
        assert_eq!(cmd.kind(), OpKind::DataCompaction);
    }

    #[test]
    fn device_accumulates_across_queue() {
        let (mut q, mut mem, mut alloc) = setup();
        let src = DeviceArray::from_vec(&mut alloc, vec![1u32, 2]);
        let mut dst: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 2);
        q.submit(
            &mut mem,
            Command::DataCompaction {
                src: &src,
                count: 2,
                flags: None,
                dst: &mut dst,
            },
        );
        assert_eq!(q.device().stats().ops, 1);
        let dev = q.into_device();
        assert_eq!(dev.stats().elements_out, 2);
    }
}

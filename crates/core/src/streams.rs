//! Sequential stream readers/writers for the SCU pipeline model.
//!
//! The Address Generator walks its input vectors (data, bitmask,
//! indexes, count) strictly sequentially and the Data Store writes the
//! compacted output strictly sequentially (§3.2). At line granularity
//! that means each stream touches each cache line exactly once; these
//! helpers detect line crossings so the device model issues exactly one
//! memory transaction per line per stream.

use scu_mem::cache::AccessKind;
use scu_mem::line::{Addr, LineSize};
use scu_mem::system::{MemorySystem, TxRun};

/// Tracks a sequential stream and issues one memory access per new
/// line touched.
#[derive(Debug, Clone)]
pub struct SeqStream {
    kind: AccessKind,
    line_size: LineSize,
    last_line: Option<Addr>,
    accesses: u64,
    latency_ns: f64,
}

impl SeqStream {
    /// Creates a reader (`AccessKind::Read`) or writer
    /// (`AccessKind::Write`) stream at 128-byte line granularity.
    pub fn new(kind: AccessKind) -> Self {
        SeqStream {
            kind,
            line_size: LineSize::L128,
            last_line: None,
            accesses: 0,
            latency_ns: 0.0,
        }
    }

    /// Touches `bytes` bytes at `addr`; issues a transaction for each
    /// line not already in flight.
    ///
    /// Only the first line of a span can already be in flight (each
    /// access re-anchors the in-flight line), so after skipping it the
    /// remainder is a clean consecutive run, expressed as one [`TxRun`]
    /// and applied through the shared [`MemorySystem::apply_run`]
    /// replay entry point — the same vocabulary the GPU engine's
    /// ordered L2 replay uses, so both frontends drive the memory
    /// system identically.
    pub fn touch(&mut self, mem: &mut MemorySystem, addr: Addr, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let first = self.line_size.line_of(addr);
        let last = self.line_size.line_of(addr + bytes - 1);
        let step = self.line_size.bytes() as Addr;
        let start = if self.last_line == Some(first) {
            if first == last {
                return;
            }
            first + step
        } else {
            first
        };
        let lines = (last - start) / step + 1;
        let run = mem.apply_run(TxRun {
            addr: start,
            lines,
            kind: self.kind,
        });
        self.accesses += run.lines;
        self.latency_ns += run.latency_ns;
        self.last_line = Some(last);
    }

    /// Number of line transactions issued.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Sum of observed access latencies, ns.
    pub fn latency_ns(&self) -> f64 {
        self.latency_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scu_mem::system::MemorySystemConfig;

    fn mem() -> MemorySystem {
        MemorySystem::new(MemorySystemConfig::tx1())
    }

    #[test]
    fn sequential_words_touch_each_line_once() {
        let mut m = mem();
        let mut s = SeqStream::new(AccessKind::Read);
        for i in 0..256u64 {
            s.touch(&mut m, i * 4, 4);
        }
        // 1024 bytes = 8 lines.
        assert_eq!(s.accesses(), 8);
        assert_eq!(m.stats().l2.accesses, 8);
    }

    #[test]
    fn straddling_touch_accesses_both_lines() {
        let mut m = mem();
        let mut s = SeqStream::new(AccessKind::Read);
        s.touch(&mut m, 124, 8); // crosses 128-byte boundary
        assert_eq!(s.accesses(), 2);
    }

    #[test]
    fn zero_bytes_is_noop() {
        let mut m = mem();
        let mut s = SeqStream::new(AccessKind::Write);
        s.touch(&mut m, 0, 0);
        assert_eq!(s.accesses(), 0);
    }

    #[test]
    fn rereading_same_line_is_free() {
        let mut m = mem();
        let mut s = SeqStream::new(AccessKind::Read);
        s.touch(&mut m, 0, 4);
        s.touch(&mut m, 4, 4);
        s.touch(&mut m, 0, 4); // stream model: still on the same line
        assert_eq!(s.accesses(), 1);
    }

    #[test]
    fn writer_generates_write_traffic() {
        let mut m = mem();
        let mut s = SeqStream::new(AccessKind::Write);
        for i in 0..64u64 {
            s.touch(&mut m, i * 4, 4);
        }
        assert_eq!(m.stats().l2.writes, 2); // 256 B = 2 lines
    }

    #[test]
    fn latency_accumulates() {
        let mut m = mem();
        let mut s = SeqStream::new(AccessKind::Read);
        s.touch(&mut m, 0, 4);
        assert!(s.latency_ns() > 0.0);
    }

    #[test]
    fn large_touch_spans_many_lines() {
        let mut m = mem();
        let mut s = SeqStream::new(AccessKind::Read);
        s.touch(&mut m, 0, 128 * 10);
        assert_eq!(s.accesses(), 10);
    }
}

//! Per-unit occupancy of the SCU pipeline (Figure 7).
//!
//! The device model in [`crate::device`] charges time as a
//! max-of-bounds; this module decomposes an executed operation's work
//! back onto the five functional units of Figure 7 (plus the
//! Filtering/Grouping unit of Figure 8), answering *which unit was the
//! bottleneck* — the question the paper's §5.1 scalability knobs turn
//! on. The decomposition is derived entirely from an operation's
//! recorded statistics, so it can be applied after the fact to any
//! [`ScuOpStats`].

use crate::config::ScuConfig;
use crate::stats::{OpKind, ScuOpStats};

/// One functional unit of the SCU (Figures 7 and 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Walks the control vectors and generates element addresses.
    AddressGenerator,
    /// Issues data memory requests in FIFO order.
    DataFetch,
    /// Merges requests to recently seen lines (32 in-flight, 4-merge).
    CoalescingUnit,
    /// Compares elements against the reference value / probes the
    /// filter hash.
    BitmaskConstructor,
    /// Coalesces and issues the sequential output writes.
    DataStore,
    /// The enhanced filtering/grouping unit (Figure 8).
    FilterGroup,
}

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::AddressGenerator,
        Stage::DataFetch,
        Stage::CoalescingUnit,
        Stage::BitmaskConstructor,
        Stage::DataStore,
        Stage::FilterGroup,
    ];

    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Stage::AddressGenerator => "address-generator",
            Stage::DataFetch => "data-fetch",
            Stage::CoalescingUnit => "coalescing-unit",
            Stage::BitmaskConstructor => "bitmask-constructor",
            Stage::DataStore => "data-store",
            Stage::FilterGroup => "filter/group",
        }
    }
}

/// Busy cycles attributed to each stage for one operation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageOccupancy {
    /// Busy cycles per stage, indexed as [`Stage::ALL`].
    pub cycles: [u64; 6],
}

impl StageOccupancy {
    /// Derives the per-stage busy cycles of `op` on an SCU configured
    /// as `cfg`.
    ///
    /// Attribution rules (per element unless stated):
    /// * the Address Generator walks every control entry and produces
    ///   one address per data or skipped element (skips scan at 4×);
    /// * Data Fetch is busy for each *issued* request; merged requests
    ///   ride along free;
    /// * the Coalescing Unit examines every request (issued + merged);
    /// * the Bitmask Constructor runs for comparison and filter ops;
    /// * the Data Store writes each output element;
    /// * the Filter/Group unit is busy for each probe of a
    ///   [`OpKind::FilterPass`] / [`OpKind::GroupPass`].
    ///
    /// All throughputs scale with `cfg.pipeline_width`.
    pub fn from_op(op: &ScuOpStats, cfg: &ScuConfig) -> Self {
        let w = cfg.pipeline_width as u64;
        let div = |x: u64| x.div_ceil(w.max(1));
        let mut cycles = [0u64; 6];
        let elements = op.data_elements + op.skipped_elements / 4;
        cycles[0] = div(op.control_elements.max(elements));
        cycles[1] = div(op.requests_issued);
        cycles[2] = div(op.requests_issued + op.requests_merged);
        cycles[3] = match op.op {
            OpKind::BitmaskConstructor | OpKind::FilterPass => div(op.data_elements),
            _ => 0,
        };
        cycles[4] = div(op.elements_out);
        cycles[5] = match op.op {
            OpKind::FilterPass | OpKind::GroupPass => div(op.data_elements),
            _ => 0,
        };
        StageOccupancy { cycles }
    }

    /// The busiest stage and its cycle count.
    pub fn bottleneck(&self) -> (Stage, u64) {
        let (i, &c) = self
            .cycles
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .expect("six stages");
        (Stage::ALL[i], c)
    }

    /// Per-stage utilisation relative to the operation's charged
    /// cycles, in `[0, 1]` per entry (a stage can be fully busy while
    /// the op is memory-bound and longer than any stage).
    pub fn utilization(&self, op_cycles: u64) -> [f64; 6] {
        let mut u = [0.0; 6];
        if op_cycles == 0 {
            return u;
        }
        for (i, &c) in self.cycles.iter().enumerate() {
            u[i] = (c as f64 / op_cycles as f64).min(1.0);
        }
        u
    }

    /// Accumulates another operation's occupancy.
    pub fn merge(&mut self, other: &StageOccupancy) {
        for (a, b) in self.cycles.iter_mut().zip(&other.cycles) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScuConfig;
    use crate::device::{CompareOp, ScuDevice};
    use scu_mem::buffer::{DeviceAllocator, DeviceArray};
    use scu_mem::system::{MemorySystem, MemorySystemConfig};

    fn setup() -> (ScuDevice, MemorySystem, DeviceAllocator) {
        (
            ScuDevice::new(ScuConfig::tx1()),
            MemorySystem::new(MemorySystemConfig::tx1()),
            DeviceAllocator::new(),
        )
    }

    #[test]
    fn bitmask_op_busies_the_bitmask_stage() {
        let (mut scu, mut mem, mut alloc) = setup();
        let src = DeviceArray::from_vec(&mut alloc, (0..1000u32).collect());
        let mut flags: DeviceArray<u8> = DeviceArray::zeroed(&mut alloc, 1000);
        let op = scu.bitmask_construct(&mut mem, &src, 1000, CompareOp::Lt, 500, &mut flags);
        let occ = StageOccupancy::from_op(&op, scu.config());
        assert_eq!(occ.cycles[3], 1000); // bitmask constructor
        assert_eq!(occ.cycles[5], 0); // no filter/group work
    }

    #[test]
    fn expansion_bottleneck_is_address_or_fetch() {
        let (mut scu, mut mem, mut alloc) = setup();
        let src: DeviceArray<u32> = DeviceArray::from_vec(&mut alloc, (0..4096u32).collect());
        let rows = 128;
        let indexes = DeviceArray::from_vec(&mut alloc, (0..rows as u32).map(|i| i * 32).collect());
        let counts = DeviceArray::from_vec(&mut alloc, vec![32u32; rows]);
        let mut dst: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 4096);
        let op = scu.access_expansion_compaction(
            &mut mem, &src, &indexes, &counts, rows, None, None, &mut dst,
        );
        let occ = StageOccupancy::from_op(&op, scu.config());
        let (stage, _) = occ.bottleneck();
        assert!(
            matches!(
                stage,
                Stage::AddressGenerator | Stage::CoalescingUnit | Stage::DataStore
            ),
            "unexpected bottleneck {stage:?}"
        );
        // Store writes every output element.
        assert_eq!(occ.cycles[4], 4096);
    }

    #[test]
    fn width_divides_occupancy() {
        let op = {
            let (mut scu, mut mem, mut alloc) = setup();
            let src = DeviceArray::from_vec(&mut alloc, (0..4096u32).collect());
            let mut dst: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 4096);
            scu.data_compaction(&mut mem, &src, None, &mut dst)
        };
        let narrow = StageOccupancy::from_op(&op, &ScuConfig::tx1());
        let wide = StageOccupancy::from_op(&op, &ScuConfig::gtx980());
        assert!(
            wide.cycles[4] * 3 <= narrow.cycles[4],
            "width-4 store {} vs width-1 {}",
            wide.cycles[4],
            narrow.cycles[4]
        );
    }

    #[test]
    fn utilization_is_bounded() {
        let occ = StageOccupancy {
            cycles: [10, 5, 0, 0, 10, 0],
        };
        let u = occ.utilization(8);
        assert_eq!(u[0], 1.0); // clamped
        assert!((u[1] - 0.625).abs() < 1e-12);
        assert_eq!(occ.utilization(0), [0.0; 6]);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = StageOccupancy {
            cycles: [1, 2, 3, 4, 5, 6],
        };
        a.merge(&StageOccupancy {
            cycles: [6, 5, 4, 3, 2, 1],
        });
        assert_eq!(a.cycles, [7; 6]);
    }

    #[test]
    fn stage_names_stable() {
        assert_eq!(Stage::CoalescingUnit.name(), "coalescing-unit");
        assert_eq!(Stage::ALL.len(), 6);
    }
}

//! Per-operation and accumulated SCU statistics.
//!
//! The structs live in `scu-trace` so [`scu_trace::Event`] can carry
//! them; this module re-exports them from their historical home, so
//! `scu_core::stats::ScuOpStats` and friends keep resolving.

pub use scu_trace::{FilterStats, GroupStats, OpKind, ScuBounds, ScuOpStats, ScuStats};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_names_are_stable() {
        assert_eq!(OpKind::DataCompaction.name(), "data-compaction");
        assert_eq!(OpKind::AccessExpansionCompaction.name(), "access-expansion");
    }

    #[test]
    fn bounds_max_and_merge() {
        let mut b = ScuBounds {
            pipeline_ns: 3.0,
            memory_ns: 5.0,
            latency_ns: 1.0,
        };
        assert_eq!(b.max_ns(), 5.0);
        b.merge(&ScuBounds {
            pipeline_ns: 1.0,
            memory_ns: 0.0,
            latency_ns: 9.0,
        });
        assert_eq!(b.pipeline_ns, 4.0);
        assert_eq!(b.latency_ns, 10.0);
    }

    #[test]
    fn filter_drop_rate() {
        assert_eq!(FilterStats::default().drop_rate(), 0.0);
        let f = FilterStats {
            probes: 10,
            kept: 3,
            dropped: 7,
            evictions: 0,
        };
        assert!((f.drop_rate() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn group_mean_size() {
        assert_eq!(GroupStats::default().mean_group_size(), 0.0);
        let g = GroupStats {
            elements: 12,
            groups: 3,
            joined: 9,
        };
        assert!((g.mean_group_size() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn absorb_accumulates_ops() {
        let mut s = ScuStats::default();
        let mut op = ScuOpStats::new(OpKind::DataCompaction);
        op.scu_cycles = 100;
        op.time_ns = 50.0;
        op.elements_out = 7;
        s.absorb(&op);
        s.absorb(&op);
        assert_eq!(s.ops, 2);
        assert_eq!(s.scu_cycles, 200);
        assert_eq!(s.elements_out, 14);
        assert_eq!(s.time_ns, 100.0);
    }

    #[test]
    fn merge_combines_filter_and_group() {
        let mut a = ScuStats::default();
        let mut b = ScuStats::default();
        b.filter.probes = 5;
        b.group.elements = 4;
        a.merge(&b);
        assert_eq!(a.filter.probes, 5);
        assert_eq!(a.group.elements, 4);
    }
}

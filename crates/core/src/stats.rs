//! Per-operation and accumulated SCU statistics.

use scu_mem::stats::MemoryStats;
use serde::{Deserialize, Serialize};

/// Which of the five SCU operations (Figure 6) — or enhanced pass — an
/// [`ScuOpStats`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Bitmask Constructor: compare stream against a reference value.
    BitmaskConstructor,
    /// Data Compaction: sequential data + bitmask → compacted data.
    DataCompaction,
    /// Access Compaction: index vector + bitmask → gathered data.
    AccessCompaction,
    /// Replication Compaction: data + count vector → replicated data.
    ReplicationCompaction,
    /// Access Expansion Compaction: indexes + counts → gathered ranges.
    AccessExpansionCompaction,
    /// Enhanced-SCU step 1 producing a filtering bitmask (§4.2).
    FilterPass,
    /// Enhanced-SCU step 1 producing a grouping reorder vector (§4.3).
    GroupPass,
}

impl OpKind {
    /// Short lower-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::BitmaskConstructor => "bitmask",
            OpKind::DataCompaction => "data-compaction",
            OpKind::AccessCompaction => "access-compaction",
            OpKind::ReplicationCompaction => "replication-compaction",
            OpKind::AccessExpansionCompaction => "access-expansion",
            OpKind::FilterPass => "filter-pass",
            OpKind::GroupPass => "group-pass",
        }
    }
}

/// The individual lower bounds whose max is one operation's time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ScuBounds {
    /// Pipeline throughput (`setup + slots / width` cycles), ns.
    pub pipeline_ns: f64,
    /// L2 bandwidth + DRAM service time of the op's traffic, ns.
    pub memory_ns: f64,
    /// Total miss latency divided by the in-flight request budget, ns.
    pub latency_ns: f64,
}

impl ScuBounds {
    /// The binding constraint, ns.
    pub fn max_ns(&self) -> f64 {
        self.pipeline_ns.max(self.memory_ns).max(self.latency_ns)
    }

    /// Component-wise accumulation.
    pub fn merge(&mut self, other: &ScuBounds) {
        self.pipeline_ns += other.pipeline_ns;
        self.memory_ns += other.memory_ns;
        self.latency_ns += other.latency_ns;
    }
}

/// Statistics of one SCU operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScuOpStats {
    /// Operation kind.
    pub op: OpKind,
    /// Control-stream entries consumed (bitmask/index/count slots).
    pub control_elements: u64,
    /// Data elements that flowed through the pipeline.
    pub data_elements: u64,
    /// Flagged-out elements skipped by the bitmask scanner (cost a
    /// fraction of a pipeline slot and no gather traffic).
    pub skipped_elements: u64,
    /// Elements written to the destination.
    pub elements_out: u64,
    /// Pipeline cycles charged.
    pub scu_cycles: u64,
    /// Memory requests issued after coalescing.
    pub requests_issued: u64,
    /// Memory requests merged away by the coalescing units.
    pub requests_merged: u64,
    /// L2/DRAM traffic attributable to this operation.
    pub mem: MemoryStats,
    /// Time-bound breakdown.
    pub bounds: ScuBounds,
    /// Estimated operation time, ns.
    pub time_ns: f64,
}

impl ScuOpStats {
    /// Creates an empty record of the given kind.
    pub fn new(op: OpKind) -> Self {
        ScuOpStats {
            op,
            control_elements: 0,
            data_elements: 0,
            skipped_elements: 0,
            elements_out: 0,
            scu_cycles: 0,
            requests_issued: 0,
            requests_merged: 0,
            mem: MemoryStats::default(),
            bounds: ScuBounds::default(),
            time_ns: 0.0,
        }
    }
}

/// Filtering-effectiveness counters (§4.2 / §6.3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterStats {
    /// Elements probed.
    pub probes: u64,
    /// Elements kept (first occurrences or cost improvements).
    pub kept: u64,
    /// Duplicates dropped.
    pub dropped: u64,
    /// Hash-collision evictions (a different ID overwrote an entry —
    /// these are the source of filtering false negatives).
    pub evictions: u64,
}

impl FilterStats {
    /// Fraction of the input stream removed, in `[0, 1]`.
    pub fn drop_rate(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.dropped as f64 / self.probes as f64
        }
    }

    /// Accumulates another window.
    pub fn merge(&mut self, other: &FilterStats) {
        self.probes += other.probes;
        self.kept += other.kept;
        self.dropped += other.dropped;
        self.evictions += other.evictions;
    }
}

/// Grouping-effectiveness counters (§4.3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupStats {
    /// Elements processed.
    pub elements: u64,
    /// Groups emitted (evictions plus final flush).
    pub groups: u64,
    /// Elements that joined an existing resident group.
    pub joined: u64,
}

impl GroupStats {
    /// Mean emitted group size (1.0 means grouping found no locality).
    pub fn mean_group_size(&self) -> f64 {
        if self.groups == 0 {
            0.0
        } else {
            self.elements as f64 / self.groups as f64
        }
    }

    /// Accumulates another window.
    pub fn merge(&mut self, other: &GroupStats) {
        self.elements += other.elements;
        self.groups += other.groups;
        self.joined += other.joined;
    }
}

/// Accumulated statistics of one [`crate::device::ScuDevice`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ScuStats {
    /// Operations executed.
    pub ops: u64,
    /// Total pipeline cycles.
    pub scu_cycles: u64,
    /// Total estimated busy time, ns.
    pub time_ns: f64,
    /// Total control-stream elements.
    pub control_elements: u64,
    /// Total data elements through the pipeline.
    pub data_elements: u64,
    /// Total flagged-out elements skipped by the bitmask scanner.
    pub skipped_elements: u64,
    /// Total elements written.
    pub elements_out: u64,
    /// Total issued memory requests.
    pub requests_issued: u64,
    /// Total merged memory requests.
    pub requests_merged: u64,
    /// Memory traffic attributable to the SCU.
    pub mem: MemoryStats,
    /// Accumulated time-bound breakdown.
    pub bounds: ScuBounds,
    /// Filtering effectiveness.
    pub filter: FilterStats,
    /// Grouping effectiveness.
    pub group: GroupStats,
}

impl ScuStats {
    /// Folds one operation's record into the device totals.
    pub fn absorb(&mut self, op: &ScuOpStats) {
        self.ops += 1;
        self.scu_cycles += op.scu_cycles;
        self.time_ns += op.time_ns;
        self.control_elements += op.control_elements;
        self.data_elements += op.data_elements;
        self.skipped_elements += op.skipped_elements;
        self.elements_out += op.elements_out;
        self.requests_issued += op.requests_issued;
        self.requests_merged += op.requests_merged;
        self.mem.merge(&op.mem);
        self.bounds.merge(&op.bounds);
    }

    /// Accumulates another device's totals (e.g. across phases).
    pub fn merge(&mut self, other: &ScuStats) {
        self.ops += other.ops;
        self.scu_cycles += other.scu_cycles;
        self.time_ns += other.time_ns;
        self.control_elements += other.control_elements;
        self.data_elements += other.data_elements;
        self.skipped_elements += other.skipped_elements;
        self.elements_out += other.elements_out;
        self.requests_issued += other.requests_issued;
        self.requests_merged += other.requests_merged;
        self.mem.merge(&other.mem);
        self.bounds.merge(&other.bounds);
        self.filter.merge(&other.filter);
        self.group.merge(&other.group);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_names_are_stable() {
        assert_eq!(OpKind::DataCompaction.name(), "data-compaction");
        assert_eq!(OpKind::AccessExpansionCompaction.name(), "access-expansion");
    }

    #[test]
    fn bounds_max_and_merge() {
        let mut b = ScuBounds {
            pipeline_ns: 3.0,
            memory_ns: 5.0,
            latency_ns: 1.0,
        };
        assert_eq!(b.max_ns(), 5.0);
        b.merge(&ScuBounds {
            pipeline_ns: 1.0,
            memory_ns: 0.0,
            latency_ns: 9.0,
        });
        assert_eq!(b.pipeline_ns, 4.0);
        assert_eq!(b.latency_ns, 10.0);
    }

    #[test]
    fn filter_drop_rate() {
        assert_eq!(FilterStats::default().drop_rate(), 0.0);
        let f = FilterStats {
            probes: 10,
            kept: 3,
            dropped: 7,
            evictions: 0,
        };
        assert!((f.drop_rate() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn group_mean_size() {
        assert_eq!(GroupStats::default().mean_group_size(), 0.0);
        let g = GroupStats {
            elements: 12,
            groups: 3,
            joined: 9,
        };
        assert!((g.mean_group_size() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn absorb_accumulates_ops() {
        let mut s = ScuStats::default();
        let mut op = ScuOpStats::new(OpKind::DataCompaction);
        op.scu_cycles = 100;
        op.time_ns = 50.0;
        op.elements_out = 7;
        s.absorb(&op);
        s.absorb(&op);
        assert_eq!(s.ops, 2);
        assert_eq!(s.scu_cycles, 200);
        assert_eq!(s.elements_out, 14);
        assert_eq!(s.time_ns, 100.0);
    }

    #[test]
    fn merge_combines_filter_and_group() {
        let mut a = ScuStats::default();
        let mut b = ScuStats::default();
        b.filter.probes = 5;
        b.group.elements = 4;
        a.merge(&b);
        assert_eq!(a.filter.probes, 5);
        assert_eq!(a.group.elements, 4);
    }
}

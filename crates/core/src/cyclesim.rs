//! Cycle-stepped validation model of the SCU pipeline.
//!
//! The paper evaluates the SCU with a cycle-accurate simulator (§5).
//! The production path in this crate uses the analytic max-of-bounds
//! model of [`crate::device`]; this module provides an *independent*
//! cycle-stepped simulation of the Figure 7 pipeline — Address
//! Generator → Data Fetch (FIFO, bounded in-flight requests) →
//! memory → Data Store — used by tests to validate that the analytic
//! bounds agree with a step-by-step execution across operating regimes
//! (pipeline-bound, bandwidth-bound, latency-bound).
//!
//! The model is intentionally restricted to a single streaming
//! operation (the shape of *Data Compaction*): elements enter at
//! `pipeline_width` per cycle, each new 128-byte line generates one
//! memory request, at most `coalescer_in_flight` requests may be
//! outstanding, responses return after a fixed latency subject to a
//! bandwidth cap, and elements retire in order once their line has
//! arrived.

use std::collections::VecDeque;

use crate::config::ScuConfig;

/// Parameters of one simulated stream.
#[derive(Debug, Clone, Copy)]
pub struct StreamWorkload {
    /// Elements to stream.
    pub elements: u64,
    /// Bytes per element.
    pub elem_bytes: u32,
    /// Memory latency for one line request, in SCU cycles.
    pub mem_latency_cycles: u32,
    /// Memory bandwidth: line responses deliverable per cycle
    /// (fractional values model sub-line-per-cycle DRAM rates).
    pub lines_per_cycle: f64,
}

/// Result of a cycle-stepped run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleSimResult {
    /// Total cycles until the last element retired.
    pub cycles: u64,
    /// Cycles the front end stalled on the full in-flight window.
    pub fetch_stalls: u64,
    /// Line requests issued.
    pub requests: u64,
}

/// The cycle-stepped pipeline.
#[derive(Debug, Clone)]
pub struct CycleSim {
    width: u64,
    in_flight_cap: usize,
    line_bytes: u64,
}

impl CycleSim {
    /// Builds a simulator from an SCU configuration.
    pub fn new(cfg: &ScuConfig) -> Self {
        CycleSim {
            width: cfg.pipeline_width as u64,
            in_flight_cap: cfg.coalescer_in_flight as usize,
            line_bytes: 128,
        }
    }

    /// Runs the stream to completion, cycle by cycle.
    ///
    /// # Panics
    ///
    /// Panics if the workload streams zero-byte elements or has
    /// non-positive bandwidth.
    pub fn run(&self, w: StreamWorkload) -> CycleSimResult {
        assert!(w.elem_bytes > 0, "elements must have positive size");
        assert!(w.lines_per_cycle > 0.0, "bandwidth must be positive");
        if w.elements == 0 {
            return CycleSimResult {
                cycles: 0,
                fetch_stalls: 0,
                requests: 0,
            };
        }

        let elems_per_line = (self.line_bytes / w.elem_bytes as u64).max(1);
        let total_lines = w.elements.div_ceil(elems_per_line);

        // In-flight request completion times (min-queue by arrival).
        let mut in_flight: VecDeque<u64> = VecDeque::new();
        // Lines whose data has arrived, in issue order, as cumulative
        // count (lines arrive in order thanks to the FIFO).
        let mut lines_arrived: u64 = 0;
        let mut lines_issued: u64 = 0;
        let mut elements_retired: u64 = 0;
        let mut fetch_stalls: u64 = 0;
        // Bandwidth budget: fractional lines deliverable, accumulated
        // per cycle.
        let mut bw_credit: f64 = 0.0;

        let mut cycle: u64 = 0;
        while elements_retired < w.elements {
            cycle += 1;

            // 1. Deliver responses whose latency elapsed, subject to
            //    bandwidth.
            bw_credit += w.lines_per_cycle;
            while bw_credit >= 1.0 {
                match in_flight.front() {
                    Some(&ready_at) if ready_at <= cycle => {
                        in_flight.pop_front();
                        lines_arrived += 1;
                        bw_credit -= 1.0;
                    }
                    _ => break,
                }
            }
            bw_credit = bw_credit.min(8.0); // bounded burst

            // 2. Address generation + fetch: issue requests for new
            //    lines while the window has room.
            let mut issued_this_cycle = 0;
            while lines_issued < total_lines
                && issued_this_cycle < self.width
                && in_flight.len() < self.in_flight_cap
            {
                in_flight.push_back(cycle + w.mem_latency_cycles as u64);
                lines_issued += 1;
                issued_this_cycle += 1;
            }
            if lines_issued < total_lines && in_flight.len() >= self.in_flight_cap {
                fetch_stalls += 1;
            }

            // 3. Retire up to `width` elements whose line has arrived.
            let retire_limit = (lines_arrived * elems_per_line).min(w.elements);
            let can_retire = retire_limit.saturating_sub(elements_retired);
            elements_retired += can_retire.min(self.width);

            // Safety valve against modelling bugs.
            assert!(
                cycle < 64 * w.elements + 1_000_000,
                "cycle simulation failed to converge"
            );
        }

        CycleSimResult {
            cycles: cycle,
            fetch_stalls,
            requests: lines_issued,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(width: u32) -> CycleSim {
        let mut cfg = ScuConfig::tx1();
        cfg.pipeline_width = width;
        CycleSim::new(&cfg)
    }

    /// Unconstrained memory: throughput must converge to the pipeline
    /// width, matching the analytic `elements / width` bound within 5%.
    #[test]
    fn pipeline_bound_matches_analytic() {
        for width in [1u32, 2, 4] {
            let r = sim(width).run(StreamWorkload {
                elements: 100_000,
                elem_bytes: 4,
                mem_latency_cycles: 20,
                lines_per_cycle: 4.0,
            });
            let analytic = 100_000u64.div_ceil(width as u64);
            let ratio = r.cycles as f64 / analytic as f64;
            assert!(
                (0.95..1.10).contains(&ratio),
                "width {width}: cycle-sim {} vs analytic {} (ratio {ratio})",
                r.cycles,
                analytic
            );
        }
    }

    /// Starved memory: cycle count must converge to the bandwidth
    /// bound `lines / lines_per_cycle` (chosen well above the width-4
    /// pipeline bound so bandwidth binds).
    #[test]
    fn bandwidth_bound_matches_analytic() {
        let r = sim(4).run(StreamWorkload {
            elements: 64_000,
            elem_bytes: 4,
            mem_latency_cycles: 20,
            lines_per_cycle: 0.05,
        });
        let lines = 64_000 / 32;
        let analytic = (lines as f64 / 0.05) as u64; // 40_000 cycles
        let ratio = r.cycles as f64 / analytic as f64;
        assert!(
            (0.95..1.10).contains(&ratio),
            "cycle-sim {} vs analytic {} (ratio {ratio})",
            r.cycles,
            analytic
        );
    }

    /// Long-latency memory with a small window: the 32-entry in-flight
    /// cap limits throughput to `window / latency` lines per cycle.
    #[test]
    fn latency_bound_matches_littles_law() {
        let latency = 400u32;
        let r = sim(4).run(StreamWorkload {
            elements: 64_000,
            elem_bytes: 4,
            mem_latency_cycles: latency,
            lines_per_cycle: 4.0,
        });
        let lines = 64_000 / 32;
        // Little's law: 32 outstanding / 400-cycle latency.
        let analytic = lines as f64 * latency as f64 / 32.0;
        let ratio = r.cycles as f64 / analytic;
        assert!(
            (0.95..1.15).contains(&ratio),
            "cycle-sim {} vs Little's law {} (ratio {ratio})",
            r.cycles,
            analytic
        );
        assert!(r.fetch_stalls > 0, "window must have filled");
    }

    #[test]
    fn empty_stream_is_free() {
        let r = sim(1).run(StreamWorkload {
            elements: 0,
            elem_bytes: 4,
            mem_latency_cycles: 10,
            lines_per_cycle: 1.0,
        });
        assert_eq!(r.cycles, 0);
        assert_eq!(r.requests, 0);
    }

    #[test]
    fn requests_match_line_count() {
        let r = sim(1).run(StreamWorkload {
            elements: 1000,
            elem_bytes: 4,
            mem_latency_cycles: 10,
            lines_per_cycle: 1.0,
        });
        assert_eq!(r.requests, 1000u64.div_ceil(32));
    }

    #[test]
    fn wide_elements_generate_more_lines() {
        let narrow = sim(1).run(StreamWorkload {
            elements: 1000,
            elem_bytes: 4,
            mem_latency_cycles: 10,
            lines_per_cycle: 1.0,
        });
        let wide = sim(1).run(StreamWorkload {
            elements: 1000,
            elem_bytes: 8,
            mem_latency_cycles: 10,
            lines_per_cycle: 1.0,
        });
        assert_eq!(narrow.requests, (1000u64 * 4).div_ceil(128));
        assert_eq!(wide.requests, (1000u64 * 8).div_ceil(128));
        assert!(wide.requests > narrow.requests);
    }

    #[test]
    #[should_panic(expected = "positive size")]
    fn zero_byte_elements_rejected() {
        sim(1).run(StreamWorkload {
            elements: 1,
            elem_bytes: 0,
            mem_latency_cycles: 1,
            lines_per_cycle: 1.0,
        });
    }
}

//! The SCU device: five compaction operations plus the enhanced
//! filtering/grouping passes.
//!
//! Every operation executes functionally against
//! [`DeviceArray`] contents and charges time as the maximum of three
//! bounds, mirroring the hardware pipeline of Figure 7:
//!
//! * **pipeline** — `setup + elements / pipeline_width` cycles
//!   (Address Generator throughput);
//! * **memory** — the L2/DRAM service time of the operation's traffic
//!   (sequential streams touch each line once; sparse gathers go
//!   through the Coalescing Unit's 4-element merge window);
//! * **latency** — total *sparse-access* latency (coalescing-unit
//!   gathers and hash probes) divided by the 32-request in-flight
//!   budget. Sequential streams are fully covered by the 38 KB
//!   request FIFO's prefetch depth and contribute bandwidth only.
//!
//! The enhanced passes (§4) implement the two-step scheme: step 1
//! streams the would-be output and produces a filtering bitmask
//! ([`ScuDevice::filter_pass_data`], [`ScuDevice::filter_pass_expansion`])
//! or a grouping reorder vector ([`ScuDevice::group_pass_data`],
//! [`ScuDevice::group_pass_expansion`]); step 2 is the ordinary
//! compaction operation given those vectors.

use scu_mem::buffer::DeviceArray;
use scu_mem::cache::AccessKind;
use scu_mem::coalescer::StreamCoalescer;
use scu_mem::line::LineSize;
use scu_mem::stats::MemoryStats;
use scu_mem::system::MemorySystem;

use scu_trace::{Event, MemSource, Probe};

use crate::config::ScuConfig;
use crate::group::GroupHash;
use crate::hash::{FilterHash, FilterMode};
use crate::stats::{FilterStats, GroupStats, OpKind, ScuBounds, ScuOpStats, ScuStats};
use crate::streams::SeqStream;

/// Comparison operator of the Bitmask Constructor operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// Keep elements equal to the reference.
    Eq,
    /// Keep elements different from the reference.
    Ne,
    /// Keep elements strictly below the reference.
    Lt,
    /// Keep elements at or below the reference.
    Le,
    /// Keep elements strictly above the reference.
    Gt,
    /// Keep elements at or above the reference.
    Ge,
}

impl CompareOp {
    /// Evaluates `value <op> reference`.
    #[inline]
    pub fn eval<T: PartialOrd>(self, value: T, reference: T) -> bool {
        match self {
            CompareOp::Eq => value == reference,
            CompareOp::Ne => value != reference,
            CompareOp::Lt => value < reference,
            CompareOp::Le => value <= reference,
            CompareOp::Gt => value > reference,
            CompareOp::Ge => value >= reference,
        }
    }
}

/// Flagged-out elements per lane-cycle the bitmask scanner can skip
/// without occupying a full pipeline slot: step 2 of the enhanced
/// scheme (§4.1) reads the filtering vector first, so dropped elements
/// are never fetched and only stream through the scanner.
const FLAG_SKIP_RATE: u64 = 4;

/// Per-operation accounting state.
struct OpRun {
    kind: OpKind,
    mem_before: MemoryStats,
    service_before: f64,
    control: u64,
    data: u64,
    skipped: u64,
    out: u64,
    latency_ns: f64,
    issued: u64,
    merged: u64,
    filter_window: FilterStats,
    group_window: GroupStats,
}

/// The Stream Compaction Unit device model.
///
/// One instance corresponds to the single SCU attached to the GPU
/// interconnect (Figure 5). Operations run to completion one at a time
/// — the unit processes compaction sequentially, "avoiding
/// synchronization and work distribution overheads" (§3).
#[derive(Debug, Clone)]
pub struct ScuDevice {
    cfg: ScuConfig,
    stats: ScuStats,
    probe: Probe,
}

impl ScuDevice {
    /// Creates an idle device.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`ScuConfig::validate`].
    pub fn new(cfg: ScuConfig) -> Self {
        cfg.validate().expect("invalid SCU config");
        ScuDevice {
            cfg,
            stats: ScuStats::default(),
            probe: Probe::off(),
        }
    }

    /// The configuration this device was built with.
    pub fn config(&self) -> &ScuConfig {
        &self.cfg
    }

    /// Attaches (or detaches, with [`Probe::off`]) the trace probe
    /// through which finished operations emit [`Event::ScuOpRetired`].
    pub fn set_probe(&mut self, probe: Probe) {
        self.probe = probe;
    }

    /// Accumulated device statistics.
    pub fn stats(&self) -> &ScuStats {
        &self.stats
    }

    /// Resets accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.stats = ScuStats::default();
    }

    fn begin(&self, mem: &MemorySystem, kind: OpKind) -> OpRun {
        OpRun {
            kind,
            mem_before: mem.stats(),
            service_before: mem.service_time_ns(),
            control: 0,
            data: 0,
            skipped: 0,
            out: 0,
            latency_ns: 0.0,
            issued: 0,
            merged: 0,
            filter_window: FilterStats::default(),
            group_window: GroupStats::default(),
        }
    }

    fn finish(&mut self, mem: &mut MemorySystem, run: OpRun) -> ScuOpStats {
        // The Address Generator walks control streams while Data
        // Fetch/Store move data elements: distinct pipeline stages that
        // overlap, so occupancy is the slower stage, not their sum.
        // Flagged-out elements only pass the bitmask scanner, which
        // consumes FLAG_SKIP_RATE of them per lane-cycle.
        let slots = run.control.max(run.data + run.skipped / FLAG_SKIP_RATE);
        let cycles =
            self.cfg.op_setup_cycles as u64 + slots.div_ceil(self.cfg.pipeline_width as u64);
        let pipeline_ns = cycles as f64 * self.cfg.cycle_ns() + self.cfg.op_issue_ns;
        let memory_ns =
            (mem.service_time_ns() - run.service_before).max(0.0) / self.cfg.dram_efficiency;
        let latency_ns = run.latency_ns / self.cfg.coalescer_in_flight as f64;
        let bounds = ScuBounds {
            pipeline_ns,
            memory_ns,
            latency_ns,
        };
        let op = ScuOpStats {
            op: run.kind,
            control_elements: run.control,
            data_elements: run.data,
            skipped_elements: run.skipped,
            elements_out: run.out,
            scu_cycles: cycles,
            requests_issued: run.issued,
            requests_merged: run.merged,
            mem: mem.stats().since(&run.mem_before),
            bounds,
            time_ns: bounds.max_ns(),
        };
        self.stats.absorb(&op);
        if self.probe.is_on() {
            self.probe.emit(Event::ScuOpRetired {
                op: Box::new(op),
                filter: run.filter_window,
                group: run.group_window,
            });
            mem.emit_window(MemSource::Scu);
        }
        op
    }

    fn gather_coalescer(&self) -> StreamCoalescer {
        StreamCoalescer::new(LineSize::L128, self.cfg.coalescer_merge_window as usize)
    }

    /// Drives one sparse request through a coalescing unit, charging
    /// issued lines to memory.
    fn gather(
        run: &mut OpRun,
        co: &mut StreamCoalescer,
        mem: &mut MemorySystem,
        addr: u64,
        kind: AccessKind,
    ) {
        match co.push(addr) {
            Some(line) => {
                run.issued += 1;
                let out = mem.access(line, kind);
                run.latency_ns += out.latency_ns;
            }
            None => run.merged += 1,
        }
    }

    // ------------------------------------------------------------------
    // The five operations of Figure 6.
    // ------------------------------------------------------------------

    /// *Bitmask Constructor*: compares the first `count` elements of
    /// `src` against `reference` and writes a 0/1 flag per element.
    ///
    /// # Panics
    ///
    /// Panics if `flags_out` is shorter than `count` or `src` is
    /// shorter than `count`.
    pub fn bitmask_construct<T: Copy + PartialOrd>(
        &mut self,
        mem: &mut MemorySystem,
        src: &DeviceArray<T>,
        count: usize,
        cmp: CompareOp,
        reference: T,
        flags_out: &mut DeviceArray<u8>,
    ) -> ScuOpStats {
        let mut run = self.begin(mem, OpKind::BitmaskConstructor);
        let mut src_rd = SeqStream::new(AccessKind::Read);
        let mut flag_wr = SeqStream::new(AccessKind::Write);
        let esz = src.elem_bytes() as u64;
        for i in 0..count {
            src_rd.touch(mem, src.addr(i), esz);
            let keep = cmp.eval(src.get(i), reference);
            flag_wr.touch(mem, flags_out.addr(i), 1);
            flags_out.set(i, keep as u8);
            run.data += 1;
            run.out += 1;
        }
        run.issued += src_rd.accesses() + flag_wr.accesses();
        self.finish(mem, run)
    }

    /// *Data Compaction*: streams `count` elements of `src`, keeps
    /// those whose flag is nonzero (all, when `flags` is `None`), and
    /// writes them contiguously into `dst` — or, when a grouping
    /// `order` vector is given, writes the k-th kept element at
    /// `dst[order[k]]`.
    ///
    /// # Panics
    ///
    /// Panics if any input is shorter than `count`, or `dst` cannot
    /// hold the kept elements.
    pub fn data_compaction<T: Copy>(
        &mut self,
        mem: &mut MemorySystem,
        src: &DeviceArray<T>,
        flags: Option<&DeviceArray<u8>>,
        dst: &mut DeviceArray<T>,
    ) -> ScuOpStats {
        let count = src.len();
        self.data_compaction_n(mem, src, count, flags, None, dst, 0)
    }

    /// [`ScuDevice::data_compaction`] with an explicit element count,
    /// optional grouping order vector, and a destination offset (kept
    /// elements land at `dst[dst_offset + position]` — used to append
    /// to the SSSP far pile).
    #[allow(clippy::too_many_arguments)]
    pub fn data_compaction_n<T: Copy>(
        &mut self,
        mem: &mut MemorySystem,
        src: &DeviceArray<T>,
        count: usize,
        flags: Option<&DeviceArray<u8>>,
        order: Option<&DeviceArray<u32>>,
        dst: &mut DeviceArray<T>,
        dst_offset: usize,
    ) -> ScuOpStats {
        let mut run = self.begin(mem, OpKind::DataCompaction);
        let mut src_rd = SeqStream::new(AccessKind::Read);
        let mut flag_rd = SeqStream::new(AccessKind::Read);
        let mut order_rd = SeqStream::new(AccessKind::Read);
        let mut dst_wr = SeqStream::new(AccessKind::Write);
        let mut scatter = self.gather_coalescer();
        let esz = src.elem_bytes() as u64;

        for i in 0..count {
            src_rd.touch(mem, src.addr(i), esz);
            let keep = match flags {
                Some(f) => {
                    flag_rd.touch(mem, f.addr(i), 1);
                    f.get(i) != 0
                }
                None => true,
            };
            if keep {
                run.data += 1;
                let k = run.out as usize;
                let pos = dst_offset
                    + match order {
                        Some(o) => {
                            order_rd.touch(mem, o.addr(k), 4);
                            o.get(k) as usize
                        }
                        None => k,
                    };
                if order.is_some() {
                    Self::gather(
                        &mut run,
                        &mut scatter,
                        mem,
                        dst.addr(pos),
                        AccessKind::Write,
                    );
                } else {
                    dst_wr.touch(mem, dst.addr(pos), esz);
                }
                dst.set(pos, src.get(i));
                run.out += 1;
            } else {
                run.skipped += 1;
            }
        }
        run.issued +=
            src_rd.accesses() + flag_rd.accesses() + order_rd.accesses() + dst_wr.accesses();
        self.finish(mem, run)
    }

    /// *Access Compaction*: streams `count` entries of `indexes`,
    /// keeps flagged ones, gathers `src[index]` through the coalescing
    /// unit, and writes the gathered elements contiguously into `dst`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indexes or a too-small `dst`.
    pub fn access_compaction<T: Copy>(
        &mut self,
        mem: &mut MemorySystem,
        src: &DeviceArray<T>,
        indexes: &DeviceArray<u32>,
        count: usize,
        flags: Option<&DeviceArray<u8>>,
        dst: &mut DeviceArray<T>,
    ) -> ScuOpStats {
        let mut run = self.begin(mem, OpKind::AccessCompaction);
        let mut idx_rd = SeqStream::new(AccessKind::Read);
        let mut flag_rd = SeqStream::new(AccessKind::Read);
        let mut dst_wr = SeqStream::new(AccessKind::Write);
        let mut co = self.gather_coalescer();
        let esz = src.elem_bytes() as u64;

        for i in 0..count {
            idx_rd.touch(mem, indexes.addr(i), 4);
            let keep = match flags {
                Some(f) => {
                    flag_rd.touch(mem, f.addr(i), 1);
                    f.get(i) != 0
                }
                None => true,
            };
            if keep {
                let idx = indexes.get(i) as usize;
                Self::gather(&mut run, &mut co, mem, src.addr(idx), AccessKind::Read);
                run.data += 1;
                let k = run.out as usize;
                dst_wr.touch(mem, dst.addr(k), esz);
                dst.set(k, src.get(idx));
                run.out += 1;
            } else {
                run.skipped += 1;
            }
        }
        run.issued += idx_rd.accesses() + flag_rd.accesses() + dst_wr.accesses();
        self.finish(mem, run)
    }

    /// *Replication Compaction*: streams `count` elements of `src`
    /// with their `counts` entries; each kept element is written
    /// `counts[i]` times into `dst`.
    ///
    /// `elem_flags`, when given, additionally filters individual
    /// *replicated* copies (indexed by the running expanded-element
    /// counter) — used when a filtering bitmask produced over the
    /// matching expansion stream must be applied to the replicated
    /// stream as well.
    ///
    /// # Panics
    ///
    /// Panics if inputs are shorter than `count` or `dst` cannot hold
    /// the replicated output.
    #[allow(clippy::too_many_arguments)]
    pub fn replication_compaction<T: Copy>(
        &mut self,
        mem: &mut MemorySystem,
        src: &DeviceArray<T>,
        counts: &DeviceArray<u32>,
        count: usize,
        flags: Option<&DeviceArray<u8>>,
        elem_flags: Option<&DeviceArray<u8>>,
        dst: &mut DeviceArray<T>,
    ) -> ScuOpStats {
        let mut run = self.begin(mem, OpKind::ReplicationCompaction);
        let mut src_rd = SeqStream::new(AccessKind::Read);
        let mut cnt_rd = SeqStream::new(AccessKind::Read);
        let mut flag_rd = SeqStream::new(AccessKind::Read);
        let mut eflag_rd = SeqStream::new(AccessKind::Read);
        let mut dst_wr = SeqStream::new(AccessKind::Write);
        let esz = src.elem_bytes() as u64;

        let mut e = 0usize;
        for i in 0..count {
            run.control += 1;
            src_rd.touch(mem, src.addr(i), esz);
            cnt_rd.touch(mem, counts.addr(i), 4);
            let keep = match flags {
                Some(f) => {
                    flag_rd.touch(mem, f.addr(i), 1);
                    f.get(i) != 0
                }
                None => true,
            };
            if keep {
                let v = src.get(i);
                for _ in 0..counts.get(i) {
                    let copy_keep = match elem_flags {
                        Some(f) => {
                            eflag_rd.touch(mem, f.addr(e), 1);
                            f.get(e) != 0
                        }
                        None => true,
                    };
                    e += 1;
                    if !copy_keep {
                        run.skipped += 1;
                        continue;
                    }
                    run.data += 1;
                    let k = run.out as usize;
                    dst_wr.touch(mem, dst.addr(k), esz);
                    dst.set(k, v);
                    run.out += 1;
                }
            } else {
                run.skipped += counts.get(i) as u64;
                e += counts.get(i) as usize;
            }
        }
        run.issued += eflag_rd.accesses();
        run.issued +=
            src_rd.accesses() + cnt_rd.accesses() + flag_rd.accesses() + dst_wr.accesses();
        self.finish(mem, run)
    }

    /// *Access Expansion Compaction*: for each kept control entry `i`,
    /// gathers the `counts[i]` consecutive elements of `src` starting
    /// at `indexes[i]` (a CSR adjacency slice) and appends them to
    /// `dst`.
    ///
    /// `elem_flags`, when given, filters individual *expanded*
    /// elements (indexed by the running expanded-element counter) —
    /// this is how the enhanced SCU applies a filtering bitmask
    /// produced by [`ScuDevice::filter_pass_expansion`]. `order`, when
    /// given, maps the k-th kept output to `dst[order[k]]` (grouping).
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds accesses or a too-small `dst`.
    #[allow(clippy::too_many_arguments)]
    pub fn access_expansion_compaction<T: Copy>(
        &mut self,
        mem: &mut MemorySystem,
        src: &DeviceArray<T>,
        indexes: &DeviceArray<u32>,
        counts: &DeviceArray<u32>,
        count: usize,
        elem_flags: Option<&DeviceArray<u8>>,
        order: Option<&DeviceArray<u32>>,
        dst: &mut DeviceArray<T>,
    ) -> ScuOpStats {
        let mut run = self.begin(mem, OpKind::AccessExpansionCompaction);
        let mut idx_rd = SeqStream::new(AccessKind::Read);
        let mut flag_rd = SeqStream::new(AccessKind::Read);
        let mut order_rd = SeqStream::new(AccessKind::Read);
        let mut dst_wr = SeqStream::new(AccessKind::Write);
        let mut co = self.gather_coalescer();
        let mut scatter = self.gather_coalescer();
        let esz = src.elem_bytes() as u64;

        let mut e = 0usize; // running expanded-element counter
        for i in 0..count {
            run.control += 1;
            idx_rd.touch(mem, indexes.addr(i), 4);
            idx_rd.touch(mem, counts.addr(i), 4);
            let start = indexes.get(i) as usize;
            let n = counts.get(i) as usize;
            for j in 0..n {
                let keep = match elem_flags {
                    Some(f) => {
                        flag_rd.touch(mem, f.addr(e), 1);
                        f.get(e) != 0
                    }
                    None => true,
                };
                if keep {
                    Self::gather(
                        &mut run,
                        &mut co,
                        mem,
                        src.addr(start + j),
                        AccessKind::Read,
                    );
                    run.data += 1;
                    let k = run.out as usize;
                    let pos = match order {
                        Some(o) => {
                            order_rd.touch(mem, o.addr(k), 4);
                            o.get(k) as usize
                        }
                        None => k,
                    };
                    if order.is_some() {
                        Self::gather(
                            &mut run,
                            &mut scatter,
                            mem,
                            dst.addr(pos),
                            AccessKind::Write,
                        );
                    } else {
                        dst_wr.touch(mem, dst.addr(pos), esz);
                    }
                    dst.set(pos, src.get(start + j));
                    run.out += 1;
                } else {
                    run.skipped += 1;
                }
                e += 1;
            }
        }
        run.issued +=
            idx_rd.accesses() + flag_rd.accesses() + order_rd.accesses() + dst_wr.accesses();
        self.finish(mem, run)
    }

    // ------------------------------------------------------------------
    // Enhanced SCU: step-1 passes (§4).
    // ------------------------------------------------------------------

    /// Filtering step 1 over a dense element stream: probes each
    /// flagged-valid element of `src` (IDs) in the hash and writes the
    /// keep/drop decision to `flags_out`. `costs`, when given, selects
    /// unique-best-cost mode using the aligned cost stream.
    ///
    /// # Panics
    ///
    /// Panics if array lengths are shorter than `count`, or if `mode`
    /// is [`FilterMode::UniqueBestCost`] but `costs` is `None`.
    #[allow(clippy::too_many_arguments)]
    pub fn filter_pass_data(
        &mut self,
        mem: &mut MemorySystem,
        src: &DeviceArray<u32>,
        count: usize,
        flags_in: Option<&DeviceArray<u8>>,
        mode: FilterMode,
        costs: Option<&DeviceArray<u32>>,
        hash: &mut FilterHash,
        flags_out: &mut DeviceArray<u8>,
    ) -> ScuOpStats {
        assert!(
            mode == FilterMode::Unique || costs.is_some(),
            "unique-best-cost filtering requires a cost stream"
        );
        let mut run = self.begin(mem, OpKind::FilterPass);
        let filter_before = hash.stats();
        let hash_lat_before = hash.latency_ns();
        let mut src_rd = SeqStream::new(AccessKind::Read);
        let mut cost_rd = SeqStream::new(AccessKind::Read);
        let mut flag_rd = SeqStream::new(AccessKind::Read);
        let mut flag_wr = SeqStream::new(AccessKind::Write);

        for i in 0..count {
            src_rd.touch(mem, src.addr(i), 4);
            let valid = match flags_in {
                Some(f) => {
                    flag_rd.touch(mem, f.addr(i), 1);
                    f.get(i) != 0
                }
                None => true,
            };
            let keep = if valid {
                run.data += 1;
                let id = src.get(i);
                match mode {
                    FilterMode::Unique => hash.probe_unique(mem, id),
                    FilterMode::UniqueBestCost => {
                        let c = costs.expect("checked above");
                        cost_rd.touch(mem, c.addr(i), 4);
                        hash.probe_best_cost(mem, id, c.get(i))
                    }
                }
            } else {
                run.skipped += 1;
                false
            };
            flag_wr.touch(mem, flags_out.addr(i), 1);
            flags_out.set(i, keep as u8);
            if keep {
                run.out += 1;
            }
        }
        run.latency_ns += hash.latency_ns() - hash_lat_before;
        run.issued +=
            src_rd.accesses() + cost_rd.accesses() + flag_rd.accesses() + flag_wr.accesses();
        let mut window = hash.stats();
        window = {
            let mut w = window;
            w.probes -= filter_before.probes;
            w.kept -= filter_before.kept;
            w.dropped -= filter_before.dropped;
            w.evictions -= filter_before.evictions;
            w
        };
        run.filter_window = window;
        self.stats.filter.merge(&run.filter_window);
        self.finish(mem, run)
    }

    /// Filtering step 1 over an expanded (CSR-sliced) stream: probes
    /// each expanded element of `src`, writing a keep/drop flag per
    /// expanded element into `flags_out` (length = sum of `counts`).
    ///
    /// In [`FilterMode::Unique`] the probe key is the element value
    /// (BFS: destination node ID). In
    /// [`FilterMode::UniqueBestCost`] the probe cost is
    /// `base[i] + weights[indexes[i] + j]` — the candidate path cost of
    /// the expanded edge; the filter unit includes the one adder this
    /// requires (SSSP, §4.2).
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds accesses, or if `mode` is
    /// [`FilterMode::UniqueBestCost`] and `weights`/`base` is `None`.
    #[allow(clippy::too_many_arguments)]
    pub fn filter_pass_expansion(
        &mut self,
        mem: &mut MemorySystem,
        src: &DeviceArray<u32>,
        weights: Option<&DeviceArray<u32>>,
        indexes: &DeviceArray<u32>,
        counts: &DeviceArray<u32>,
        count: usize,
        base: Option<&DeviceArray<u32>>,
        mode: FilterMode,
        hash: &mut FilterHash,
        flags_out: &mut DeviceArray<u8>,
    ) -> ScuOpStats {
        assert!(
            mode == FilterMode::Unique || (weights.is_some() && base.is_some()),
            "unique-best-cost expansion filtering requires weights and base costs"
        );
        let mut run = self.begin(mem, OpKind::FilterPass);
        let filter_before = hash.stats();
        let hash_lat_before = hash.latency_ns();
        let mut idx_rd = SeqStream::new(AccessKind::Read);
        let mut flag_wr = SeqStream::new(AccessKind::Write);
        let mut co = self.gather_coalescer();
        let mut wco = self.gather_coalescer();

        let mut e = 0usize;
        for i in 0..count {
            run.control += 1;
            idx_rd.touch(mem, indexes.addr(i), 4);
            idx_rd.touch(mem, counts.addr(i), 4);
            if let Some(b) = base {
                idx_rd.touch(mem, b.addr(i), 4);
            }
            let start = indexes.get(i) as usize;
            for j in 0..counts.get(i) as usize {
                Self::gather(
                    &mut run,
                    &mut co,
                    mem,
                    src.addr(start + j),
                    AccessKind::Read,
                );
                run.data += 1;
                let id = src.get(start + j);
                let keep = match mode {
                    FilterMode::Unique => hash.probe_unique(mem, id),
                    FilterMode::UniqueBestCost => {
                        let w = weights.expect("checked above");
                        Self::gather(&mut run, &mut wco, mem, w.addr(start + j), AccessKind::Read);
                        let cost = base
                            .expect("checked above")
                            .get(i)
                            .saturating_add(w.get(start + j));
                        hash.probe_best_cost(mem, id, cost)
                    }
                };
                flag_wr.touch(mem, flags_out.addr(e), 1);
                flags_out.set(e, keep as u8);
                if keep {
                    run.out += 1;
                }
                e += 1;
            }
        }
        run.latency_ns += hash.latency_ns() - hash_lat_before;
        run.issued += idx_rd.accesses() + flag_wr.accesses();
        let after = hash.stats();
        run.filter_window = crate::stats::FilterStats {
            probes: after.probes - filter_before.probes,
            kept: after.kept - filter_before.kept,
            dropped: after.dropped - filter_before.dropped,
            evictions: after.evictions - filter_before.evictions,
        };
        self.stats.filter.merge(&run.filter_window);
        self.finish(mem, run)
    }

    /// Grouping step 1 over a dense element stream: for each kept
    /// element (per `flags_in`), computes the memory block of its
    /// destination entry in `target` and assigns output positions so
    /// same-block elements are consecutive. Writes `order_out[k] =
    /// output position of the k-th kept element`.
    ///
    /// Returns the op stats; the number of kept elements is
    /// `elements_out`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds accesses.
    #[allow(clippy::too_many_arguments)]
    pub fn group_pass_data<T: Copy>(
        &mut self,
        mem: &mut MemorySystem,
        src: &DeviceArray<u32>,
        count: usize,
        flags_in: Option<&DeviceArray<u8>>,
        target: &DeviceArray<T>,
        hash: &mut GroupHash,
        order_out: &mut DeviceArray<u32>,
    ) -> ScuOpStats {
        let mut run = self.begin(mem, OpKind::GroupPass);
        let group_before = hash.stats();
        let hash_lat_before = hash.latency_ns();
        let mut src_rd = SeqStream::new(AccessKind::Read);
        let mut flag_rd = SeqStream::new(AccessKind::Read);
        let mut order_wr = self.gather_coalescer();

        let mut next_pos = 0u32;
        let emit = |run: &mut OpRun,
                    mem: &mut MemorySystem,
                    order_wr: &mut StreamCoalescer,
                    order_out: &mut DeviceArray<u32>,
                    members: Vec<u32>,
                    next_pos: &mut u32| {
            for m in members {
                Self::gather(
                    run,
                    order_wr,
                    mem,
                    order_out.addr(m as usize),
                    AccessKind::Write,
                );
                order_out.set(m as usize, *next_pos);
                *next_pos += 1;
            }
        };

        for i in 0..count {
            src_rd.touch(mem, src.addr(i), 4);
            let valid = match flags_in {
                Some(f) => {
                    flag_rd.touch(mem, f.addr(i), 1);
                    f.get(i) != 0
                }
                None => true,
            };
            if !valid {
                run.skipped += 1;
                continue;
            }
            run.data += 1;
            let k = run.out as u32;
            let dest = src.get(i) as usize;
            let block = LineSize::L128.index_of(target.addr(dest));
            if let Some(members) = hash.push(mem, k, block) {
                emit(
                    &mut run,
                    mem,
                    &mut order_wr,
                    order_out,
                    members,
                    &mut next_pos,
                );
            }
            run.out += 1;
        }
        for members in hash.flush() {
            emit(
                &mut run,
                mem,
                &mut order_wr,
                order_out,
                members,
                &mut next_pos,
            );
        }

        run.latency_ns += hash.latency_ns() - hash_lat_before;
        run.issued += src_rd.accesses() + flag_rd.accesses();
        let after = hash.stats();
        run.group_window = crate::stats::GroupStats {
            elements: after.elements - group_before.elements,
            groups: after.groups - group_before.groups,
            joined: after.joined - group_before.joined,
        };
        self.stats.group.merge(&run.group_window);
        self.finish(mem, run)
    }

    /// Grouping step 1 over an expanded (CSR-sliced) stream; see
    /// [`ScuDevice::group_pass_data`]. `elem_flags` filters individual
    /// expanded elements (the filtering vector from step 1 of the
    /// enhanced expansion), so grouping only orders elements that
    /// survive filtering.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds accesses.
    #[allow(clippy::too_many_arguments)]
    pub fn group_pass_expansion<T: Copy>(
        &mut self,
        mem: &mut MemorySystem,
        src: &DeviceArray<u32>,
        indexes: &DeviceArray<u32>,
        counts: &DeviceArray<u32>,
        count: usize,
        elem_flags: Option<&DeviceArray<u8>>,
        target: &DeviceArray<T>,
        hash: &mut GroupHash,
        order_out: &mut DeviceArray<u32>,
    ) -> ScuOpStats {
        let mut run = self.begin(mem, OpKind::GroupPass);
        let group_before = hash.stats();
        let hash_lat_before = hash.latency_ns();
        let mut idx_rd = SeqStream::new(AccessKind::Read);
        let mut flag_rd = SeqStream::new(AccessKind::Read);
        let mut co = self.gather_coalescer();
        let mut order_wr = self.gather_coalescer();

        let mut next_pos = 0u32;
        let mut pending: Vec<Vec<u32>> = Vec::new();

        let mut e = 0usize;
        for i in 0..count {
            run.control += 1;
            idx_rd.touch(mem, indexes.addr(i), 4);
            idx_rd.touch(mem, counts.addr(i), 4);
            let start = indexes.get(i) as usize;
            for j in 0..counts.get(i) as usize {
                let keep = match elem_flags {
                    Some(f) => {
                        flag_rd.touch(mem, f.addr(e), 1);
                        f.get(e) != 0
                    }
                    None => true,
                };
                e += 1;
                if !keep {
                    run.skipped += 1;
                    continue;
                }
                Self::gather(
                    &mut run,
                    &mut co,
                    mem,
                    src.addr(start + j),
                    AccessKind::Read,
                );
                run.data += 1;
                let k = run.out as u32;
                let dest = src.get(start + j) as usize;
                let block = LineSize::L128.index_of(target.addr(dest));
                if let Some(members) = hash.push(mem, k, block) {
                    pending.push(members);
                }
                run.out += 1;
            }
        }
        pending.extend(hash.flush());
        for members in pending {
            for m in members {
                Self::gather(
                    &mut run,
                    &mut order_wr,
                    mem,
                    order_out.addr(m as usize),
                    AccessKind::Write,
                );
                order_out.set(m as usize, next_pos);
                next_pos += 1;
            }
        }

        run.latency_ns += hash.latency_ns() - hash_lat_before;
        run.issued += idx_rd.accesses() + flag_rd.accesses();
        let after = hash.stats();
        run.group_window = crate::stats::GroupStats {
            elements: after.elements - group_before.elements,
            groups: after.groups - group_before.groups,
            joined: after.joined - group_before.joined,
        };
        self.stats.group.merge(&run.group_window);
        self.finish(mem, run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HashTableConfig;
    use scu_mem::buffer::DeviceAllocator;
    use scu_mem::system::MemorySystemConfig;

    fn setup() -> (ScuDevice, MemorySystem, DeviceAllocator) {
        (
            ScuDevice::new(ScuConfig::tx1()),
            MemorySystem::new(MemorySystemConfig::tx1()),
            DeviceAllocator::new(),
        )
    }

    #[test]
    fn bitmask_constructor_compares() {
        let (mut scu, mut mem, mut alloc) = setup();
        let src = DeviceArray::from_vec(&mut alloc, vec![1u32, 5, 3, 9, 2]);
        let mut flags: DeviceArray<u8> = DeviceArray::zeroed(&mut alloc, 5);
        let op = scu.bitmask_construct(&mut mem, &src, 5, CompareOp::Lt, 4, &mut flags);
        assert_eq!(flags.as_slice(), &[1, 0, 1, 0, 1]);
        assert_eq!(op.data_elements, 5);
        assert!(op.time_ns > 0.0);
    }

    #[test]
    fn compare_ops_all_work() {
        assert!(CompareOp::Eq.eval(3, 3));
        assert!(CompareOp::Ne.eval(3, 4));
        assert!(CompareOp::Lt.eval(3, 4));
        assert!(CompareOp::Le.eval(4, 4));
        assert!(CompareOp::Gt.eval(5, 4));
        assert!(CompareOp::Ge.eval(4, 4));
        assert!(!CompareOp::Eq.eval(3, 4));
    }

    #[test]
    fn data_compaction_preserves_order() {
        let (mut scu, mut mem, mut alloc) = setup();
        let src = DeviceArray::from_vec(&mut alloc, vec![10u32, 20, 30, 40]);
        let flags = DeviceArray::from_vec(&mut alloc, vec![0u8, 1, 1, 0]);
        let mut dst: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 4);
        let op = scu.data_compaction(&mut mem, &src, Some(&flags), &mut dst);
        assert_eq!(op.elements_out, 2);
        assert_eq!(&dst.as_slice()[..2], &[20, 30]);
    }

    #[test]
    fn data_compaction_no_flags_copies_all() {
        let (mut scu, mut mem, mut alloc) = setup();
        let src = DeviceArray::from_vec(&mut alloc, vec![1u32, 2, 3]);
        let mut dst: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 3);
        let op = scu.data_compaction(&mut mem, &src, None, &mut dst);
        assert_eq!(op.elements_out, 3);
        assert_eq!(dst.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn access_compaction_gathers() {
        let (mut scu, mut mem, mut alloc) = setup();
        let src = DeviceArray::from_vec(&mut alloc, (0u32..100).map(|i| i * 10).collect());
        let indexes = DeviceArray::from_vec(&mut alloc, vec![5u32, 50, 99]);
        let flags = DeviceArray::from_vec(&mut alloc, vec![1u8, 0, 1]);
        let mut dst: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 3);
        let op = scu.access_compaction(&mut mem, &src, &indexes, 3, Some(&flags), &mut dst);
        assert_eq!(op.elements_out, 2);
        assert_eq!(&dst.as_slice()[..2], &[50, 990]);
    }

    #[test]
    fn replication_compaction_repeats() {
        let (mut scu, mut mem, mut alloc) = setup();
        let src = DeviceArray::from_vec(&mut alloc, vec![7u32, 8, 9]);
        let counts = DeviceArray::from_vec(&mut alloc, vec![2u32, 0, 3]);
        let mut dst: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 5);
        let op = scu.replication_compaction(&mut mem, &src, &counts, 3, None, None, &mut dst);
        assert_eq!(op.elements_out, 5);
        assert_eq!(dst.as_slice(), &[7, 7, 9, 9, 9]);
    }

    #[test]
    fn access_expansion_expands_csr_slices() {
        let (mut scu, mut mem, mut alloc) = setup();
        // "edges" array; expand slices [2..5) and [7..9).
        let src = DeviceArray::from_vec(&mut alloc, (100u32..120).collect());
        let indexes = DeviceArray::from_vec(&mut alloc, vec![2u32, 7]);
        let counts = DeviceArray::from_vec(&mut alloc, vec![3u32, 2]);
        let mut dst: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 5);
        let op = scu.access_expansion_compaction(
            &mut mem, &src, &indexes, &counts, 2, None, None, &mut dst,
        );
        assert_eq!(op.elements_out, 5);
        assert_eq!(dst.as_slice(), &[102, 103, 104, 107, 108]);
    }

    #[test]
    fn access_expansion_applies_element_flags() {
        let (mut scu, mut mem, mut alloc) = setup();
        let src = DeviceArray::from_vec(&mut alloc, (0u32..10).collect());
        let indexes = DeviceArray::from_vec(&mut alloc, vec![0u32, 5]);
        let counts = DeviceArray::from_vec(&mut alloc, vec![3u32, 3]);
        // 6 expanded elements 0,1,2,5,6,7; keep elements 1, 5, 7.
        let flags = DeviceArray::from_vec(&mut alloc, vec![0u8, 1, 0, 1, 0, 1]);
        let mut dst: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 6);
        let op = scu.access_expansion_compaction(
            &mut mem,
            &src,
            &indexes,
            &counts,
            2,
            Some(&flags),
            None,
            &mut dst,
        );
        assert_eq!(op.elements_out, 3);
        assert_eq!(&dst.as_slice()[..3], &[1, 5, 7]);
    }

    #[test]
    fn filter_pass_drops_duplicates() {
        let (mut scu, mut mem, mut alloc) = setup();
        let mut hash = FilterHash::new(
            &mut alloc,
            HashTableConfig {
                size_bytes: 128 * 1024,
                ways: 16,
                entry_bytes: 4,
            },
        );
        let src = DeviceArray::from_vec(&mut alloc, vec![3u32, 5, 3, 7, 5, 3]);
        let mut flags: DeviceArray<u8> = DeviceArray::zeroed(&mut alloc, 6);
        let op = scu.filter_pass_data(
            &mut mem,
            &src,
            6,
            None,
            FilterMode::Unique,
            None,
            &mut hash,
            &mut flags,
        );
        assert_eq!(flags.as_slice(), &[1, 1, 0, 1, 0, 0]);
        assert_eq!(op.elements_out, 3);
        assert_eq!(scu.stats().filter.dropped, 3);
    }

    #[test]
    fn filter_then_compact_round_trip() {
        let (mut scu, mut mem, mut alloc) = setup();
        let mut hash = FilterHash::new(
            &mut alloc,
            HashTableConfig {
                size_bytes: 128 * 1024,
                ways: 16,
                entry_bytes: 4,
            },
        );
        let src = DeviceArray::from_vec(&mut alloc, vec![9u32, 9, 4, 4, 1]);
        let mut flags: DeviceArray<u8> = DeviceArray::zeroed(&mut alloc, 5);
        scu.filter_pass_data(
            &mut mem,
            &src,
            5,
            None,
            FilterMode::Unique,
            None,
            &mut hash,
            &mut flags,
        );
        let mut dst: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 5);
        let op = scu.data_compaction(&mut mem, &src, Some(&flags), &mut dst);
        assert_eq!(op.elements_out, 3);
        assert_eq!(&dst.as_slice()[..3], &[9, 4, 1]);
    }

    #[test]
    fn filter_pass_best_cost_mode() {
        let (mut scu, mut mem, mut alloc) = setup();
        let mut hash = FilterHash::new(
            &mut alloc,
            HashTableConfig {
                size_bytes: 128 * 1024,
                ways: 16,
                entry_bytes: 8,
            },
        );
        let src = DeviceArray::from_vec(&mut alloc, vec![1u32, 1, 1]);
        let costs = DeviceArray::from_vec(&mut alloc, vec![10u32, 5, 8]);
        let mut flags: DeviceArray<u8> = DeviceArray::zeroed(&mut alloc, 3);
        scu.filter_pass_data(
            &mut mem,
            &src,
            3,
            None,
            FilterMode::UniqueBestCost,
            Some(&costs),
            &mut hash,
            &mut flags,
        );
        // cost 10 (new), 5 (better), 8 (worse).
        assert_eq!(flags.as_slice(), &[1, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "cost stream")]
    fn best_cost_without_costs_panics() {
        let (mut scu, mut mem, mut alloc) = setup();
        let mut hash = FilterHash::new(
            &mut alloc,
            HashTableConfig {
                size_bytes: 128 * 1024,
                ways: 16,
                entry_bytes: 8,
            },
        );
        let src = DeviceArray::from_vec(&mut alloc, vec![1u32]);
        let mut flags: DeviceArray<u8> = DeviceArray::zeroed(&mut alloc, 1);
        scu.filter_pass_data(
            &mut mem,
            &src,
            1,
            None,
            FilterMode::UniqueBestCost,
            None,
            &mut hash,
            &mut flags,
        );
    }

    #[test]
    fn group_pass_orders_same_line_destinations_together() {
        let (mut scu, mut mem, mut alloc) = setup();
        let mut hash = GroupHash::new(
            &mut alloc,
            HashTableConfig {
                size_bytes: 144 * 1024,
                ways: 16,
                entry_bytes: 32,
            },
        );
        // Target array of u32: 32 entries per 128-byte line. Elements
        // 0 and 64 are in different lines; 0 and 1 share a line.
        let target: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 256);
        let src = DeviceArray::from_vec(&mut alloc, vec![0u32, 64, 1, 65, 2]);
        let mut order: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 5);
        let op = scu.group_pass_data(&mut mem, &src, 5, None, &target, &mut hash, &mut order);
        assert_eq!(op.elements_out, 5);
        let o = order.as_slice();
        // Positions must be a permutation of 0..5.
        let mut sorted = o.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        // Same-line elements (inputs 0, 2, 4 -> dests 0, 1, 2) must be
        // consecutive in the output, as must (1, 3) -> dests 64, 65.
        let group_a: Vec<u32> = vec![o[0], o[2], o[4]];
        let group_b: Vec<u32> = vec![o[1], o[3]];
        let contiguous = |g: &[u32]| {
            let mut s = g.to_vec();
            s.sort_unstable();
            s.windows(2).all(|w| w[1] == w[0] + 1)
        };
        assert!(contiguous(&group_a), "group A {group_a:?} not contiguous");
        assert!(contiguous(&group_b), "group B {group_b:?} not contiguous");
    }

    #[test]
    fn grouped_compaction_is_a_permutation() {
        let (mut scu, mut mem, mut alloc) = setup();
        let mut hash = GroupHash::new(
            &mut alloc,
            HashTableConfig {
                size_bytes: 144 * 1024,
                ways: 16,
                entry_bytes: 32,
            },
        );
        let n = 1000;
        let target: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 4096);
        let ids: Vec<u32> = (0..n)
            .map(|i| ((i * 2654435761u64 as usize) % 4096) as u32)
            .collect();
        let src = DeviceArray::from_vec(&mut alloc, ids.clone());
        let mut order: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, n);
        scu.group_pass_data(&mut mem, &src, n, None, &target, &mut hash, &mut order);
        let mut dst: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, n);
        let op = scu.data_compaction_n(&mut mem, &src, n, None, Some(&order), &mut dst, 0);
        assert_eq!(op.elements_out, n as u64);
        let mut got = dst.as_slice().to_vec();
        let mut expect = ids;
        got.sort_unstable();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn pipeline_width_speeds_up_compaction() {
        let mut alloc = DeviceAllocator::new();
        let src: DeviceArray<u32> = DeviceArray::from_vec(&mut alloc, (0..100_000u32).collect());
        let mut dst: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 100_000);

        let mut scu1 = ScuDevice::new(ScuConfig::tx1());
        let mut mem1 = MemorySystem::new(MemorySystemConfig::tx1());
        let t1 = scu1
            .data_compaction(&mut mem1, &src, None, &mut dst)
            .bounds
            .pipeline_ns;

        let mut cfg4 = ScuConfig::tx1();
        cfg4.pipeline_width = 4;
        let mut scu4 = ScuDevice::new(cfg4);
        let mut mem4 = MemorySystem::new(MemorySystemConfig::tx1());
        let t4 = scu4
            .data_compaction(&mut mem4, &src, None, &mut dst)
            .bounds
            .pipeline_ns;

        assert!(
            t4 < t1 / 2.0,
            "width-4 pipeline {t4} not faster than width-1 {t1}"
        );
    }

    #[test]
    fn sequential_compaction_traffic_is_line_efficient() {
        let (mut scu, mut mem, mut alloc) = setup();
        let n = 32 * 1024;
        let src: DeviceArray<u32> = DeviceArray::from_vec(&mut alloc, (0..n as u32).collect());
        let mut dst: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, n);
        let op = scu.data_compaction(&mut mem, &src, None, &mut dst);
        // n u32 = n*4 bytes = n/32 lines each for src and dst.
        let lines = (n / 32) as u64;
        assert_eq!(op.mem.l2.accesses, 2 * lines);
    }

    #[test]
    fn device_stats_accumulate() {
        let (mut scu, mut mem, mut alloc) = setup();
        let src = DeviceArray::from_vec(&mut alloc, vec![1u32, 2]);
        let mut dst: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 2);
        scu.data_compaction(&mut mem, &src, None, &mut dst);
        scu.data_compaction(&mut mem, &src, None, &mut dst);
        assert_eq!(scu.stats().ops, 2);
        assert!(scu.stats().time_ns > 0.0);
        scu.reset_stats();
        assert_eq!(scu.stats().ops, 0);
    }

    #[test]
    fn traced_ops_emit_retirement_and_memory_window() {
        use scu_trace::{Event, MemSource, RecordingSink};
        use std::cell::RefCell;
        use std::rc::Rc;

        let (mut scu, mut mem, mut alloc) = setup();
        let sink = Rc::new(RefCell::new(RecordingSink::new("test", true)));
        let probe = Probe::new(sink.clone());
        scu.set_probe(probe.clone());
        mem.set_probe(probe);

        let mut hash = FilterHash::new(
            &mut alloc,
            HashTableConfig {
                size_bytes: 128 * 1024,
                ways: 16,
                entry_bytes: 4,
            },
        );
        let src = DeviceArray::from_vec(&mut alloc, vec![3u32, 5, 3, 7, 5, 3]);
        let mut flags: DeviceArray<u8> = DeviceArray::zeroed(&mut alloc, 6);
        let op = scu.filter_pass_data(
            &mut mem,
            &src,
            6,
            None,
            FilterMode::Unique,
            None,
            &mut hash,
            &mut flags,
        );

        scu.set_probe(Probe::off());
        mem.set_probe(Probe::off());
        let timeline = Rc::try_unwrap(sink).unwrap().into_inner().finish();
        let retired: Vec<_> = timeline
            .events
            .iter()
            .filter_map(|e| match &e.event {
                Event::ScuOpRetired { op, filter, .. } => Some((op, filter)),
                _ => None,
            })
            .collect();
        assert_eq!(retired.len(), 1);
        assert_eq!(retired[0].0.as_ref(), &op);
        assert_eq!(retired[0].1.dropped, 3);
        let windows: Vec<_> = timeline
            .events
            .iter()
            .filter_map(|e| match &e.event {
                Event::MemWindow { source, stats } => Some((*source, stats)),
                _ => None,
            })
            .collect();
        assert_eq!(windows.len(), 1);
        assert_eq!(windows[0].0, MemSource::Scu);
        assert_eq!(windows[0].1.l2.accesses, op.mem.l2.accesses);
        // Replaying the timeline reproduces live accumulation exactly.
        let folded = timeline.scu_totals();
        assert_eq!(folded.ops, scu.stats().ops);
        assert_eq!(folded.filter.dropped, scu.stats().filter.dropped);
        assert_eq!(folded.time_ns, scu.stats().time_ns);
    }
}

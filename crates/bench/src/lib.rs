//! # scu-bench — the experiment harness
//!
//! One module per figure and table of the paper's evaluation (§6),
//! each with a `run(cfg)` function that produces structured rows and a
//! `render` function that prints them in the paper's layout. The
//! binaries in `src/bin/` drive them (`fig01`, `fig09`, `fig10`,
//! `fig11`, `fig12`, `fig13`, `tables`, `filtering_report`,
//! `area_report`, `ablation`, `reproduce_all`); the Criterion benches
//! under `benches/` time the same experiments at reduced scale.
//!
//! Experiment scale is configurable with environment variables (see
//! [`config::ExperimentConfig::from_env`]): `SCU_SCALE` (fraction of
//! the published dataset sizes, default 1/16), `SCU_SEED`, and
//! `SCU_PR_ITERS`. `EXPERIMENTS.md` records paper-vs-measured values
//! at the default scale.

pub mod config;
pub mod experiments;
pub mod table;

pub use config::ExperimentConfig;

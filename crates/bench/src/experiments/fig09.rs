//! Figure 9 — normalised energy of the SCU-enhanced system, with the
//! GPU/SCU split.
//!
//! Baseline = the same platform without the SCU. The paper reports
//! average reductions of 6.55× (84.7%) on the GTX 980 and 3.24× (69%)
//! on the TX1.

use scu_algos::runner::{Algorithm, Mode};
use scu_algos::SystemKind;
use scu_graph::Dataset;

use crate::experiments::matrix::Matrix;
use crate::table::{bar, ratio, Table};

/// One bar of Figure 9.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Graph primitive.
    pub algo: Algorithm,
    /// Platform.
    pub system: SystemKind,
    /// Dataset.
    pub dataset: Dataset,
    /// Normalised energy (SCU system / baseline), lower is better.
    pub normalized_energy: f64,
    /// Fraction of the SCU system's energy consumed by the SCU itself.
    pub scu_share: f64,
}

/// Computes the figure (needs `GpuBaseline` and `ScuEnhanced`).
pub fn rows(matrix: &Matrix) -> Vec<Row> {
    let mut out = Vec::new();
    for algo in Algorithm::ALL {
        for system in SystemKind::ALL {
            for dataset in matrix.datasets() {
                let base = matrix.report(algo, dataset, system, Mode::GpuBaseline);
                let enh = matrix.report(algo, dataset, system, Mode::ScuEnhanced);
                let scu_share =
                    enh.energy.scu_dynamic_pj / enh.energy.total_pj().max(f64::MIN_POSITIVE);
                out.push(Row {
                    algo,
                    system,
                    dataset,
                    normalized_energy: enh.energy.total_pj() / base.energy.total_pj(),
                    scu_share,
                });
            }
        }
    }
    out
}

/// Average energy-reduction factor per system (the headline numbers).
pub fn average_reduction(rows: &[Row], system: SystemKind) -> f64 {
    let rs: Vec<&Row> = rows.iter().filter(|r| r.system == system).collect();
    let product: f64 = rs.iter().map(|r| 1.0 / r.normalized_energy).product();
    product.powf(1.0 / rs.len() as f64)
}

/// Renders the figure as a text table.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(&[
        "primitive",
        "system",
        "dataset",
        "norm. energy",
        "SCU share",
        "vs baseline=1.0",
    ]);
    for r in rows {
        t.row(&[
            r.algo.to_string(),
            r.system.to_string(),
            r.dataset.to_string(),
            format!("{:.3}", r.normalized_energy),
            format!("{:.1}%", r.scu_share * 100.0),
            bar(r.normalized_energy, 1.2, 20),
        ]);
    }
    let g = average_reduction(rows, SystemKind::Gtx980);
    let x = average_reduction(rows, SystemKind::Tx1);
    format!(
        "Figure 9: normalised energy, SCU-enhanced vs baseline (lower is better)\n{t}\
         average reduction: GTX980 {} (paper 6.55x), TX1 {} (paper 3.24x)\n",
        ratio(g),
        ratio(x)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;

    #[test]
    fn energy_reductions_present() {
        let m = Matrix::collect(
            &ExperimentConfig::tiny(),
            &[Mode::GpuBaseline, Mode::ScuEnhanced],
        );
        let rs = rows(&m);
        assert_eq!(rs.len(), 12); // 3 algos x 2 systems x 2 datasets
        for r in &rs {
            assert!(r.normalized_energy > 0.0);
            assert!((0.0..=1.0).contains(&r.scu_share));
        }
        // The SCU saves energy on average for BFS/SSSP.
        let bfs_rows: Vec<Row> = rs
            .iter()
            .copied()
            .filter(|r| r.algo == Algorithm::Bfs)
            .collect();
        assert!(average_reduction(&bfs_rows, SystemKind::Tx1) > 1.0);
        assert!(render(&rs).contains("average reduction"));
    }
}

//! Figure 10 — normalised execution time of the SCU-enhanced system,
//! with the GPU/SCU split.
//!
//! The paper reports average speedups of 1.37× (GTX 980) and 2.32×
//! (TX1); per primitive on the TX1: BFS 3.83×, SSSP 3.24×, PR 1.05×,
//! and on the GTX 980: BFS 1.41×, SSSP 1.65×, with a small PR
//! slowdown.

use scu_algos::runner::{Algorithm, Mode};
use scu_algos::SystemKind;
use scu_graph::Dataset;

use crate::experiments::matrix::Matrix;
use crate::table::{bar, ratio, Table};

/// One bar of Figure 10.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Graph primitive.
    pub algo: Algorithm,
    /// Platform.
    pub system: SystemKind,
    /// Dataset.
    pub dataset: Dataset,
    /// Normalised time (SCU system / baseline), lower is better.
    pub normalized_time: f64,
    /// Fraction of the SCU system's time spent in SCU operations.
    pub scu_share: f64,
}

/// Computes the figure (needs `GpuBaseline` and `ScuEnhanced`).
pub fn rows(matrix: &Matrix) -> Vec<Row> {
    let mut out = Vec::new();
    for algo in Algorithm::ALL {
        for system in SystemKind::ALL {
            for dataset in matrix.datasets() {
                let base = matrix.report(algo, dataset, system, Mode::GpuBaseline);
                let enh = matrix.report(algo, dataset, system, Mode::ScuEnhanced);
                out.push(Row {
                    algo,
                    system,
                    dataset,
                    normalized_time: enh.total_time_ns() / base.total_time_ns(),
                    scu_share: enh.scu.time_ns / enh.total_time_ns().max(f64::MIN_POSITIVE),
                });
            }
        }
    }
    out
}

/// Average speedup per system (the headline numbers).
pub fn average_speedup(rows: &[Row], system: SystemKind) -> f64 {
    let rs: Vec<&Row> = rows.iter().filter(|r| r.system == system).collect();
    let product: f64 = rs.iter().map(|r| 1.0 / r.normalized_time).product();
    product.powf(1.0 / rs.len() as f64)
}

/// Average speedup per (primitive, system) — the per-primitive
/// numbers quoted in §6.2.
pub fn primitive_speedup(rows: &[Row], algo: Algorithm, system: SystemKind) -> f64 {
    let rs: Vec<&Row> = rows
        .iter()
        .filter(|r| r.system == system && r.algo == algo)
        .collect();
    let product: f64 = rs.iter().map(|r| 1.0 / r.normalized_time).product();
    product.powf(1.0 / rs.len() as f64)
}

/// Renders the figure as a text table.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(&[
        "primitive",
        "system",
        "dataset",
        "norm. time",
        "SCU share",
        "vs baseline=1.0",
    ]);
    for r in rows {
        t.row(&[
            r.algo.to_string(),
            r.system.to_string(),
            r.dataset.to_string(),
            format!("{:.3}", r.normalized_time),
            format!("{:.1}%", r.scu_share * 100.0),
            bar(r.normalized_time, 1.2, 20),
        ]);
    }
    let mut tail = String::new();
    for (algo, paper_g, paper_t) in [
        (Algorithm::Bfs, "1.41x", "3.83x"),
        (Algorithm::Sssp, "1.65x", "3.24x"),
        (Algorithm::PageRank, "<1x", "1.05x"),
    ] {
        tail.push_str(&format!(
            "{algo}: GTX980 {} (paper {paper_g}), TX1 {} (paper {paper_t})\n",
            ratio(primitive_speedup(rows, algo, SystemKind::Gtx980)),
            ratio(primitive_speedup(rows, algo, SystemKind::Tx1)),
        ));
    }
    format!(
        "Figure 10: normalised execution time, SCU-enhanced vs baseline (lower is better)\n{t}\
         average speedup: GTX980 {} (paper 1.37x), TX1 {} (paper 2.32x)\n{tail}",
        ratio(average_speedup(rows, SystemKind::Gtx980)),
        ratio(average_speedup(rows, SystemKind::Tx1)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;

    #[test]
    fn speedups_present_for_bfs() {
        let m = Matrix::collect(
            &ExperimentConfig::tiny(),
            &[Mode::GpuBaseline, Mode::ScuEnhanced],
        );
        let rs = rows(&m);
        assert_eq!(rs.len(), 12);
        assert!(primitive_speedup(&rs, Algorithm::Bfs, SystemKind::Tx1) > 1.0);
        let s = render(&rs);
        assert!(s.contains("average speedup"));
        assert!(s.contains("paper 2.32x"));
    }
}

//! §6.4 — SCU area and overhead relative to the host GPU.

use scu_core::ScuConfig;
use scu_energy::area::{gpu_area, ScuAreaModel};

use crate::table::{percent, Table};

/// Renders the area report (paper: 13.27 mm² / 3.3% on the GTX 980,
/// 3.65 mm² / 4.1% on the TX1).
pub fn render() -> String {
    let model = ScuAreaModel::default();
    let mut t = Table::new(&[
        "system",
        "pipeline width",
        "SCU area (mm2)",
        "GPU area (mm2)",
        "overhead",
    ]);
    for (cfg, gpu_mm2) in [
        (ScuConfig::gtx980(), gpu_area::GTX980_MM2),
        (ScuConfig::tx1(), gpu_area::TX1_MM2),
    ] {
        t.row(&[
            cfg.name.to_string(),
            cfg.pipeline_width.to_string(),
            format!("{:.2}", model.area_mm2(cfg.pipeline_width)),
            format!("{gpu_mm2:.0}"),
            percent(model.overhead(cfg.pipeline_width, gpu_mm2)),
        ]);
    }
    let mut c = Table::new(&["lane component", "area (mm2)"]);
    for (name, mm2) in model.lane_components_mm2() {
        c.row(&[name.to_string(), format!("{mm2:.2}")]);
    }
    c.row(&[
        "fixed (control + buffers)".to_string(),
        format!("{:.2}", model.fixed_mm2),
    ]);
    format!(
        "Section 6.4: SCU area (paper: 13.27 mm2 / 3.3% GTX980, 3.65 mm2 / 4.1% TX1)\n{t}\n\
         Per-component split (one pipeline lane):\n{c}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_matches_paper_totals() {
        let s = render();
        assert!(s.contains("13.27"));
        assert!(s.contains("3.65"));
        assert!(s.contains("3.3%"));
        assert!(s.contains("4.2%") || s.contains("4.1%"));
        assert!(s.contains("coalescing-unit"));
    }
}

//! Figure 13 — memory bandwidth utilisation of the baseline GPU
//! system and the GPU+SCU system.
//!
//! The paper's observations: graph applications fall well short of
//! peak bandwidth; PR utilises more than BFS/SSSP; on the GTX 980 the
//! SCU system shows *lower* utilisation than the baseline (traffic
//! shrinks more than time), while on the TX1 it shows *higher*
//! utilisation for BFS and SSSP (time shrinks more than traffic).

use scu_algos::runner::{Algorithm, Mode};
use scu_algos::SystemKind;

use crate::experiments::matrix::Matrix;
use crate::table::{bar, percent, Table};

/// One pair of Figure 13 bars.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Graph primitive.
    pub algo: Algorithm,
    /// Platform.
    pub system: SystemKind,
    /// Peak-bandwidth fraction achieved by the baseline, `[0, 1]`.
    pub gpu_utilization: f64,
    /// Peak-bandwidth fraction achieved by the GPU+SCU system.
    pub scu_utilization: f64,
}

/// Computes the figure (needs `GpuBaseline` and `ScuEnhanced`).
pub fn rows(matrix: &Matrix) -> Vec<Row> {
    let mut out = Vec::new();
    for algo in Algorithm::ALL {
        for system in SystemKind::ALL {
            let ds = matrix.datasets();
            let mean = |mode| {
                ds.iter()
                    .map(|&d| matrix.report(algo, d, system, mode).bandwidth_utilization())
                    .sum::<f64>()
                    / ds.len() as f64
            };
            out.push(Row {
                algo,
                system,
                gpu_utilization: mean(Mode::GpuBaseline),
                scu_utilization: mean(Mode::ScuEnhanced),
            });
        }
    }
    out
}

/// Renders the figure as a text table.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(&[
        "primitive",
        "system",
        "GPU system",
        "GPU+SCU system",
        "GPU | GPU+SCU",
    ]);
    for r in rows {
        t.row(&[
            r.algo.to_string(),
            r.system.to_string(),
            percent(r.gpu_utilization),
            percent(r.scu_utilization),
            format!(
                "{} | {}",
                bar(r.gpu_utilization, 1.0, 12),
                bar(r.scu_utilization, 1.0, 12)
            ),
        ]);
    }
    format!(
        "Figure 13: peak-bandwidth utilisation (paper: PR highest; GTX980 SCU lower\n\
         than GPU, TX1 SCU higher for BFS/SSSP)\n{t}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;

    #[test]
    fn utilisations_are_fractions() {
        let m = Matrix::collect(
            &ExperimentConfig::tiny(),
            &[Mode::GpuBaseline, Mode::ScuEnhanced],
        );
        let rs = rows(&m);
        assert_eq!(rs.len(), 6);
        for r in &rs {
            assert!((0.0..=1.0).contains(&r.gpu_utilization), "{r:?}");
            assert!((0.0..=1.0).contains(&r.scu_utilization), "{r:?}");
        }
        assert!(render(&rs).contains("Figure 13"));
    }
}

//! §6.3 — workload and instruction reduction from the filtering
//! operation.
//!
//! The paper: filtering reduces GPU workload (nodes and edges) to 14%
//! for BFS and 22% for SSSP on average, and cuts GPU instructions by
//! 71% (BFS) / 76% (SSSP) on the TX1 with similar GTX 980 numbers.

use scu_algos::runner::{Algorithm, Mode};
use scu_algos::SystemKind;

use crate::experiments::matrix::Matrix;
use crate::table::{percent, Table};

/// One row of the §6.3 report.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// BFS or SSSP.
    pub algo: Algorithm,
    /// Platform.
    pub system: SystemKind,
    /// Enhanced-SCU GPU instructions / baseline GPU instructions.
    pub instruction_ratio: f64,
    /// Fraction of probed elements the filter dropped.
    pub filter_drop_rate: f64,
}

/// Computes the report (needs `GpuBaseline` and `ScuEnhanced`).
pub fn rows(matrix: &Matrix) -> Vec<Row> {
    let mut out = Vec::new();
    for algo in [Algorithm::Bfs, Algorithm::Sssp] {
        for system in SystemKind::ALL {
            let ds = matrix.datasets();
            let mut base_insts = 0u64;
            let mut enh_insts = 0u64;
            let mut probes = 0u64;
            let mut dropped = 0u64;
            for &d in &ds {
                base_insts += matrix
                    .report(algo, d, system, Mode::GpuBaseline)
                    .gpu_thread_insts();
                let enh = matrix.report(algo, d, system, Mode::ScuEnhanced);
                enh_insts += enh.gpu_thread_insts();
                probes += enh.scu.filter.probes;
                dropped += enh.scu.filter.dropped;
            }
            out.push(Row {
                algo,
                system,
                instruction_ratio: enh_insts as f64 / base_insts as f64,
                filter_drop_rate: dropped as f64 / probes.max(1) as f64,
            });
        }
    }
    out
}

/// Renders the report.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(&[
        "primitive",
        "system",
        "GPU instructions vs baseline",
        "instruction reduction",
        "filter drop rate",
    ]);
    for r in rows {
        t.row(&[
            r.algo.to_string(),
            r.system.to_string(),
            percent(r.instruction_ratio),
            percent(1.0 - r.instruction_ratio),
            percent(r.filter_drop_rate),
        ]);
    }
    format!(
        "Section 6.3: filtering effectiveness (paper: instructions cut 71% for BFS,\n\
         76% for SSSP; workload reduced to 14%/22%)\n{t}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;

    #[test]
    fn filtering_slashes_instructions() {
        let m = Matrix::collect(
            &ExperimentConfig::tiny(),
            &[Mode::GpuBaseline, Mode::ScuEnhanced],
        );
        let rs = rows(&m);
        assert_eq!(rs.len(), 4);
        for r in &rs {
            assert!(
                r.instruction_ratio < 0.6,
                "{} {}: ratio {}",
                r.algo,
                r.system,
                r.instruction_ratio
            );
            assert!(r.filter_drop_rate > 0.0);
        }
        assert!(render(&rs).contains("filter drop rate"));
    }
}

//! Figure 12 — improvement in memory coalescing from the grouping
//! operation, for SSSP on the TX1.
//!
//! The paper's baseline is the SCU using only filtering; grouping
//! improves coalescing on every dataset, 27% on average. The metric
//! here is the reduction in line transactions per GPU memory
//! instruction over processing kernels (fewer transactions for the
//! same instructions = better coalescing).

use scu_algos::runner::{Algorithm, Mode};
use scu_algos::SystemKind;
use scu_graph::Dataset;

use crate::experiments::matrix::Matrix;
use crate::table::{bar, percent, Table};

/// One bar of Figure 12.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Dataset.
    pub dataset: Dataset,
    /// Transactions per memory instruction with filtering only.
    pub filtering_only: f64,
    /// Transactions per memory instruction with grouping enabled.
    pub grouped: f64,
}

impl Row {
    /// Fractional improvement in coalescing, `[0, 1)`, positive when
    /// grouping reduces divergence.
    pub fn improvement(&self) -> f64 {
        if self.filtering_only <= 0.0 {
            0.0
        } else {
            1.0 - self.grouped / self.filtering_only
        }
    }
}

/// Computes the figure (needs `ScuFilteringOnly` and `ScuEnhanced`).
pub fn rows(matrix: &Matrix) -> Vec<Row> {
    matrix
        .datasets()
        .into_iter()
        .map(|dataset| {
            let fo = matrix.report(
                Algorithm::Sssp,
                dataset,
                SystemKind::Tx1,
                Mode::ScuFilteringOnly,
            );
            let enh = matrix.report(Algorithm::Sssp, dataset, SystemKind::Tx1, Mode::ScuEnhanced);
            Row {
                dataset,
                filtering_only: fo.gpu_coalescing(),
                grouped: enh.gpu_coalescing(),
            }
        })
        .collect()
}

/// Mean improvement across datasets (the paper's 27% headline).
pub fn average_improvement(rows: &[Row]) -> f64 {
    rows.iter().map(Row::improvement).sum::<f64>() / rows.len() as f64
}

/// Renders the figure as a text table.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(&[
        "dataset",
        "tx/inst (filter only)",
        "tx/inst (grouped)",
        "improvement",
        "",
    ]);
    for r in rows {
        t.row(&[
            r.dataset.to_string(),
            format!("{:.2}", r.filtering_only),
            format!("{:.2}", r.grouped),
            percent(r.improvement()),
            bar(r.improvement(), 0.5, 20),
        ]);
    }
    format!(
        "Figure 12: coalescing improvement from grouping, SSSP on TX1\n{t}\
         average improvement: {} (paper 27%)\n",
        percent(average_improvement(rows))
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;

    #[test]
    fn grouping_improves_coalescing_on_average() {
        let m = Matrix::collect(
            &ExperimentConfig::tiny(),
            &[Mode::ScuFilteringOnly, Mode::ScuEnhanced],
        );
        let rs = rows(&m);
        assert_eq!(rs.len(), 2);
        assert!(
            average_improvement(&rs) > 0.0,
            "average improvement {} not positive",
            average_improvement(&rs)
        );
        assert!(render(&rs).contains("paper 27%"));
    }
}

//! Workload characterisation: per-level frontier sizes and duplicate
//! factors — the structural data behind the paper's motivation (§1–2):
//! edge frontiers are several times larger than the distinct nodes
//! they reach, and that surplus is what the SCU's filtering removes.

use scu_algos::bfs;
use scu_graph::{Csr, Dataset, GraphStats};

use crate::config::ExperimentConfig;
use crate::table::Table;

/// One BFS level of one dataset.
#[derive(Debug, Clone, Copy)]
pub struct LevelRow {
    /// BFS level (distance from the source).
    pub level: u32,
    /// Nodes first reached at this level.
    pub nodes: usize,
    /// Edge-frontier entries feeding this level (out-degree sum of the
    /// previous level).
    pub edge_frontier: usize,
}

impl LevelRow {
    /// Edge-frontier entries per newly reached node — the duplicate +
    /// already-visited surplus the filter removes (≥ 1 when any node
    /// is reached).
    pub fn duplicate_factor(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.edge_frontier as f64 / self.nodes as f64
        }
    }
}

/// Per-level BFS trace of `g` from node 0, via the host reference.
pub fn bfs_levels(g: &Csr) -> Vec<LevelRow> {
    let dist = bfs::reference::distances(g, 0);
    let max_level = dist
        .iter()
        .copied()
        .filter(|&d| d != u32::MAX)
        .max()
        .unwrap_or(0);
    (0..=max_level)
        .map(|level| {
            let nodes = dist.iter().filter(|&&d| d == level).count();
            let edge_frontier = if level == 0 {
                0
            } else {
                dist.iter()
                    .enumerate()
                    .filter(|(_, &d)| d != u32::MAX && d + 1 == level)
                    .map(|(v, _)| g.degree(v as u32) as usize)
                    .sum()
            };
            LevelRow {
                level,
                nodes,
                edge_frontier,
            }
        })
        .collect()
}

/// Whole-traversal summary for one dataset.
#[derive(Debug, Clone, Copy)]
pub struct DatasetWorkload {
    /// Dataset.
    pub dataset: Dataset,
    /// BFS levels to exhaustion.
    pub levels: u32,
    /// Largest single node frontier.
    pub peak_frontier: usize,
    /// Total edge-frontier volume across the traversal.
    pub total_edge_frontier: usize,
    /// Distinct nodes reached.
    pub reached: usize,
    /// Degree-distribution Gini coefficient.
    pub degree_gini: f64,
}

impl DatasetWorkload {
    /// Traversal-wide duplicate factor (edge-frontier volume per
    /// reached node).
    pub fn duplicate_factor(&self) -> f64 {
        if self.reached == 0 {
            0.0
        } else {
            self.total_edge_frontier as f64 / self.reached as f64
        }
    }
}

/// Characterises every dataset in `cfg`.
pub fn rows(cfg: &ExperimentConfig) -> Vec<DatasetWorkload> {
    cfg.datasets
        .iter()
        .map(|&dataset| {
            let g = dataset.build(cfg.scale, cfg.seed);
            let levels = bfs_levels(&g);
            DatasetWorkload {
                dataset,
                levels: levels.last().map(|r| r.level).unwrap_or(0),
                peak_frontier: levels.iter().map(|r| r.nodes).max().unwrap_or(0),
                total_edge_frontier: levels.iter().map(|r| r.edge_frontier).sum(),
                reached: levels.iter().map(|r| r.nodes).sum(),
                degree_gini: GraphStats::of(&g).degree_gini,
            }
        })
        .collect()
}

/// Renders the characterisation table.
pub fn render(rows: &[DatasetWorkload]) -> String {
    let mut t = Table::new(&[
        "dataset",
        "BFS levels",
        "peak frontier",
        "edge-frontier volume",
        "duplicate factor",
        "degree gini",
    ]);
    for r in rows {
        t.row(&[
            r.dataset.to_string(),
            r.levels.to_string(),
            r.peak_frontier.to_string(),
            r.total_edge_frontier.to_string(),
            format!("{:.1}x", r.duplicate_factor()),
            format!("{:.2}", r.degree_gini),
        ]);
    }
    format!("Workload characterisation: the duplicate surplus filtering removes (section 1-2)\n{t}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kron_has_large_duplicate_factor() {
        let mut cfg = ExperimentConfig::tiny();
        cfg.datasets = vec![Dataset::Kron, Dataset::Ca];
        let rs = rows(&cfg);
        let kron = rs.iter().find(|r| r.dataset == Dataset::Kron).unwrap();
        let ca = rs.iter().find(|r| r.dataset == Dataset::Ca).unwrap();
        assert!(
            kron.duplicate_factor() > 3.0,
            "kron duplicate factor {}",
            kron.duplicate_factor()
        );
        // Road networks have long thin traversals, scale-free graphs
        // short fat ones.
        assert!(ca.levels > kron.levels);
        assert!(render(&rs).contains("duplicate factor"));
    }

    #[test]
    fn levels_partition_reached_nodes() {
        let g = Dataset::Cond.build(1.0 / 128.0, 42);
        let levels = bfs_levels(&g);
        let reached: usize = levels.iter().map(|r| r.nodes).sum();
        let by_dist = bfs::reference::distances(&g, 0)
            .iter()
            .filter(|&&d| d != u32::MAX)
            .count();
        assert_eq!(reached, by_dist);
        assert_eq!(levels[0].nodes, 1);
        assert_eq!(levels[0].edge_frontier, 0);
    }
}

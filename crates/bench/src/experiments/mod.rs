//! One module per figure/table of the paper's evaluation.
//!
//! | module | reproduces |
//! |---|---|
//! | [`matrix`] | the shared (algorithm × dataset × system × mode) run grid |
//! | [`fig01`] | Figure 1 — time split between compaction and processing |
//! | [`fig09`] | Figure 9 — normalised energy with GPU/SCU split |
//! | [`fig10`] | Figure 10 — normalised execution time with GPU/SCU split |
//! | [`fig11`] | Figure 11 — basic vs enhanced SCU speedup/energy breakdown |
//! | [`fig12`] | Figure 12 — coalescing improvement from grouping (SSSP/TX1) |
//! | [`fig13`] | Figure 13 — memory bandwidth utilisation |
//! | [`tables`] | Tables 1–5 — configuration and dataset summaries |
//! | [`filtering`] | §6.3 — workload/instruction reduction from filtering |
//! | [`area`] | §6.4 — SCU area and overhead |
//! | [`ablation`] | design-space sweeps: hash size, pipeline width, BFS grouping |
//! | [`workload`] | per-dataset frontier/duplicate characterisation |

pub mod ablation;
pub mod area;
pub mod fig01;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod filtering;
pub mod matrix;
pub mod tables;
pub mod workload;

//! Tables 1–5: configuration echoes and dataset summaries.
//!
//! Tables 1–4 are configuration tables — printing them verifies that
//! the models are instantiated with the paper's parameters. Table 5
//! additionally reports the *generated* stand-in graphs next to the
//! published sizes.

use scu_core::ScuConfig;
use scu_gpu::GpuConfig;

use crate::config::ExperimentConfig;
use crate::table::Table;

/// Renders Table 1 (SCU hardware parameters).
pub fn table1() -> String {
    let c = ScuConfig::tx1();
    let mut t = Table::new(&["parameter", "value"]);
    t.row(&[
        "Technology, Frequency".into(),
        "32 nm, 1.27GHz / 1GHz".into(),
    ]);
    t.row(&[
        "Vector Buffering".into(),
        format!("{} KB", c.vector_buffer_bytes / 1024),
    ]);
    t.row(&[
        "FIFO Requests Buffer".into(),
        format!("{} KB", c.fifo_request_buffer_bytes / 1024),
    ]);
    t.row(&[
        "Hash Request Buffer".into(),
        format!("{} KB", c.hash_request_buffer_bytes / 1024),
    ]);
    t.row(&[
        "Coalescing Unit".into(),
        format!(
            "{} in-flight requests, {}-merge",
            c.coalescer_in_flight, c.coalescer_merge_window
        ),
    ]);
    format!("Table 1: SCU hardware parameters\n{t}")
}

/// Renders Table 2 (SCU scalability parameters per GPU).
pub fn table2() -> String {
    let g = ScuConfig::gtx980();
    let x = ScuConfig::tx1();
    let mut t = Table::new(&["parameter", "GTX980", "TX1"]);
    let hash = |h: scu_core::HashTableConfig| {
        format!(
            "{} KB, {}-way, {} bytes/line",
            h.size_bytes / 1024,
            h.ways,
            h.entry_bytes
        )
    };
    t.row(&[
        "Pipeline Width".into(),
        format!("{} elements/cycle", g.pipeline_width),
        format!("{} elements/cycle", x.pipeline_width),
    ]);
    t.row(&[
        "Filtering BFS Hash".into(),
        hash(g.filter_bfs_hash),
        hash(x.filter_bfs_hash),
    ]);
    t.row(&[
        "Filtering SSSP Hash".into(),
        hash(g.filter_sssp_hash),
        hash(x.filter_sssp_hash),
    ]);
    t.row(&[
        "Grouping SSSP Hash".into(),
        hash(g.grouping_hash),
        hash(x.grouping_hash),
    ]);
    format!("Table 2: SCU scalability parameters\n{t}")
}

/// Renders Tables 3 and 4 (GPU parameters).
pub fn table3_4() -> String {
    let mut out = String::new();
    for (n, cfg) in [(3, GpuConfig::gtx980()), (4, GpuConfig::tx1())] {
        let mut t = Table::new(&["parameter", "value"]);
        t.row(&[
            "GPU, Frequency".into(),
            format!("NVIDIA {}, {}GHz", cfg.name, cfg.freq_ghz),
        ]);
        t.row(&[
            "Streaming Multiprocessors".into(),
            format!("{} ({} threads), Maxwell", cfg.num_sms, cfg.threads_per_sm),
        ]);
        t.row(&[
            "L1, L2 caches".into(),
            format!(
                "{} KB, {} KB",
                cfg.l1.size_bytes / 1024,
                cfg.memory.l2.size_bytes / 1024
            ),
        ]);
        t.row(&[
            "Main Memory".into(),
            format!(
                "4 GB {}, {} GB/s",
                cfg.memory.dram.name,
                cfg.memory.dram.peak_bw_bytes_per_sec / 1e9
            ),
        ]);
        out.push_str(&format!("Table {n}: {} parameters\n{t}\n", cfg.name));
    }
    out
}

/// Renders Table 5 (benchmark datasets), published vs generated.
pub fn table5(cfg: &ExperimentConfig) -> String {
    let mut t = Table::new(&[
        "graph",
        "description",
        "published nodes/edges",
        "generated nodes/edges (scale)",
        "avg degree",
    ]);
    for &d in &cfg.datasets {
        let g = d.build(cfg.scale, cfg.seed);
        t.row(&[
            d.to_string(),
            d.description().to_string(),
            format!(
                "{}K / {:.2}M",
                d.published_nodes() / 1000,
                d.published_edges() as f64 / 1e6
            ),
            format!(
                "{}K / {:.2}M ({:.4})",
                g.num_nodes() / 1000,
                g.num_edges() as f64 / 1e6,
                cfg.scale
            ),
            format!("{:.1}", g.avg_degree()),
        ]);
    }
    format!("Table 5: benchmark graph datasets\n{t}")
}

/// Renders all five tables.
pub fn render_all(cfg: &ExperimentConfig) -> String {
    format!(
        "{}\n{}\n{}\n{}",
        table1(),
        table2(),
        table3_4(),
        table5(cfg)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_mention_paper_values() {
        let s = render_all(&ExperimentConfig::tiny());
        assert!(s.contains("38 KB"));
        assert!(s.contains("4 elements/cycle"));
        assert!(s.contains("1 elements/cycle"));
        assert!(s.contains("GDDR5"));
        assert!(s.contains("LPDDR4"));
        assert!(s.contains("cond"));
        assert!(s.contains("32 in-flight requests, 4-merge"));
    }

    #[test]
    fn table2_hash_lines() {
        let s = table2();
        assert!(s.contains("1024 KB, 16-way, 4 bytes/line"));
        assert!(s.contains("192 KB, 16-way, 8 bytes/line"));
        assert!(s.contains("144 KB, 16-way, 32 bytes/line"));
    }
}

//! Figure 11 — how much of the speedup and energy reduction comes
//! from the basic SCU (compaction offload alone) versus the enhanced
//! filtering/grouping operations.
//!
//! The paper: the basic SCU provides ≈2× energy reduction and ≈1.5×
//! speedup for BFS and SSSP on both platforms; the enhanced SCU grows
//! that to 12.3×/11× energy (GTX 980) and 5.35×/4.54× (TX1), with
//! speedups of 1.4×/1.6× (GTX 980) and 3.83×/3.24× (TX1).

use scu_algos::runner::{Algorithm, Mode};
use scu_algos::SystemKind;

use crate::experiments::matrix::Matrix;
use crate::table::{ratio, Table};

/// One group of Figure 11 bars.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Graph primitive (BFS or SSSP; PR does not use enhanced ops).
    pub algo: Algorithm,
    /// Platform.
    pub system: SystemKind,
    /// Geometric-mean speedup of the basic SCU over the baseline.
    pub basic_speedup: f64,
    /// Geometric-mean speedup of the enhanced SCU over the baseline.
    pub enhanced_speedup: f64,
    /// Geometric-mean energy reduction of the basic SCU.
    pub basic_energy_reduction: f64,
    /// Geometric-mean energy reduction of the enhanced SCU.
    pub enhanced_energy_reduction: f64,
}

/// Computes the figure (needs `GpuBaseline`, `ScuBasic`, `ScuEnhanced`).
pub fn rows(matrix: &Matrix) -> Vec<Row> {
    let mut out = Vec::new();
    for algo in [Algorithm::Bfs, Algorithm::Sssp] {
        for system in SystemKind::ALL {
            let sp = |mode| {
                matrix.geomean_over_datasets(algo, system, Mode::GpuBaseline, mode, |b, v| {
                    v.speedup_vs(b)
                })
            };
            let er = |mode| {
                matrix.geomean_over_datasets(algo, system, Mode::GpuBaseline, mode, |b, v| {
                    v.energy_reduction_vs(b)
                })
            };
            out.push(Row {
                algo,
                system,
                basic_speedup: sp(Mode::ScuBasic),
                enhanced_speedup: sp(Mode::ScuEnhanced),
                basic_energy_reduction: er(Mode::ScuBasic),
                enhanced_energy_reduction: er(Mode::ScuEnhanced),
            });
        }
    }
    out
}

/// Renders the figure as a text table.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(&[
        "primitive",
        "system",
        "basic speedup",
        "enhanced speedup",
        "basic energy red.",
        "enhanced energy red.",
    ]);
    for r in rows {
        t.row(&[
            r.algo.to_string(),
            r.system.to_string(),
            ratio(r.basic_speedup),
            ratio(r.enhanced_speedup),
            ratio(r.basic_energy_reduction),
            ratio(r.enhanced_energy_reduction),
        ]);
    }
    format!(
        "Figure 11: basic vs enhanced SCU (paper: basic ~1.5x speedup / ~2x energy;\n\
         enhanced BFS/SSSP energy 12.3x/11x on GTX980, 5.35x/4.54x on TX1)\n{t}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;

    #[test]
    fn enhanced_beats_basic_on_energy() {
        let m = Matrix::collect(
            &ExperimentConfig::tiny(),
            &[Mode::GpuBaseline, Mode::ScuBasic, Mode::ScuEnhanced],
        );
        let rs = rows(&m);
        assert_eq!(rs.len(), 4); // BFS/SSSP x 2 systems
        for r in &rs {
            assert!(
                r.enhanced_energy_reduction >= r.basic_energy_reduction * 0.8,
                "{} {}: enhanced {} vs basic {}",
                r.algo,
                r.system,
                r.enhanced_energy_reduction,
                r.basic_energy_reduction
            );
        }
        assert!(render(&rs).contains("Figure 11"));
    }
}

//! The shared measurement grid all figures draw from.

use scu_algos::runner::{run_configured, Algorithm, Mode};
use scu_algos::{RunReport, SystemKind};
use scu_graph::{Csr, Dataset};

use crate::config::ExperimentConfig;

/// One cell of the measurement grid.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Graph primitive.
    pub algo: Algorithm,
    /// Dataset.
    pub dataset: Dataset,
    /// Platform.
    pub system: SystemKind,
    /// Machine variant.
    pub mode: Mode,
    /// The measured report.
    pub report: RunReport,
}

/// The filled grid.
#[derive(Debug, Clone)]
pub struct Matrix {
    entries: Vec<Measurement>,
}

impl Matrix {
    /// Runs every (algorithm × dataset × system × mode) combination.
    ///
    /// Progress is narrated on stderr because a full-scale grid takes
    /// minutes.
    pub fn collect(cfg: &ExperimentConfig, modes: &[Mode]) -> Matrix {
        let mut entries = Vec::new();
        for &dataset in &cfg.datasets {
            let g: Csr = dataset.build(cfg.scale, cfg.seed);
            for algo in Algorithm::ALL {
                for system in SystemKind::ALL {
                    for &mode in modes {
                        eprintln!(
                            "[matrix] {algo} on {dataset} ({} nodes, {} edges) @ {system} [{mode}]",
                            g.num_nodes(),
                            g.num_edges()
                        );
                        let scu_cfg = cfg.scu_config(system);
                        let out = run_configured(
                            algo,
                            &g,
                            system,
                            mode,
                            cfg.pr_iters,
                            Some(&scu_cfg),
                        );
                        entries.push(Measurement {
                            algo,
                            dataset,
                            system,
                            mode,
                            report: out.report,
                        });
                    }
                }
            }
        }
        Matrix { entries }
    }

    /// All cells.
    pub fn entries(&self) -> &[Measurement] {
        &self.entries
    }

    /// The report for one exact cell.
    ///
    /// # Panics
    ///
    /// Panics if the combination was not collected.
    pub fn report(
        &self,
        algo: Algorithm,
        dataset: Dataset,
        system: SystemKind,
        mode: Mode,
    ) -> &RunReport {
        self.entries
            .iter()
            .find(|m| {
                m.algo == algo && m.dataset == dataset && m.system == system && m.mode == mode
            })
            .map(|m| &m.report)
            .unwrap_or_else(|| panic!("missing cell {algo}/{dataset}/{system}/{mode}"))
    }

    /// Datasets present in the grid.
    pub fn datasets(&self) -> Vec<Dataset> {
        let mut v: Vec<Dataset> = Vec::new();
        for m in &self.entries {
            if !v.contains(&m.dataset) {
                v.push(m.dataset);
            }
        }
        v
    }

    /// Geometric mean of `f(baseline, variant)` over all datasets for
    /// one (algo, system) pair — how the paper averages its ratios.
    pub fn geomean_over_datasets(
        &self,
        algo: Algorithm,
        system: SystemKind,
        base_mode: Mode,
        variant_mode: Mode,
        f: impl Fn(&RunReport, &RunReport) -> f64,
    ) -> f64 {
        let ds = self.datasets();
        let product: f64 = ds
            .iter()
            .map(|&d| {
                f(
                    self.report(algo, d, system, base_mode),
                    self.report(algo, d, system, variant_mode),
                )
            })
            .product();
        product.powf(1.0 / ds.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_matrix() -> Matrix {
        Matrix::collect(
            &ExperimentConfig::tiny(),
            &[Mode::GpuBaseline, Mode::ScuEnhanced],
        )
    }

    #[test]
    fn grid_is_complete() {
        let m = tiny_matrix();
        // 2 datasets x 3 algos x 2 systems x 2 modes.
        assert_eq!(m.entries().len(), 24);
        let r = m.report(
            Algorithm::Bfs,
            Dataset::Cond,
            SystemKind::Tx1,
            Mode::ScuEnhanced,
        );
        assert!(r.total_time_ns() > 0.0);
    }

    #[test]
    fn geomean_speedup_is_positive() {
        let m = tiny_matrix();
        let sp = m.geomean_over_datasets(
            Algorithm::Bfs,
            SystemKind::Tx1,
            Mode::GpuBaseline,
            Mode::ScuEnhanced,
            |base, v| v.speedup_vs(base),
        );
        assert!(sp > 0.1 && sp < 100.0, "speedup {sp}");
    }

    #[test]
    #[should_panic(expected = "missing cell")]
    fn missing_cell_panics() {
        let m = tiny_matrix();
        let _ = m.report(
            Algorithm::Bfs,
            Dataset::Human,
            SystemKind::Tx1,
            Mode::GpuBaseline,
        );
    }
}

//! The shared measurement grid all figures draw from.
//!
//! Collection runs through [`scu_harness`]: every (algorithm × dataset
//! × system × mode) combination becomes one pure [`Cell`] job, so the
//! grid fills on all cores, completed cells are cached on disk between
//! invocations, and a panicking cell surfaces as a failed entry in the
//! sweep summary instead of killing the run. Entries always come back
//! in planning order — parallel and sequential collection produce
//! byte-identical grids.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use scu_algos::cell::{Cell, CellResult};
use scu_algos::runner::{Algorithm, Mode};
use scu_algos::{RunReport, SystemKind};
use scu_graph::Dataset;
use scu_harness::{Harness, Job, JobGraph, Sweep};
use scu_trace::{PhaseRow, Timeline};

use crate::config::ExperimentConfig;

/// Shared collector the traced jobs push their timelines into.
type TraceLog = Arc<Mutex<Vec<(String, Timeline)>>>;

/// One cell of the measurement grid.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Graph primitive.
    pub algo: Algorithm,
    /// Dataset.
    pub dataset: Dataset,
    /// Platform.
    pub system: SystemKind,
    /// Machine variant.
    pub mode: Mode,
    /// The measured report.
    pub report: RunReport,
    /// FNV-1a fingerprint of the algorithm's answer values — equal
    /// across modes of the same (algo, dataset) when the machines
    /// agree on the answer.
    pub values_fnv: u64,
    /// Per-iteration phase breakdown, derived from the cell's event
    /// timeline.
    pub phases: Vec<PhaseRow>,
}

/// The filled grid.
#[derive(Debug, Clone)]
pub struct Matrix {
    entries: Vec<Measurement>,
}

impl Matrix {
    /// Plans the grid: one [`Cell`] per (dataset × algorithm × system
    /// × mode) combination, in that nesting order. `filter` keeps only
    /// cells whose [`Cell::id`] contains the substring. Delegates to
    /// [`scu_algos::experiment::plan_cells`], the single planner shared
    /// with the sweep server.
    pub fn plan(cfg: &ExperimentConfig, modes: &[Mode], filter: Option<&str>) -> Vec<Cell> {
        scu_algos::experiment::plan_cells(cfg, modes, filter)
    }

    /// Runs every combination on a default [`Harness`] (all cores, no
    /// cache, silent) and panics if any cell fails — the strict
    /// entry point for tests and figure code that needs a full grid.
    pub fn collect(cfg: &ExperimentConfig, modes: &[Mode]) -> Matrix {
        let (matrix, sweep) = Matrix::collect_with(cfg, modes, &Harness::new(), None);
        assert!(
            sweep.summary.all_done(),
            "matrix collection incomplete:\n{}",
            sweep.summary.render()
        );
        matrix
    }

    /// Runs the planned cells on `harness` and returns the grid plus
    /// the sweep record (timings, cache hits, failures). Cells that
    /// fail or time out are absent from the grid but listed in the
    /// summary; the rest of the sweep completes regardless.
    pub fn collect_with(
        cfg: &ExperimentConfig,
        modes: &[Mode],
        harness: &Harness,
        filter: Option<&str>,
    ) -> (Matrix, Sweep) {
        Matrix::collect_inner(cfg, modes, harness, filter, None)
    }

    /// [`Matrix::collect_with`], additionally capturing the full event
    /// timeline of every cell that actually simulated. Cells served
    /// from the cache or the resume journal carry no event stream and
    /// are absent from the returned list; timelines come back in
    /// planning order regardless of worker scheduling.
    pub fn collect_traced(
        cfg: &ExperimentConfig,
        modes: &[Mode],
        harness: &Harness,
        filter: Option<&str>,
    ) -> (Matrix, Sweep, Vec<(String, Timeline)>) {
        let log: TraceLog = Arc::new(Mutex::new(Vec::new()));
        let (matrix, sweep) = Matrix::collect_inner(cfg, modes, harness, filter, Some(&log));
        let mut timelines = std::mem::take(&mut *scu_harness::error::lock_unpoisoned(
            &log,
            "trace collector",
        ));
        // Workers push in completion order; restore planning order so
        // the exported document is deterministic across --jobs levels.
        let order: HashMap<String, usize> = Matrix::plan(cfg, modes, filter)
            .iter()
            .enumerate()
            .map(|(i, c)| (c.id(), i))
            .collect();
        timelines.sort_by_key(|(id, _)| order.get(id).copied().unwrap_or(usize::MAX));
        (matrix, sweep, timelines)
    }

    fn collect_inner(
        cfg: &ExperimentConfig,
        modes: &[Mode],
        harness: &Harness,
        filter: Option<&str>,
        trace: Option<&TraceLog>,
    ) -> (Matrix, Sweep) {
        let cells = Matrix::plan(cfg, modes, filter);
        let mut graph = JobGraph::new();
        for cell in &cells {
            let work = cell.clone();
            let job = match trace {
                None => Job::new(cell.id(), move || work.run_value()),
                Some(log) => {
                    let log = Arc::clone(log);
                    Job::new(cell.id(), move || {
                        let (result, timeline) = work.run_traced();
                        let value = serde_json::to_value(&result);
                        scu_harness::error::lock_unpoisoned(&log, "trace collector")
                            .push((work.id(), timeline));
                        value
                    })
                }
            };
            graph.push(job.with_cache_key(cell.cache_key()));
        }
        let sweep = harness.run(&graph);
        let mut entries = Vec::new();
        for (cell, outcome) in cells.iter().zip(&sweep.outcomes) {
            if let Some(value) = outcome.value() {
                // A malformed result (e.g. a foreign-version blob that
                // slipped past cache verification) drops this one cell
                // from the grid; the sweep's other cells stay usable.
                match CellResult::from_value(value) {
                    Ok(result) => entries.push(Measurement {
                        algo: cell.algorithm,
                        dataset: cell.dataset,
                        system: cell.system,
                        mode: cell.mode,
                        report: result.report,
                        values_fnv: result.values_fnv,
                        phases: result.phases,
                    }),
                    Err(e) => eprintln!(
                        "[scu-bench] cell {} result malformed ({e:?}); dropped from grid",
                        cell.id()
                    ),
                }
            }
        }
        (Matrix { entries }, sweep)
    }

    /// All cells.
    pub fn entries(&self) -> &[Measurement] {
        &self.entries
    }

    /// The report for one exact cell.
    ///
    /// # Panics
    ///
    /// Panics if the combination was not collected.
    pub fn report(
        &self,
        algo: Algorithm,
        dataset: Dataset,
        system: SystemKind,
        mode: Mode,
    ) -> &RunReport {
        self.entries
            .iter()
            .find(|m| {
                m.algo == algo && m.dataset == dataset && m.system == system && m.mode == mode
            })
            .map(|m| &m.report)
            .unwrap_or_else(|| panic!("missing cell {algo}/{dataset}/{system}/{mode}"))
    }

    /// Datasets present in the grid.
    pub fn datasets(&self) -> Vec<Dataset> {
        let mut v: Vec<Dataset> = Vec::new();
        for m in &self.entries {
            if !v.contains(&m.dataset) {
                v.push(m.dataset);
            }
        }
        v
    }

    /// Geometric mean of `f(baseline, variant)` over all datasets for
    /// one (algo, system) pair — how the paper averages its ratios.
    pub fn geomean_over_datasets(
        &self,
        algo: Algorithm,
        system: SystemKind,
        base_mode: Mode,
        variant_mode: Mode,
        f: impl Fn(&RunReport, &RunReport) -> f64,
    ) -> f64 {
        let ds = self.datasets();
        let product: f64 = ds
            .iter()
            .map(|&d| {
                f(
                    self.report(algo, d, system, base_mode),
                    self.report(algo, d, system, variant_mode),
                )
            })
            .product();
        product.powf(1.0 / ds.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_matrix() -> Matrix {
        Matrix::collect(
            &ExperimentConfig::tiny(),
            &[Mode::GpuBaseline, Mode::ScuEnhanced],
        )
    }

    #[test]
    fn grid_is_complete() {
        let m = tiny_matrix();
        // 2 datasets x 5 algos (3 paper + CC/k-core) x 2 systems x 2 modes.
        assert_eq!(m.entries().len(), 40);
        let r = m.report(
            Algorithm::Bfs,
            Dataset::Cond,
            SystemKind::Tx1,
            Mode::ScuEnhanced,
        );
        assert!(r.total_time_ns() > 0.0);
    }

    #[test]
    fn extensions_are_collected() {
        let m = tiny_matrix();
        for algo in [Algorithm::Cc, Algorithm::KCore] {
            let r = m.report(algo, Dataset::Kron, SystemKind::Gtx980, Mode::GpuBaseline);
            assert!(r.total_time_ns() > 0.0, "{algo} missing from grid");
        }
    }

    #[test]
    fn modes_agree_on_answers_via_fingerprint() {
        let m = tiny_matrix();
        for base in m.entries().iter().filter(|m| m.mode == Mode::GpuBaseline) {
            let scu = m
                .entries()
                .iter()
                .find(|e| {
                    e.algo == base.algo
                        && e.dataset == base.dataset
                        && e.system == base.system
                        && e.mode == Mode::ScuEnhanced
                })
                .expect("paired SCU cell");
            assert_eq!(
                base.values_fnv, scu.values_fnv,
                "{}/{} answers diverge across modes",
                base.algo, base.dataset
            );
        }
    }

    #[test]
    fn traced_collection_returns_one_timeline_per_simulated_cell() {
        let cfg = ExperimentConfig::tiny();
        let modes = [Mode::GpuBaseline, Mode::ScuEnhanced];
        let (m, sweep, timelines) =
            Matrix::collect_traced(&cfg, &modes, &Harness::new(), Some("BFS/"));
        assert!(sweep.summary.all_done());
        assert_eq!(timelines.len(), m.entries().len());
        // Planning order, and every timeline has events to export.
        let planned: Vec<String> = Matrix::plan(&cfg, &modes, Some("BFS/"))
            .iter()
            .map(Cell::id)
            .collect();
        let got: Vec<&String> = timelines.iter().map(|(id, _)| id).collect();
        assert_eq!(got, planned.iter().collect::<Vec<_>>());
        assert!(timelines.iter().all(|(_, tl)| !tl.events.is_empty()));
        // The grid rows carry the derived per-iteration breakdown.
        assert!(m.entries().iter().all(|e| !e.phases.is_empty()));
    }

    #[test]
    fn filter_narrows_the_plan() {
        let cfg = ExperimentConfig::tiny();
        let modes = [Mode::GpuBaseline, Mode::ScuEnhanced];
        let all = Matrix::plan(&cfg, &modes, None);
        assert_eq!(all.len(), 40);
        let bfs = Matrix::plan(&cfg, &modes, Some("BFS/"));
        assert_eq!(bfs.len(), 8);
        assert!(bfs.iter().all(|c| c.algorithm == Algorithm::Bfs));
        assert!(Matrix::plan(&cfg, &modes, Some("no-such-cell")).is_empty());
    }

    #[test]
    fn geomean_speedup_is_positive() {
        let m = tiny_matrix();
        let sp = m.geomean_over_datasets(
            Algorithm::Bfs,
            SystemKind::Tx1,
            Mode::GpuBaseline,
            Mode::ScuEnhanced,
            |base, v| v.speedup_vs(base),
        );
        assert!(sp > 0.1 && sp < 100.0, "speedup {sp}");
    }

    #[test]
    #[should_panic(expected = "missing cell")]
    fn missing_cell_panics() {
        let m = tiny_matrix();
        let _ = m.report(
            Algorithm::Bfs,
            Dataset::Human,
            SystemKind::Tx1,
            Mode::GpuBaseline,
        );
    }
}

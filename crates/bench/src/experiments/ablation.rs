//! Design-space ablations for the knobs §5.1 calls out.
//!
//! * **Hash-size sweep** — larger filtering tables drop more
//!   duplicates but pressure the L2 (the paper's runtime-configurable
//!   knob).
//! * **Pipeline-width sweep** — the RTL knob: width 1 suits the TX1,
//!   width 4 is needed to outperform the GTX 980.
//! * **BFS grouping** — §4.4 finds grouping counterproductive for BFS;
//!   this ablation measures it.

use scu_algos::bfs::{self, BfsVariant};
use scu_algos::runner::{run_with, Algorithm, Mode};
use scu_algos::sssp;
use scu_algos::{System, SystemKind};
use scu_core::{ScuConfig, ScuDevice};
use scu_graph::transform;
use scu_graph::Dataset;

use crate::config::ExperimentConfig;
use crate::table::{percent, ratio, Table};

/// One point of the hash-size sweep.
#[derive(Debug, Clone, Copy)]
pub struct HashSweepPoint {
    /// Filtering-table size in bytes.
    pub size_bytes: u64,
    /// Fraction of probed elements dropped.
    pub drop_rate: f64,
    /// Speedup over the GPU baseline.
    pub speedup: f64,
}

/// Builds a system whose SCU uses `cfg`.
fn custom_system(kind: SystemKind, cfg: ScuConfig) -> System {
    let mut sys = System::with_scu(kind);
    sys.scu = Some(ScuDevice::new(cfg));
    sys
}

/// Sweeps the BFS filtering hash size on the TX1 over `dataset`.
pub fn hash_size_sweep(cfg: &ExperimentConfig, dataset: Dataset) -> Vec<HashSweepPoint> {
    let g = dataset.build(cfg.scale, cfg.seed);
    let base = run_with(
        Algorithm::Bfs,
        &g,
        SystemKind::Tx1,
        Mode::GpuBaseline,
        cfg.pr_iters,
    );
    let mut out = Vec::new();
    for kb in [8u64, 33, 66, 132, 264, 1056] {
        let mut scu_cfg = ScuConfig::tx1();
        scu_cfg.filter_bfs_hash.size_bytes = kb * 1024;
        let mut sys = custom_system(SystemKind::Tx1, scu_cfg);
        let (_, report) = bfs::scu::run(&mut sys, &g, 0, true);
        out.push(HashSweepPoint {
            size_bytes: kb * 1024,
            drop_rate: report.scu.filter.drop_rate(),
            speedup: report.speedup_vs(&base.report),
        });
    }
    out
}

/// One point of the pipeline-width sweep.
#[derive(Debug, Clone, Copy)]
pub struct WidthSweepPoint {
    /// Platform.
    pub system: SystemKind,
    /// Elements per cycle.
    pub width: u32,
    /// Speedup over the GPU baseline.
    pub speedup: f64,
}

/// Sweeps the pipeline width for BFS on both platforms over `dataset`.
pub fn width_sweep(cfg: &ExperimentConfig, dataset: Dataset) -> Vec<WidthSweepPoint> {
    let g = dataset.build(cfg.scale, cfg.seed);
    let mut out = Vec::new();
    for kind in SystemKind::ALL {
        let base = run_with(Algorithm::Bfs, &g, kind, Mode::GpuBaseline, cfg.pr_iters);
        for width in [1u32, 2, 4, 8] {
            let mut scu_cfg = kind.scu_config();
            scu_cfg.pipeline_width = width;
            let mut sys = custom_system(kind, scu_cfg);
            let (_, report) = bfs::scu::run(&mut sys, &g, 0, true);
            out.push(WidthSweepPoint {
                system: kind,
                width,
                speedup: report.speedup_vs(&base.report),
            });
        }
    }
    out
}

/// The preprocessing-vs-SCU comparison (related work: Tigr and
/// similar systems transform the graph off-line instead of adding
/// hardware).
#[derive(Debug, Clone, Copy)]
pub struct PreprocessPoint {
    /// Dataset.
    pub dataset: Dataset,
    /// Baseline GPU time on the original graph, ns.
    pub baseline_ns: f64,
    /// Baseline GPU time on the degree-renumbered graph, ns.
    pub preprocessed_ns: f64,
    /// Enhanced-SCU time on the original graph, ns.
    pub scu_ns: f64,
}

/// Compares software preprocessing (hub-first renumbering) against the
/// SCU on BFS over the TX1.
pub fn preprocessing_vs_scu(cfg: &ExperimentConfig, datasets: &[Dataset]) -> Vec<PreprocessPoint> {
    datasets
        .iter()
        .map(|&dataset| {
            let g = dataset.build(cfg.scale, cfg.seed);
            let (t, _) = transform::renumber_by_degree(&g);
            let base = run_with(
                Algorithm::Bfs,
                &g,
                SystemKind::Tx1,
                Mode::GpuBaseline,
                cfg.pr_iters,
            );
            let pre = run_with(
                Algorithm::Bfs,
                &t,
                SystemKind::Tx1,
                Mode::GpuBaseline,
                cfg.pr_iters,
            );
            let scu = run_with(
                Algorithm::Bfs,
                &g,
                SystemKind::Tx1,
                Mode::ScuEnhanced,
                cfg.pr_iters,
            );
            PreprocessPoint {
                dataset,
                baseline_ns: base.report.total_time_ns(),
                preprocessed_ns: pre.report.total_time_ns(),
                scu_ns: scu.report.total_time_ns(),
            }
        })
        .collect()
}

/// One point of the L2-pressure sweep.
#[derive(Debug, Clone, Copy)]
pub struct L2PressurePoint {
    /// SSSP filtering-table size in bytes.
    pub size_bytes: u64,
    /// GPU-side L2 hit rate during the run.
    pub gpu_l2_hit_rate: f64,
    /// Speedup over the GPU baseline.
    pub speedup: f64,
}

/// Sweeps the SSSP filter hash size on the TX1 (256 KB L2), recording
/// the GPU kernels' L2 hit rate — §5.1's warning that oversized tables
/// "may have a negative impact on performance if the L2 cache is too
/// small".
pub fn l2_pressure_sweep(cfg: &ExperimentConfig, dataset: Dataset) -> Vec<L2PressurePoint> {
    let g = dataset.build(cfg.scale, cfg.seed);
    let base = run_with(
        Algorithm::Sssp,
        &g,
        SystemKind::Tx1,
        Mode::GpuBaseline,
        cfg.pr_iters,
    );
    [24u64, 48, 96, 192, 384, 768]
        .into_iter()
        .map(|kb| {
            let mut scu_cfg = ScuConfig::tx1();
            scu_cfg.filter_sssp_hash.size_bytes = kb * 1024;
            let mut sys = custom_system(SystemKind::Tx1, scu_cfg);
            let (_, report) = sssp::scu::run(&mut sys, &g, 0, sssp::ScuVariant::enhanced());
            let mut gpu = report.gpu_processing;
            gpu.merge(&report.gpu_compaction);
            L2PressurePoint {
                size_bytes: kb * 1024,
                gpu_l2_hit_rate: gpu.mem.l2.hit_rate(),
                speedup: report.speedup_vs(&base.report),
            }
        })
        .collect()
}

/// The §4.4 BFS-grouping comparison.
#[derive(Debug, Clone, Copy)]
pub struct BfsGroupingPoint {
    /// Dataset.
    pub dataset: Dataset,
    /// Enhanced (filtering-only) time, ns.
    pub enhanced_ns: f64,
    /// Filtering + grouping time, ns.
    pub with_grouping_ns: f64,
}

/// Measures BFS with and without grouping on the TX1.
pub fn bfs_grouping(cfg: &ExperimentConfig) -> Vec<BfsGroupingPoint> {
    cfg.datasets
        .iter()
        .map(|&dataset| {
            let g = dataset.build(cfg.scale, cfg.seed);
            let mut sys = System::with_scu(SystemKind::Tx1);
            let (_, enh) = bfs::scu::run_variant(&mut sys, &g, 0, BfsVariant::enhanced());
            let mut sys = System::with_scu(SystemKind::Tx1);
            let (_, grp) = bfs::scu::run_variant(&mut sys, &g, 0, BfsVariant::with_grouping());
            BfsGroupingPoint {
                dataset,
                enhanced_ns: enh.total_time_ns(),
                with_grouping_ns: grp.total_time_ns(),
            }
        })
        .collect()
}

/// Renders all three ablations.
pub fn render(cfg: &ExperimentConfig) -> String {
    let mut out = String::new();

    let sweep = hash_size_sweep(cfg, Dataset::Kron);
    let mut t = Table::new(&["BFS hash size", "drop rate", "speedup vs baseline"]);
    for p in &sweep {
        t.row(&[
            format!("{} KB", p.size_bytes / 1024),
            percent(p.drop_rate),
            ratio(p.speedup),
        ]);
    }
    out.push_str(&format!("Ablation: filtering hash size (TX1, kron)\n{t}\n"));

    let sweep = width_sweep(cfg, Dataset::Kron);
    let mut t = Table::new(&["system", "pipeline width", "speedup vs baseline"]);
    for p in &sweep {
        t.row(&[p.system.to_string(), p.width.to_string(), ratio(p.speedup)]);
    }
    out.push_str(&format!(
        "Ablation: pipeline width (paper: width 1 suffices for TX1, width 4 for GTX980)\n{t}\n"
    ));

    let sweep = l2_pressure_sweep(cfg, Dataset::Kron);
    let mut t = Table::new(&["SSSP hash size", "GPU L2 hit rate", "speedup vs baseline"]);
    for p in &sweep {
        t.row(&[
            format!("{} KB", p.size_bytes / 1024),
            percent(p.gpu_l2_hit_rate),
            ratio(p.speedup),
        ]);
    }
    out.push_str(&format!(
        "Ablation: L2 pressure from the in-memory hash (TX1 has a 256 KB L2; 5.1 warns\nagainst oversizing)\n{t}\n"
    ));

    let pts = preprocessing_vs_scu(cfg, &[Dataset::Kron, Dataset::Cond]);
    let mut t = Table::new(&[
        "dataset",
        "GPU baseline",
        "GPU + renumbered graph",
        "GPU + SCU",
    ]);
    for p in &pts {
        t.row(&[
            p.dataset.to_string(),
            "1.00x".to_string(),
            ratio(p.baseline_ns / p.preprocessed_ns),
            ratio(p.baseline_ns / p.scu_ns),
        ]);
    }
    out.push_str(&format!(
        "Ablation: software preprocessing (hub-first renumbering, Tigr-style) vs SCU, BFS on TX1
{t}
"
    ));

    let pts = bfs_grouping(cfg);
    let mut t = Table::new(&[
        "dataset",
        "enhanced (ns)",
        "with grouping (ns)",
        "grouping effect",
    ]);
    for p in &pts {
        t.row(&[
            p.dataset.to_string(),
            format!("{:.3e}", p.enhanced_ns),
            format!("{:.3e}", p.with_grouping_ns),
            ratio(p.enhanced_ns / p.with_grouping_ns),
        ]);
    }
    out.push_str(&format!(
        "Ablation: BFS grouping (paper 4.4: grouping does not pay off for BFS)\n{t}"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_sweep_drop_rate_grows_with_size() {
        let cfg = ExperimentConfig::tiny();
        let pts = hash_size_sweep(&cfg, Dataset::Kron);
        assert_eq!(pts.len(), 6);
        // Drop rate must be non-decreasing-ish: the largest table drops
        // at least as much as the smallest.
        assert!(pts.last().unwrap().drop_rate >= pts[0].drop_rate);
    }

    #[test]
    fn width_sweep_monotone_on_gtx980() {
        let cfg = ExperimentConfig::tiny();
        let pts = width_sweep(&cfg, Dataset::Kron);
        let g: Vec<&WidthSweepPoint> = pts
            .iter()
            .filter(|p| p.system == SystemKind::Gtx980)
            .collect();
        assert!(g.last().unwrap().speedup >= g[0].speedup * 0.95);
    }

    #[test]
    fn l2_pressure_sweep_runs() {
        let cfg = ExperimentConfig::tiny();
        let pts = l2_pressure_sweep(&cfg, Dataset::Kron);
        assert_eq!(pts.len(), 6);
        for p in &pts {
            assert!((0.0..=1.0).contains(&p.gpu_l2_hit_rate));
            assert!(p.speedup > 0.0);
        }
    }

    #[test]
    fn preprocessing_comparison_runs() {
        let cfg = ExperimentConfig::tiny();
        let pts = preprocessing_vs_scu(&cfg, &[Dataset::Kron]);
        assert_eq!(pts.len(), 1);
        assert!(pts[0].baseline_ns > 0.0);
        assert!(pts[0].preprocessed_ns > 0.0);
        assert!(pts[0].scu_ns > 0.0);
    }

    #[test]
    fn bfs_grouping_runs_and_answers_match() {
        let mut cfg = ExperimentConfig::tiny();
        cfg.datasets = vec![Dataset::Kron];
        let pts = bfs_grouping(&cfg);
        assert_eq!(pts.len(), 1);
        assert!(pts[0].enhanced_ns > 0.0 && pts[0].with_grouping_ns > 0.0);
    }
}

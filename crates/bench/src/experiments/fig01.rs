//! Figure 1 — breakdown of baseline GPU execution time into stream
//! compaction and the rest of graph processing.
//!
//! The paper measures 25–55% of time in compaction across BFS, SSSP
//! and PR on the GTX 980 and TX1, which motivates the SCU.

use scu_algos::runner::{Algorithm, Mode};
use scu_algos::SystemKind;

use crate::experiments::matrix::Matrix;
use crate::table::{bar, percent, Table};

/// One bar of Figure 1.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Graph primitive.
    pub algo: Algorithm,
    /// Platform.
    pub system: SystemKind,
    /// Fraction of baseline time in stream compaction, `[0, 1]`,
    /// averaged (arithmetically, as a time share) over datasets.
    pub compaction_fraction: f64,
}

/// Computes the figure from a collected grid (needs `GpuBaseline`).
pub fn rows(matrix: &Matrix) -> Vec<Row> {
    let mut out = Vec::new();
    for algo in Algorithm::ALL {
        for system in SystemKind::ALL {
            let ds = matrix.datasets();
            let mean = ds
                .iter()
                .map(|&d| {
                    matrix
                        .report(algo, d, system, Mode::GpuBaseline)
                        .compaction_fraction()
                })
                .sum::<f64>()
                / ds.len() as f64;
            out.push(Row {
                algo,
                system,
                compaction_fraction: mean,
            });
        }
    }
    out
}

/// Renders the figure as a text table.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(&[
        "primitive",
        "system",
        "stream compaction",
        "rest of processing",
        "compaction share",
    ]);
    for r in rows {
        t.row(&[
            r.algo.to_string(),
            r.system.to_string(),
            percent(r.compaction_fraction),
            percent(1.0 - r.compaction_fraction),
            bar(r.compaction_fraction, 1.0, 20),
        ]);
    }
    format!("Figure 1: baseline GPU time in stream compaction (paper: 25-55%)\n{t}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;

    #[test]
    fn fractions_are_sane() {
        let m = Matrix::collect(&ExperimentConfig::tiny(), &[Mode::GpuBaseline]);
        let rs = rows(&m);
        assert_eq!(rs.len(), 6); // 3 primitives x 2 systems
        for r in &rs {
            assert!(
                r.compaction_fraction > 0.05 && r.compaction_fraction < 0.95,
                "{} {}: {}",
                r.algo,
                r.system,
                r.compaction_fraction
            );
        }
        let s = render(&rs);
        assert!(s.contains("BFS"));
        assert!(s.contains("GTX980"));
    }
}

//! Experiment configuration.
//!
//! The definition lives in [`scu_algos::experiment`] so the sweep
//! server (`scu-server`) and this crate plan byte-identical cells from
//! one implementation; this module re-exports it under the historical
//! `scu_bench::config` path.

pub use scu_algos::experiment::ExperimentConfig;

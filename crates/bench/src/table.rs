//! Minimal fixed-width text tables for experiment output.

use std::fmt::Write as _;

/// A simple left-aligned text table.
///
/// ```
/// use scu_bench::table::Table;
/// let mut t = Table::new(&["name", "value"]);
/// t.row(&["x".to_string(), "1".to_string()]);
/// let s = t.to_string();
/// assert!(s.contains("name"));
/// assert!(s.contains("| x"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut line = String::new();
        for (c, h) in self.headers.iter().enumerate() {
            let _ = write!(line, "| {:w$} ", h, w = widths[c]);
        }
        line.push('|');
        writeln!(f, "{line}")?;
        let mut sep = String::new();
        for w in &widths {
            let _ = write!(sep, "|{}", "-".repeat(w + 2));
        }
        sep.push('|');
        writeln!(f, "{sep}")?;
        for row in &self.rows {
            let mut line = String::new();
            for (c, cell) in row.iter().enumerate() {
                let _ = write!(line, "| {:w$} ", cell, w = widths[c]);
            }
            line.push('|');
            writeln!(f, "{line}")?;
        }
        Ok(())
    }
}

/// Renders `value` as a horizontal ASCII bar of at most `width` cells,
/// scaled so that `max` fills the bar. Values beyond `max` saturate.
///
/// ```
/// use scu_bench::table::bar;
/// assert_eq!(bar(0.5, 1.0, 8), "####....");
/// assert_eq!(bar(2.0, 1.0, 4), "####");
/// assert_eq!(bar(0.0, 1.0, 4), "....");
/// ```
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || width == 0 {
        return String::new();
    }
    let filled = ((value / max) * width as f64)
        .round()
        .clamp(0.0, width as f64) as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

/// Formats a ratio as e.g. "1.37x".
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a fraction as a percentage, e.g. "84.7%".
pub fn percent(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["xx".into(), "1".into()]);
        t.row(&["y".into(), "22".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        Table::new(&["a"]).row(&["x".into(), "y".into()]);
    }

    #[test]
    fn helpers_format() {
        assert_eq!(ratio(1.369), "1.37x");
        assert_eq!(percent(0.847), "84.7%");
    }

    #[test]
    fn bars_scale_and_saturate() {
        assert_eq!(bar(0.25, 1.0, 8), "##......");
        assert_eq!(bar(1.0, 1.0, 5), "#####");
        assert_eq!(bar(-1.0, 1.0, 4), "....");
        assert_eq!(bar(1.0, 0.0, 4), "");
        assert_eq!(bar(1.0, 1.0, 0), "");
    }

    #[test]
    fn empty_table_has_header_only() {
        let t = Table::new(&["h"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.to_string().lines().count(), 2);
    }
}

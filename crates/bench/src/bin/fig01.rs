//! Regenerates Figure 1 (baseline compaction/processing time split).
use scu_algos::runner::Mode;
use scu_bench::experiments::{fig01, matrix::Matrix};
use scu_bench::ExperimentConfig;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let m = Matrix::collect(&cfg, &[Mode::GpuBaseline]);
    print!("{}", fig01::render(&fig01::rows(&m)));
}

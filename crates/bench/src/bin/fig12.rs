//! Regenerates Figure 12 (coalescing improvement from grouping).
use scu_algos::runner::Mode;
use scu_bench::experiments::{fig12, matrix::Matrix};
use scu_bench::ExperimentConfig;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let m = Matrix::collect(&cfg, &[Mode::ScuFilteringOnly, Mode::ScuEnhanced]);
    print!("{}", fig12::render(&fig12::rows(&m)));
}

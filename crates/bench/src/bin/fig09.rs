//! Regenerates Figure 9 (normalised energy).
use scu_algos::runner::Mode;
use scu_bench::experiments::{fig09, matrix::Matrix};
use scu_bench::ExperimentConfig;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let m = Matrix::collect(&cfg, &[Mode::GpuBaseline, Mode::ScuEnhanced]);
    print!("{}", fig09::render(&fig09::rows(&m)));
}

//! Regenerates Figure 10 (normalised execution time).
use scu_algos::runner::Mode;
use scu_bench::experiments::{fig10, matrix::Matrix};
use scu_bench::ExperimentConfig;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let m = Matrix::collect(&cfg, &[Mode::GpuBaseline, Mode::ScuEnhanced]);
    print!("{}", fig10::render(&fig10::rows(&m)));
}

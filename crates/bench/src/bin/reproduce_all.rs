//! Runs every experiment in sequence — the one-shot paper reproduction.
//!
//! Scale with `SCU_SCALE` (default 1/16 of published dataset sizes).
use scu_algos::runner::Mode;
use scu_bench::experiments::{
    ablation, area, fig01, fig09, fig10, fig11, fig12, fig13, filtering, matrix::Matrix, tables,
    workload,
};
use scu_bench::ExperimentConfig;

fn main() {
    let cfg = ExperimentConfig::from_env();
    println!("=== SCU reproduction: all tables and figures (scale {:.4}) ===\n", cfg.scale);
    print!("{}", tables::render_all(&cfg));
    println!();
    print!("{}", area::render());
    println!();
    print!("{}", workload::render(&workload::rows(&cfg)));
    println!();
    let m = Matrix::collect(
        &cfg,
        &[Mode::GpuBaseline, Mode::ScuBasic, Mode::ScuFilteringOnly, Mode::ScuEnhanced],
    );
    print!("{}", fig01::render(&fig01::rows(&m)));
    println!();
    print!("{}", fig09::render(&fig09::rows(&m)));
    println!();
    print!("{}", fig10::render(&fig10::rows(&m)));
    println!();
    print!("{}", fig11::render(&fig11::rows(&m)));
    println!();
    print!("{}", fig12::render(&fig12::rows(&m)));
    println!();
    print!("{}", fig13::render(&fig13::rows(&m)));
    println!();
    print!("{}", filtering::render(&filtering::rows(&m)));
    println!();
    print!("{}", ablation::render(&cfg));
}

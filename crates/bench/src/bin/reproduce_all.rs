//! Runs every experiment — the one-shot paper reproduction.
//!
//! The measurement matrix fills through the parallel harness: cells
//! run on all cores (`--jobs N` to override), finished cells are
//! cached under `results/cache` (`--no-cache` to recompute), and
//! `--filter SUBSTR` narrows the sweep to matching cells. Output is
//! mirrored to `results/reproduce_output.txt`, live progress to
//! `results/reproduce_progress.txt`.
//!
//! Robustness: flaky cells are retried (`--retries N`, default 2);
//! completions are journaled to `results/manifest.json` as they land,
//! so a killed run restarts with `--resume` and re-executes only the
//! cells the journal missed. The first Ctrl-C drains in-flight cells,
//! writes the manifest and exits 130; the second kills immediately.
//!
//! Scale with `SCU_SCALE` (default 1/16 of published dataset sizes).
//!
//! With `--trace <path>` the sweep also writes a chrome://tracing JSON
//! document covering every cell that simulated fresh (cached or
//! resumed cells have no event stream), loadable in Perfetto.

use std::fmt::Write as _;

use scu_algos::runner::Mode;
use scu_bench::experiments::{
    ablation, area, fig01, fig09, fig10, fig11, fig12, fig13, filtering, matrix::Matrix, tables,
    workload,
};
use scu_bench::ExperimentConfig;
use scu_harness::CliArgs;

/// All four machine variants, in the paper's order.
const MODES: [Mode; 4] = [
    Mode::GpuBaseline,
    Mode::ScuBasic,
    Mode::ScuFilteringOnly,
    Mode::ScuEnhanced,
];

fn main() {
    let args = CliArgs::from_env();
    scu_harness::session::reject_unparsed_args(&args);
    // Per-cell engine parallelism; the harness's apply_cli separately
    // clamps jobs x sim-threads to the machine.
    scu_algos::SimThreads::set(args.sim_threads);
    let cfg = ExperimentConfig::from_env();
    if let Err(e) = cfg.validate() {
        eprintln!("{e}");
        std::process::exit(2);
    }
    scu_algos::mount_graph_artifacts(
        (!args.no_graph_artifacts).then(|| scu_harness::session::DEFAULT_GRAPH_DIR.into()),
    );
    if let Some(f) = args.filter.as_deref() {
        if Matrix::plan(&cfg, &MODES, Some(f)).is_empty() {
            eprintln!(
                "--filter '{f}' matches none of the {} cells in the matrix",
                Matrix::plan(&cfg, &MODES, None).len()
            );
            std::process::exit(2);
        }
    }
    let harness = scu_harness::session::standard_harness(&args)
        .narrate(true)
        .progress_file("results/reproduce_progress.txt");
    let (m, sweep) = match &args.trace {
        Some(path) => {
            let (m, sweep, timelines) =
                Matrix::collect_traced(&cfg, &MODES, &harness, args.filter.as_deref());
            let doc = scu_trace::chrome::chrome_trace_document(&timelines);
            let text = serde_json::to_string(&doc).expect("serialising a Value cannot fail");
            match std::fs::write(path, text) {
                Ok(()) => eprintln!(
                    "trace: {} of {} cell(s) captured to {} (cached cells are not traced) — \
                     load it in Perfetto (ui.perfetto.dev) or chrome://tracing",
                    timelines.len(),
                    sweep.outcomes.len(),
                    path.display()
                ),
                Err(e) => eprintln!("cannot write trace to {}: {e}", path.display()),
            }
            (m, sweep)
        }
        None => Matrix::collect_with(&cfg, &MODES, &harness, args.filter.as_deref()),
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== SCU reproduction: all tables and figures (scale {:.4}) ===\n",
        cfg.scale
    );
    if args.filter.is_some() {
        // A narrowed sweep cannot fill the figures; report the cells.
        render_cells(&mut out, &m);
    } else if sweep.summary.all_done() {
        render_figures(&mut out, &cfg, &m);
    } else {
        let _ = writeln!(
            out,
            "grid incomplete ({}/{} cells) — figures skipped, collected cells below\n",
            sweep.summary.done, sweep.summary.total
        );
        render_cells(&mut out, &m);
    }
    print!("{out}");
    eprintln!("{}", sweep.summary.render());

    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/reproduce_output.txt", &out))
    {
        eprintln!("cannot write results/reproduce_output.txt: {e}");
    }
    scu_harness::session::exit_sweep(&sweep.summary);
}

/// The full paper reproduction: every table and figure.
fn render_figures(out: &mut String, cfg: &ExperimentConfig, m: &Matrix) {
    let sections = [
        tables::render_all(cfg),
        area::render(),
        workload::render(&workload::rows(cfg)),
        fig01::render(&fig01::rows(m)),
        fig09::render(&fig09::rows(m)),
        fig10::render(&fig10::rows(m)),
        fig11::render(&fig11::rows(m)),
        fig12::render(&fig12::rows(m)),
        fig13::render(&fig13::rows(m)),
        filtering::render(&filtering::rows(m)),
        ablation::render(cfg),
    ];
    *out += &sections.join("\n");
}

/// Per-cell headline metrics, for filtered or partial sweeps.
fn render_cells(out: &mut String, m: &Matrix) {
    let _ = writeln!(
        out,
        "{:<30} {:>14} {:>12} {:>12}",
        "cell", "total time us", "energy mJ", "iterations"
    );
    for e in m.entries() {
        let _ = writeln!(
            out,
            "{:<30} {:>14.1} {:>12.3} {:>12}",
            format!(
                "{}/{}/{}/{}",
                e.algo.name(),
                e.dataset.name(),
                e.system.name(),
                e.mode.name()
            ),
            e.report.total_time_ns() / 1000.0,
            e.report.energy.total_mj(),
            e.report.iterations,
        );
    }
}

//! Regenerates Figure 11 (basic vs enhanced SCU breakdown).
use scu_algos::runner::Mode;
use scu_bench::experiments::{fig11, matrix::Matrix};
use scu_bench::ExperimentConfig;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let m = Matrix::collect(
        &cfg,
        &[Mode::GpuBaseline, Mode::ScuBasic, Mode::ScuEnhanced],
    );
    print!("{}", fig11::render(&fig11::rows(&m)));
}

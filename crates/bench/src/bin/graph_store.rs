//! Graph artifact store tool: pre-build, inspect and verify the
//! build-once mmap'd CSR artifacts under `results/graphs`.
//!
//! ```text
//! graph_store build [dataset ...]   build-or-load artifacts (default: all six)
//! graph_store stat                  list artifacts with verification status
//!
//! options:
//!   --dir PATH    store directory (default: results/graphs)
//! ```
//!
//! `build` goes through the same `GraphStore::load_or_build` path the
//! sweeps use, so a warm artifact is a digest check + mmap and a cold
//! one is generated, published and reported. Scale and seed come from
//! `SCU_SCALE` / `SCU_SEED` as everywhere else; an out-of-range scale
//! is a one-line error, exit 2. The summary line reports the process
//! peak RSS (`VmHWM`), which is how the CI scale-22 smoke asserts the
//! streaming Kronecker builder's memory stays bounded by the output
//! CSR rather than an edge-triple list.

use std::sync::Arc;

use scu_algos::ExperimentConfig;
use scu_graph::artifact::{self, GraphStore};
use scu_graph::Dataset;
use scu_store::mmap::Mapped;

const USAGE: &str = "usage: graph_store <build|stat> [dataset ...] [--dir PATH]\n  \
    build   build-or-load artifacts for the named datasets (default: all six)\n          \
    at SCU_SCALE/SCU_SEED; prints one line per dataset plus peak RSS\n  \
    stat    list artifacts in the store with verification status\n  \
    --dir PATH   store directory (default: results/graphs)";

fn main() {
    let mut dir = scu_harness::session::DEFAULT_GRAPH_DIR.to_string();
    let mut command: Option<String> = None;
    let mut datasets: Vec<Dataset> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f.to_string(), Some(v.to_string())),
            None => (arg.clone(), None),
        };
        match flag.as_str() {
            "--dir" => {
                dir = inline.or_else(|| args.next()).unwrap_or_else(|| {
                    eprintln!("--dir expects a path\n{USAGE}");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            _ if command.is_none() => command = Some(arg),
            _ => match Dataset::from_name(&arg) {
                Some(d) => datasets.push(d),
                None => {
                    eprintln!("unknown dataset '{arg}'\n{USAGE}");
                    std::process::exit(2);
                }
            },
        }
    }
    if datasets.is_empty() {
        datasets = Dataset::ALL.to_vec();
    }
    match command.as_deref() {
        Some("build") => build(&dir, &datasets),
        Some("stat") => stat(&dir),
        Some(other) => {
            eprintln!("unknown command '{other}'\n{USAGE}");
            std::process::exit(2);
        }
        None => {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
}

fn build(dir: &str, datasets: &[Dataset]) {
    let cfg = ExperimentConfig::from_env();
    for &d in datasets {
        if let Err(e) = d.validate_scale(cfg.scale) {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
    let store = Arc::new(GraphStore::new(dir));
    for &d in datasets {
        let g = match store.load_or_build(d, cfg.scale, cfg.seed, || cfg_build(d, &cfg)) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        };
        let o = artifact::last_outcome().expect("load_or_build records an outcome");
        println!(
            "{d:<9} {:<8} {:>10} nodes {:>11} edges  mapped {:>12} B  build {:>9.2} s  {}",
            o.disposition.label(),
            g.num_nodes(),
            g.num_edges(),
            o.bytes_mapped,
            o.build_wall.as_secs_f64(),
            o.key,
        );
    }
    match peak_rss_kb() {
        Some(kb) => println!("peak RSS {:.1} MB", kb as f64 / 1024.0),
        None => println!("peak RSS unavailable (no /proc/self/status)"),
    }
}

fn cfg_build(d: Dataset, cfg: &ExperimentConfig) -> Result<scu_graph::Csr, String> {
    d.try_build(cfg.scale, cfg.seed)
}

fn stat(dir: &str) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            println!("store {dir}: unreadable ({e})");
            return;
        }
    };
    let mut names: Vec<_> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "csr"))
        .collect();
    names.sort();
    if names.is_empty() {
        println!("store {dir}: no artifacts");
        return;
    }
    for path in names {
        let size = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let verdict = verify(&path);
        println!(
            "{:<40} {:>12} B  {verdict}",
            path.file_name().and_then(|n| n.to_str()).unwrap_or("?"),
            size
        );
    }
    let q = scu_store::quarantine::retained(&GraphStore::new(dir).quarantine_dir());
    if q > 0 {
        println!("quarantine holds {q} file(s)");
    }
}

/// Verifies an artifact against its own embedded key (the digest and
/// layout checks are key-independent; the key check then just confirms
/// the embedded string round-trips). An intact artifact whose key was
/// written by a different `CSR_FORMAT_VERSION` is reported as stale,
/// not ok — every sweep would treat it as a key-mismatch miss, so a
/// store full of them yields zero hits despite verifying clean.
fn verify(path: &std::path::Path) -> String {
    let Ok(mut file) = std::fs::File::open(path) else {
        return "unreadable".to_string();
    };
    let Ok(map) = Mapped::of_file(&mut file) else {
        return "unreadable".to_string();
    };
    let map = Arc::new(map);
    let bytes: &[u8] = &map;
    let embedded = (|| {
        let len = u32::from_le_bytes(bytes.get(8..12)?.try_into().ok()?) as usize;
        String::from_utf8(bytes.get(12..12 + len)?.to_vec()).ok()
    })();
    let Some(key) = embedded else {
        return "corrupt (no readable key)".to_string();
    };
    match artifact::decode_artifact(&map, &key) {
        Ok(_) if !key.starts_with(&format!("{}|", artifact::CSR_FORMAT_VERSION)) => format!(
            "stale format (intact, but key {key:?} predates {}; sweeps will miss and rebuild)",
            artifact::CSR_FORMAT_VERSION
        ),
        Ok(g) => format!("ok ({} nodes, {} edges)", g.num_nodes(), g.num_edges()),
        Err(e) => format!("corrupt ({e})"),
    }
}

/// Peak resident set size in kB, from `/proc/self/status` (`VmHWM`).
fn peak_rss_kb() -> Option<u64> {
    std::fs::read_to_string("/proc/self/status")
        .ok()?
        .lines()
        .find(|l| l.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

//! Prints Tables 1-5 (configurations and dataset summaries).
use scu_bench::experiments::tables;
use scu_bench::ExperimentConfig;

fn main() {
    print!("{}", tables::render_all(&ExperimentConfig::from_env()));
}

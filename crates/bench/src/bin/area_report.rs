//! Regenerates the section 6.4 area report.
fn main() {
    print!("{}", scu_bench::experiments::area::render());
}

//! Quick calibration probe: prints headline metrics per dataset.
use scu_algos::{run, Algorithm, Mode, SystemKind};
use scu_graph::Dataset;

fn main() {
    let scale: f64 = std::env::var("SCU_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0 / 32.0);
    for kind in [SystemKind::Tx1, SystemKind::Gtx980] {
        for algo in [Algorithm::Bfs, Algorithm::Sssp, Algorithm::PageRank] {
            for d in [Dataset::Cond, Dataset::Kron, Dataset::Ca] {
                let g = d.build(scale, 42);
                let base = run(algo, &g, kind, Mode::GpuBaseline);
                let basic = run(algo, &g, kind, Mode::ScuBasic);
                let enh = run(algo, &g, kind, Mode::ScuEnhanced);
                println!(
                    "{kind:7} {algo:4} {d:9} n={:7} m={:8} | base_frac={:.2} | basic: sp={:.2} er={:.2} | enh: sp={:.2} er={:.2} insts={:.2} coal={:.2}/{:.2} bw={:.2}/{:.2}",
                    g.num_nodes(), g.num_edges(),
                    base.report.compaction_fraction(),
                    basic.report.speedup_vs(&base.report),
                    basic.report.energy_reduction_vs(&base.report),
                    enh.report.speedup_vs(&base.report),
                    enh.report.energy_reduction_vs(&base.report),
                    enh.report.gpu_thread_insts() as f64 / base.report.gpu_thread_insts() as f64,
                    base.report.gpu_coalescing(), enh.report.gpu_coalescing(),
                    base.report.bandwidth_utilization(), enh.report.bandwidth_utilization(),
                );
            }
        }
    }
}

//! Runs the design-space ablations (hash size, pipeline width, BFS grouping).
use scu_bench::ExperimentConfig;

fn main() {
    print!(
        "{}",
        scu_bench::experiments::ablation::render(&ExperimentConfig::from_env())
    );
}

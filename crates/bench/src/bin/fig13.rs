//! Regenerates Figure 13 (memory bandwidth utilisation).
use scu_algos::runner::Mode;
use scu_bench::experiments::{fig13, matrix::Matrix};
use scu_bench::ExperimentConfig;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let m = Matrix::collect(&cfg, &[Mode::GpuBaseline, Mode::ScuEnhanced]);
    print!("{}", fig13::render(&fig13::rows(&m)));
}

//! Prints the per-dataset workload characterisation (frontier shapes
//! and duplicate factors).
use scu_bench::experiments::workload;
use scu_bench::ExperimentConfig;

fn main() {
    let cfg = ExperimentConfig::from_env();
    print!("{}", workload::render(&workload::rows(&cfg)));
}

//! Runs a single (algorithm, dataset, system, mode) combination and
//! prints the full report — the workhorse for ad-hoc investigation.
//!
//! ```text
//! run_one [BFS|SSSP|PR|CC|KCORE] [ca|cond|delaunay|human|kron|msdoor] \
//!         [GTX980|TX1] [gpu|scu-basic|scu-filtering|scu-enhanced]
//! ```
//!
//! Scale/seed come from `SCU_SCALE` / `SCU_SEED` as usual. The result
//! is cached under `results/cache` like the full sweep's cells; pass
//! `--no-cache` to force a fresh simulation (recorded functional
//! traces may still replay from the store — add `--no-trace-cache`
//! for a fully cold run).
//!
//! With `--trace <path>` the cell always simulates fresh (a cached
//! result has no event stream) and its timeline is written as a
//! chrome://tracing JSON file, loadable in Perfetto or
//! `chrome://tracing`.
//!
//! With `--profile` the report is followed by a phase-time breakdown
//! derived from the same timeline: total processing/compaction/SCU
//! nanoseconds and the ten most expensive iterations — the quick
//! "where does this cell's time go" view without leaving the
//! terminal. Locally simulated cells also get a functional-trace
//! cache verdict (semantic key, hit/miss, bytes replayed or stored;
//! pass `--no-trace-cache` to force cold recording) and the graph
//! artifact store's verdict (artifact key, hit/built/rebuilt, bytes
//! mapped, generator wall time; pass `--no-graph-artifacts` to build
//! in memory).
//!
//! With `--remote URL` the cell is obtained from a running `scu_serve`
//! daemon instead of simulated locally: a cached cell is fetched with
//! zero recompute, a cold one is submitted as a one-cell sweep and
//! awaited. The printed report is byte-identical to the local path —
//! both build the cell through the same `ExperimentConfig::cell` and
//! serialise the same `CellResult`.

use scu_algos::cell::{Cell, CellResult};
use scu_algos::runner::{Algorithm, Mode};
use scu_algos::{SimThreads, SystemKind};
use scu_bench::ExperimentConfig;
use scu_graph::{Dataset, GraphStats};
use scu_harness::{CliArgs, ResultCache};
use scu_trace::chrome::chrome_trace_document;

fn parse_args(args: &[String]) -> Result<(Algorithm, Dataset, SystemKind, Mode), String> {
    let algo = match args.first().map(String::as_str) {
        None | Some("BFS") | Some("bfs") => Algorithm::Bfs,
        Some("SSSP") | Some("sssp") => Algorithm::Sssp,
        Some("PR") | Some("pr") => Algorithm::PageRank,
        Some("CC") | Some("cc") => Algorithm::Cc,
        Some("KCORE") | Some("kcore") => Algorithm::KCore,
        Some(x) => return Err(format!("unknown algorithm '{x}'")),
    };
    let dataset = match args.get(1).map(String::as_str) {
        None => Dataset::Kron,
        Some(name) => Dataset::ALL
            .into_iter()
            .find(|d| d.name() == name)
            .ok_or_else(|| format!("unknown dataset '{name}'"))?,
    };
    let system = match args.get(2).map(String::as_str) {
        None | Some("TX1") | Some("tx1") => SystemKind::Tx1,
        Some("GTX980") | Some("gtx980") => SystemKind::Gtx980,
        Some(x) => return Err(format!("unknown system '{x}'")),
    };
    let mode = match args.get(3).map(String::as_str) {
        None | Some("scu-enhanced") => Mode::ScuEnhanced,
        Some("gpu") => Mode::GpuBaseline,
        Some("scu-basic") => Mode::ScuBasic,
        Some("scu-filtering") => Mode::ScuFilteringOnly,
        Some(x) => return Err(format!("unknown mode '{x}'")),
    };
    Ok((algo, dataset, system, mode))
}

/// Runs (or recalls) the cell; returns the result and whether it came
/// from the cache. With the result cache open, the functional-trace
/// cache is mounted on the same store (unless `--no-trace-cache`), so
/// a re-simulation of a known cell replays its recorded traces.
fn obtain(cell: &Cell, no_cache: bool, trace_cache: bool) -> (CellResult, bool) {
    if !no_cache {
        if let Ok(cache) = ResultCache::open("results/cache") {
            scu_harness::trace_bridge::install(Some(cache.backend()), trace_cache);
            let key = cell.cache_key();
            if let Some(value) = cache.load(&key) {
                if let Ok(result) = CellResult::from_value(&value) {
                    return (result, true);
                }
            }
            let result = cell.run();
            let value = serde_json::to_value(&result);
            if let Err(e) = cache.store(&key, &value) {
                eprintln!("cache store failed: {e}");
            }
            return (result, false);
        }
    } else if trace_cache {
        // --no-cache recomputes the result, but recorded functional
        // traces may still replay — they cannot change result bytes.
        // --no-trace-cache on top makes the simulation fully cold.
        if let Ok(cache) = ResultCache::open("results/cache") {
            scu_harness::trace_bridge::install(Some(cache.backend()), true);
        }
    }
    (cell.run(), false)
}

/// Obtains the cell from a running `scu_serve` daemon. A warm cell is
/// a pure cache read; a cold one is submitted as a one-cell sweep,
/// awaited via the event stream, then fetched from the now-warm cache.
/// Both paths deserialise the same `CellResult` envelope the local
/// cache holds, so the printed report is byte-identical.
fn obtain_remote(cell: &Cell, url: &str) -> Result<(CellResult, bool), String> {
    use serde_json::Value;

    let client = scu_server::Client::new(url);
    let id = cell.id();
    let parse = |value: &Value| {
        let payload = value
            .get("value")
            .ok_or_else(|| format!("cell response for {id} carries no value"))?;
        CellResult::from_value(payload).map_err(|e| format!("cell {id} payload is malformed: {e}"))
    };
    if let Some(entry) = client.cell(&id).map_err(|e| e.to_string())? {
        return Ok((parse(&entry)?, true));
    }
    let spec = Value::Object(vec![
        (
            "algorithm".to_string(),
            Value::Str(cell.algorithm.name().to_string()),
        ),
        (
            "dataset".to_string(),
            Value::Str(cell.dataset.name().to_string()),
        ),
        (
            "system".to_string(),
            Value::Str(cell.system.name().to_string()),
        ),
        ("mode".to_string(), Value::Str(cell.mode.name().to_string())),
    ]);
    let body = Value::Object(vec![("cells".to_string(), Value::Array(vec![spec]))]);
    let sweep = client.submit(&body).map_err(|e| e.to_string())?;
    let status = client.wait(sweep).map_err(|e| e.to_string())?;
    let entry = client
        .cell(&id)
        .map_err(|e| e.to_string())?
        .ok_or_else(|| {
            let detail = status
                .get("cells")
                .and_then(Value::as_array)
                .and_then(|cells| cells.first())
                .and_then(|c| c.get("error"))
                .and_then(Value::as_str)
                .unwrap_or("cell did not complete");
            format!("remote simulation failed: {detail}")
        })?;
    Ok((parse(&entry)?, false))
}

const USAGE: &str = "usage: run_one [BFS|SSSP|PR|CC|KCORE] [dataset] [GTX980|TX1] [mode] \
     [--no-cache] [--no-trace-cache] [--no-graph-artifacts] [--trace PATH] [--profile] \
     [--sim-threads N] [--remote URL]";

fn main() {
    let args = CliArgs::from_env();
    let mut rest = args.rest.clone();
    let profile = match rest.iter().position(|a| a == "--profile") {
        Some(i) => {
            rest.remove(i);
            true
        }
        None => false,
    };
    let remote = match rest
        .iter()
        .position(|a| a == "--remote" || a.starts_with("--remote="))
    {
        Some(i) => {
            let url = match rest[i].split_once('=') {
                Some((_, v)) => v.to_string(),
                None => {
                    if i + 1 >= rest.len() {
                        eprintln!("--remote expects a server URL\n{USAGE}");
                        std::process::exit(2);
                    }
                    rest.remove(i + 1)
                }
            };
            rest.remove(i);
            Some(url)
        }
        None => None,
    };
    if remote.is_some() && args.trace.is_some() {
        eprintln!("--trace needs a local simulation; drop --remote to trace this cell");
        std::process::exit(2);
    }
    let (algo, dataset, system, mode) = match parse_args(&rest) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    SimThreads::set(args.sim_threads);
    let cfg = ExperimentConfig::from_env();
    if let Err(e) = dataset.validate_scale(cfg.scale) {
        eprintln!("{e}");
        std::process::exit(2);
    }
    scu_algos::mount_graph_artifacts(
        (!args.no_graph_artifacts && remote.is_none())
            .then(|| scu_harness::session::DEFAULT_GRAPH_DIR.into()),
    );
    // The same constructor the sweep binaries and the server use, so
    // every entry path shares cache keys and result bytes.
    let cell = cfg.cell(algo, dataset, system, mode);
    if profile {
        // Engine phase counters are process-global; zero them so the
        // breakdown below covers exactly this cell's simulation.
        scu_gpu::reset_phase_profile();
    }
    let g = scu_algos::shared_graph(dataset, cfg.scale, cfg.seed);
    let stats = GraphStats::of(&g);
    println!(
        "{algo} on {dataset} ({} nodes, {} edges, gini {:.2}) @ {system} [{mode}]",
        stats.nodes, stats.edges, stats.degree_gini
    );

    let (result, cached) = if let Some(url) = &remote {
        match obtain_remote(&cell, url) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    } else {
        match &args.trace {
            Some(path) => {
                // Tracing needs the event stream, so the cell simulates
                // fresh; the result cache is neither consulted nor written.
                let (result, timeline) = cell.run_traced();
                let doc = chrome_trace_document(&[(cell.id(), timeline)]);
                let text = serde_json::to_string(&doc).expect("serialising a Value cannot fail");
                match std::fs::write(path, text) {
                    Ok(()) => eprintln!(
                        "trace written to {} — load it in Perfetto (ui.perfetto.dev) \
                     or chrome://tracing",
                        path.display()
                    ),
                    Err(e) => eprintln!("cannot write trace to {}: {e}", path.display()),
                }
                (result, false)
            }
            None => obtain(&cell, args.no_cache, !args.no_trace_cache),
        }
    };
    if cached {
        println!("(cached result — pass --no-cache to re-simulate)");
    }
    let r = &result.report;
    println!("\niterations           {}", r.iterations);
    println!(
        "total time           {:>12.1} us",
        r.total_time_ns() / 1000.0
    );
    println!(
        "  GPU processing     {:>12.1} us",
        r.gpu_processing.time_ns / 1000.0
    );
    println!(
        "  GPU compaction     {:>12.1} us",
        r.gpu_compaction.time_ns / 1000.0
    );
    println!(
        "  SCU operations     {:>12.1} us ({} ops)",
        r.scu.time_ns / 1000.0,
        r.scu.ops
    );
    println!(
        "compaction fraction  {:>12.1} %",
        r.compaction_fraction() * 100.0
    );
    println!("GPU thread insts     {:>12}", r.gpu_thread_insts());
    println!("GPU tx/mem-inst      {:>12.2}", r.gpu_coalescing());
    println!(
        "DRAM traffic         {:>12.2} MB",
        r.dram_bytes() as f64 / 1e6
    );
    println!(
        "bandwidth util       {:>12.1} %",
        r.bandwidth_utilization() * 100.0
    );
    println!("\nenergy               {:>12.3} mJ", r.energy.total_mj());
    println!(
        "  GPU dynamic        {:>12.3} mJ",
        r.energy.gpu_dynamic_pj / 1e9
    );
    println!(
        "  SCU dynamic        {:>12.3} mJ",
        r.energy.scu_dynamic_pj / 1e9
    );
    println!(
        "  DRAM dynamic       {:>12.3} mJ",
        r.energy.dram_dynamic_pj / 1e9
    );
    println!("  static             {:>12.3} mJ", r.energy.static_pj / 1e9);
    println!(
        "\nanswer values        {:>12} (fnv {:016x})",
        result.values_len, result.values_fnv
    );
    if mode.uses_scu() {
        println!("\nSCU pipeline elems   {:>12}", r.scu.data_elements);
        println!("SCU skipped elems    {:>12}", r.scu.skipped_elements);
        println!(
            "filter probes/drops  {:>12} / {}",
            r.scu.filter.probes, r.scu.filter.dropped
        );
        println!(
            "groups formed        {:>12} (mean size {:.1})",
            r.scu.group.groups,
            r.scu.group.mean_group_size()
        );
    }
    if profile {
        print_profile(&result.phases);
        print_engine_profile(cached, args.sim_threads);
        if remote.is_none() {
            print_trace_outcome(cached);
            print_graph_outcome();
        }
    }
}

/// Renders the graph artifact store's verdict for this process: which
/// artifact key the graph ran under, whether it was served zero-copy
/// (hit), built and published (built), or quarantined and rebuilt
/// (rebuilt), plus bytes mapped and the generator wall time.
fn print_graph_outcome() {
    println!("\n--- profile: graph artifact store ---");
    match scu_algos::graph_artifact::last_outcome() {
        None => {
            if scu_algos::graph_artifact::active().is_some() {
                println!("no artifact activity — graph came from the in-process memo");
            } else {
                println!("artifact store disabled — graph built in memory");
            }
        }
        Some(o) => {
            let verdict = match o.disposition {
                scu_algos::graph_artifact::ArtifactDisposition::Hit => {
                    "hit — mmap'd a verified artifact, zero-copy"
                }
                scu_algos::graph_artifact::ArtifactDisposition::Built => {
                    "built — no artifact yet; generated and published"
                }
                scu_algos::graph_artifact::ArtifactDisposition::Rebuilt => {
                    "rebuilt — artifact failed verification; quarantined, regenerated, republished"
                }
            };
            println!("artifact key     {}", o.key);
            println!("outcome          {verdict}");
            println!("bytes mapped     {:>12}", o.bytes_mapped);
            println!(
                "build wall       {:>12.1} ms",
                o.build_wall.as_secs_f64() * 1e3
            );
        }
    }
}

/// Renders the functional-trace cache's verdict for this cell: the
/// semantic key it ran under, whether recorded traces were replayed
/// (warm) or recorded fresh (cold), and how many bytes moved either
/// way. A result-cache hit skips simulation entirely, so it reports
/// no trace activity.
fn print_trace_outcome(cached: bool) {
    println!("\n--- profile: functional-trace cache ---");
    match scu_algos::trace_cache::last_cell_outcome() {
        None if cached => println!("no trace activity — result came from the result cache"),
        None => println!("no trace activity — trace cache disabled or no store mounted"),
        Some(o) => {
            let verdict = if o.poisoned {
                "poisoned — stored trace failed verification, fell back to cold recording"
            } else if o.hit {
                "hit — replayed recorded traces, functional recording skipped"
            } else if o.stored {
                "miss — recorded fresh traces and stored them"
            } else if o.oversize {
                "miss — recorded fresh traces; blob exceeded the size cap, not stored"
            } else {
                "miss — recorded fresh traces; store declined the blob"
            };
            println!("semantic key     {}", o.key);
            println!("outcome          {verdict}");
            println!("kernel launches  {:>12}", o.launches);
            println!("bytes replayed   {:>12}", o.bytes_replayed);
            println!("bytes stored     {:>12}", o.bytes_stored);
        }
    }
}

/// Renders the host wall-clock breakdown of the GPU engine's execution
/// phases for this process: with `--sim-threads` > 1, time splits into
/// the sequential functional pass, the parallel per-SM timing lanes
/// and the ordered L2 replay; at 1 it all lands in the single
/// sequential pass.
fn print_engine_profile(cached: bool, sim_threads: usize) {
    let p = scu_gpu::phase_profile();
    println!("\n--- profile: engine wall-clock (host, sim-threads={sim_threads}) ---");
    if p.total_ns() == 0 {
        if cached {
            println!("no engine time recorded — result came from the cache");
        } else {
            println!("no engine time recorded — no GPU kernels ran");
        }
        return;
    }
    let total = p.total_ns() as f64;
    for (name, ns) in [
        ("functional pass", p.functional_ns),
        ("timing lanes", p.lane_ns),
        ("ordered replay", p.replay_ns),
        ("sequential path", p.sequential_ns),
    ] {
        if ns > 0 {
            println!(
                "{name:<16} {:>12.1} ms  {:>5.1} %",
                ns as f64 / 1e6,
                100.0 * ns as f64 / total
            );
        }
    }
}

/// Renders the `--profile` view: phase totals plus the heaviest
/// iterations, all derived from the cell's recorded timeline breakdown
/// (no extra instrumentation — cached results carry the same rows).
fn print_profile(phases: &[scu_trace::PhaseRow]) {
    if phases.is_empty() {
        println!("\nprofile: no phase rows recorded for this cell");
        return;
    }
    let sum = |f: fn(&scu_trace::PhaseRow) -> f64| phases.iter().map(f).sum::<f64>();
    let proc = sum(|p| p.processing_ns);
    let comp = sum(|p| p.compaction_ns);
    let scu = sum(|p| p.scu_ns);
    let total = (proc + comp + scu).max(f64::MIN_POSITIVE);

    println!("\n--- profile: phase totals ---");
    for (name, ns) in [
        ("GPU processing", proc),
        ("GPU compaction", comp),
        ("SCU operations", scu),
    ] {
        println!(
            "{name:<16} {:>12.1} us  {:>5.1} %",
            ns / 1000.0,
            100.0 * ns / total
        );
    }

    let mut by_time: Vec<&scu_trace::PhaseRow> = phases.iter().collect();
    by_time.sort_by(|a, b| {
        let ta = a.processing_ns + a.compaction_ns + a.scu_ns;
        let tb = b.processing_ns + b.compaction_ns + b.scu_ns;
        tb.partial_cmp(&ta)
            .expect("phase times are finite")
            .then(a.iter.cmp(&b.iter))
    });
    let top = by_time.len().min(10);
    println!(
        "\n--- profile: top {top} of {} iterations ---",
        by_time.len()
    );
    println!(
        "{:>5} {:>14} {:>14} {:>14} {:>14}",
        "iter", "total us", "processing us", "compaction us", "scu us"
    );
    for p in &by_time[..top] {
        let t = p.processing_ns + p.compaction_ns + p.scu_ns;
        println!(
            "{:>5} {:>14.1} {:>14.1} {:>14.1} {:>14.1}",
            p.iter,
            t / 1000.0,
            p.processing_ns / 1000.0,
            p.compaction_ns / 1000.0,
            p.scu_ns / 1000.0
        );
    }
}

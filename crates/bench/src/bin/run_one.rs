//! Runs a single (algorithm, dataset, system, mode) combination and
//! prints the full report — the workhorse for ad-hoc investigation.
//!
//! ```text
//! run_one [BFS|SSSP|PR|CC|KCORE] [ca|cond|delaunay|human|kron|msdoor] \
//!         [GTX980|TX1] [gpu|scu-basic|scu-filtering|scu-enhanced]
//! ```
//!
//! Scale/seed come from `SCU_SCALE` / `SCU_SEED` as usual.

use scu_algos::runner::{run_configured, Algorithm, Mode};
use scu_algos::SystemKind;
use scu_bench::ExperimentConfig;
use scu_graph::{Dataset, GraphStats};

fn parse_args() -> Result<(Algorithm, Dataset, SystemKind, Mode), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let algo = match args.first().map(String::as_str) {
        None | Some("BFS") | Some("bfs") => Algorithm::Bfs,
        Some("SSSP") | Some("sssp") => Algorithm::Sssp,
        Some("PR") | Some("pr") => Algorithm::PageRank,
        Some("CC") | Some("cc") => Algorithm::Cc,
        Some("KCORE") | Some("kcore") => Algorithm::KCore,
        Some(x) => return Err(format!("unknown algorithm '{x}'")),
    };
    let dataset = match args.get(1).map(String::as_str) {
        None => Dataset::Kron,
        Some(name) => Dataset::ALL
            .into_iter()
            .find(|d| d.name() == name)
            .ok_or_else(|| format!("unknown dataset '{name}'"))?,
    };
    let system = match args.get(2).map(String::as_str) {
        None | Some("TX1") | Some("tx1") => SystemKind::Tx1,
        Some("GTX980") | Some("gtx980") => SystemKind::Gtx980,
        Some(x) => return Err(format!("unknown system '{x}'")),
    };
    let mode = match args.get(3).map(String::as_str) {
        None | Some("scu-enhanced") => Mode::ScuEnhanced,
        Some("gpu") => Mode::GpuBaseline,
        Some("scu-basic") => Mode::ScuBasic,
        Some("scu-filtering") => Mode::ScuFilteringOnly,
        Some(x) => return Err(format!("unknown mode '{x}'")),
    };
    Ok((algo, dataset, system, mode))
}

fn main() {
    let (algo, dataset, system, mode) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("usage: run_one [BFS|SSSP|PR|CC|KCORE] [dataset] [GTX980|TX1] [mode]");
            std::process::exit(2);
        }
    };
    let cfg = ExperimentConfig::from_env();
    let g = dataset.build(cfg.scale, cfg.seed);
    let stats = GraphStats::of(&g);
    println!(
        "{algo} on {dataset} ({} nodes, {} edges, gini {:.2}) @ {system} [{mode}]",
        stats.nodes, stats.edges, stats.degree_gini
    );

    let scu_cfg = cfg.scu_config(system);
    let out = run_configured(algo, &g, system, mode, cfg.pr_iters, Some(&scu_cfg));
    let r = &out.report;
    println!("\niterations           {}", r.iterations);
    println!("total time           {:>12.1} us", r.total_time_ns() / 1000.0);
    println!("  GPU processing     {:>12.1} us", r.gpu_processing.time_ns / 1000.0);
    println!("  GPU compaction     {:>12.1} us", r.gpu_compaction.time_ns / 1000.0);
    println!("  SCU operations     {:>12.1} us ({} ops)", r.scu.time_ns / 1000.0, r.scu.ops);
    println!("compaction fraction  {:>12.1} %", r.compaction_fraction() * 100.0);
    println!("GPU thread insts     {:>12}", r.gpu_thread_insts());
    println!("GPU tx/mem-inst      {:>12.2}", r.gpu_coalescing());
    println!("DRAM traffic         {:>12.2} MB", r.dram_bytes() as f64 / 1e6);
    println!("bandwidth util       {:>12.1} %", r.bandwidth_utilization() * 100.0);
    println!("\nenergy               {:>12.3} mJ", r.energy.total_mj());
    println!("  GPU dynamic        {:>12.3} mJ", r.energy.gpu_dynamic_pj / 1e9);
    println!("  SCU dynamic        {:>12.3} mJ", r.energy.scu_dynamic_pj / 1e9);
    println!("  DRAM dynamic       {:>12.3} mJ", r.energy.dram_dynamic_pj / 1e9);
    println!("  static             {:>12.3} mJ", r.energy.static_pj / 1e9);
    if mode.uses_scu() {
        println!("\nSCU pipeline elems   {:>12}", r.scu.data_elements);
        println!("SCU skipped elems    {:>12}", r.scu.skipped_elements);
        println!("filter probes/drops  {:>12} / {}", r.scu.filter.probes, r.scu.filter.dropped);
        println!("groups formed        {:>12} (mean size {:.1})", r.scu.group.groups, r.scu.group.mean_group_size());
    }
}

//! Perf-regression gate over the criterion suite.
//!
//! ```text
//! bench_gate RESULTS.jsonl [--baseline PATH] [--tolerance PCT] [--update]
//! ```
//!
//! `RESULTS.jsonl` is the file a bench run appends via
//! `SCU_BENCH_JSON` (one JSON object per benchmark). The committed
//! baseline (`BENCH_baseline.json` by default) maps benchmark names to
//! reference timings; the gate fails (exit 1) when any benchmark's
//! best-of-run (`min_ns`, the noise-robust statistic) regresses more
//! than the tolerance (default 10%) over its baseline entry.
//!
//! `--update` rewrites the baseline's `benchmarks` section from the
//! results instead of comparing, preserving any other top-level keys
//! (e.g. the recorded `reproduce_all` wall-clock). Run it on the
//! reference machine after intentional perf changes and commit the
//! result; see `EXPERIMENTS.md` for the workflow.
//!
//! Records tagged `"degraded": true` (emitted by the criterion stub
//! when the host offered fewer cores than the bench requested) are
//! warned about in compare mode and **refused** by `--update`: a
//! baseline must never encode timings from an undersized host.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::exit;

use serde_json::Value;

/// One benchmark measurement, from either side of the comparison.
#[derive(Debug, Clone, Copy)]
struct Sample {
    min_ns: f64,
    mean_ns: f64,
    /// The record was measured with fewer cores than requested.
    degraded: bool,
}

fn usage() -> ! {
    eprintln!("usage: bench_gate RESULTS.jsonl [--baseline PATH] [--tolerance PCT] [--update]");
    exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("bench_gate: {msg}");
    exit(2);
}

/// Parses the JSONL results file into name → sample (last write wins,
/// matching a rerun appending to the same file).
fn read_results(path: &PathBuf) -> BTreeMap<String, Sample> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", path.display())));
    let mut out = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v: Value = serde_json::from_str(line).unwrap_or_else(|e| {
            fail(&format!(
                "{}:{}: bad JSON line: {e}",
                path.display(),
                lineno + 1
            ))
        });
        let name = v.get("name").and_then(Value::as_str).unwrap_or_else(|| {
            fail(&format!(
                "{}:{}: missing \"name\"",
                path.display(),
                lineno + 1
            ))
        });
        let num = |key: &str| {
            v.get(key).and_then(Value::as_f64).unwrap_or_else(|| {
                fail(&format!(
                    "{}:{}: missing numeric \"{key}\"",
                    path.display(),
                    lineno + 1
                ))
            })
        };
        out.insert(
            name.to_string(),
            Sample {
                min_ns: num("min_ns"),
                mean_ns: num("mean_ns"),
                degraded: matches!(v.get("degraded"), Some(Value::Bool(true))),
            },
        );
    }
    if out.is_empty() {
        fail(&format!("{}: no benchmark results", path.display()));
    }
    out
}

/// Loads the baseline document (or an empty object for `--update` on a
/// fresh repo).
fn read_baseline(path: &PathBuf, must_exist: bool) -> Value {
    match std::fs::read_to_string(path) {
        Ok(text) => serde_json::from_str(&text)
            .unwrap_or_else(|e| fail(&format!("{}: bad JSON: {e}", path.display()))),
        Err(_) if !must_exist => Value::Object(Vec::new()),
        Err(e) => fail(&format!("cannot read {}: {e}", path.display())),
    }
}

fn update_baseline(path: &PathBuf, results: &BTreeMap<String, Sample>) {
    let degraded: Vec<&str> = results
        .iter()
        .filter(|(_, s)| s.degraded)
        .map(|(name, _)| name.as_str())
        .collect();
    if !degraded.is_empty() {
        fail(&format!(
            "refusing --update: {} result(s) were measured with degraded parallelism \
             (the host offered fewer cores than the bench requested): {}. \
             Rerun on a machine with enough cores before refreshing the baseline.",
            degraded.len(),
            degraded.join(", ")
        ));
    }
    let doc = read_baseline(path, false);
    let mut entries: Vec<(String, Value)> = doc
        .as_object()
        .map(<[(String, Value)]>::to_vec)
        .unwrap_or_default();
    // Stale copies of the sections this tool owns are replaced below.
    entries.retain(|(k, _)| k != "schema" && k != "benchmarks");

    let benches: Vec<(String, Value)> = results
        .iter()
        .map(|(name, s)| {
            (
                name.clone(),
                Value::Object(vec![
                    ("min_ns".to_string(), Value::F64(s.min_ns)),
                    ("mean_ns".to_string(), Value::F64(s.mean_ns)),
                ]),
            )
        })
        .collect();
    let mut out = vec![(
        "schema".to_string(),
        Value::Str("scu-bench-baseline-1".to_string()),
    )];
    out.extend(entries);
    out.push(("benchmarks".to_string(), Value::Object(benches)));

    let text =
        serde_json::to_string_pretty(&Value::Object(out)).expect("serialising a Value cannot fail");
    std::fs::write(path, text + "\n")
        .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", path.display())));
    println!(
        "baseline {} updated with {} benchmark(s)",
        path.display(),
        results.len()
    );
}

fn compare(path: &PathBuf, results: &BTreeMap<String, Sample>, tolerance_pct: f64) -> i32 {
    let doc = read_baseline(path, true);
    let Some(benches) = doc.get("benchmarks").and_then(Value::as_object) else {
        fail(&format!("{}: no \"benchmarks\" section", path.display()));
    };

    let limit = 1.0 + tolerance_pct / 100.0;
    let mut regressions = 0u32;
    let mut missing = 0u32;
    println!(
        "{:<48} {:>12} {:>12} {:>8}  verdict (tolerance {tolerance_pct}%)",
        "benchmark", "base min", "run min", "ratio"
    );
    for (name, base) in benches {
        let base_min = base
            .get("min_ns")
            .and_then(Value::as_f64)
            .unwrap_or_else(|| {
                fail(&format!(
                    "{}: benchmark {name} has no min_ns",
                    path.display()
                ))
            });
        let Some(cur) = results.get(name.as_str()) else {
            println!(
                "{name:<48} {base_min:>12.0} {:>12} {:>8}  MISSING from results",
                "-", "-"
            );
            missing += 1;
            continue;
        };
        let ratio = cur.min_ns / base_min.max(f64::MIN_POSITIVE);
        let verdict = if ratio > limit {
            regressions += 1;
            "REGRESSION"
        } else {
            "ok"
        };
        println!(
            "{name:<48} {base_min:>12.0} {:>12.0} {ratio:>8.3}  {verdict}",
            cur.min_ns
        );
    }
    for name in results.keys() {
        if !benches.iter().any(|(k, _)| k == name) {
            println!("{name:<48} not in baseline — run --update to record it");
        }
    }
    let degraded = results.values().filter(|s| s.degraded).count();
    if degraded > 0 {
        eprintln!(
            "bench_gate: warning: {degraded} result(s) tagged degraded — the host \
             offered fewer cores than requested, so multi-thread timings understate \
             real hardware (comparison still runs; --update would refuse them)"
        );
    }

    if regressions > 0 {
        eprintln!(
            "bench_gate: {regressions} benchmark(s) regressed beyond {tolerance_pct}% \
             — investigate or refresh the baseline with --update"
        );
        return 1;
    }
    if missing > 0 {
        eprintln!(
            "bench_gate: {missing} baseline benchmark(s) missing from the run \
             — did every bench target execute?"
        );
        return 1;
    }
    println!("bench_gate: all benchmarks within {tolerance_pct}% of baseline");
    0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut results_path: Option<PathBuf> = None;
    let mut baseline = PathBuf::from("BENCH_baseline.json");
    let mut tolerance_pct = 10.0f64;
    let mut update = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => {
                baseline = it.next().map(PathBuf::from).unwrap_or_else(|| usage());
            }
            "--tolerance" => {
                tolerance_pct = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|t: &f64| t.is_finite() && *t >= 0.0)
                    .unwrap_or_else(|| usage());
            }
            "--update" => update = true,
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') && results_path.is_none() => {
                results_path = Some(PathBuf::from(other));
            }
            other => fail(&format!("unknown argument '{other}'")),
        }
    }
    let Some(results_path) = results_path else {
        usage();
    };

    let results = read_results(&results_path);
    if update {
        update_baseline(&baseline, &results);
    } else {
        exit(compare(&baseline, &results, tolerance_pct));
    }
}

//! Exports the full measurement matrix as JSON for downstream
//! analysis/plotting tools.
//!
//! ```text
//! SCU_SCALE=0.0625 cargo run --release -p scu-bench --bin export_json > matrix.json
//! ```

use scu_algos::runner::Mode;
use scu_bench::experiments::matrix::Matrix;
use scu_bench::ExperimentConfig;
use serde::Serialize;

#[derive(Serialize)]
struct JsonRow<'a> {
    algorithm: &'a str,
    dataset: &'a str,
    system: &'a str,
    mode: &'a str,
    total_time_ns: f64,
    gpu_time_ns: f64,
    scu_time_ns: f64,
    compaction_fraction: f64,
    energy_total_pj: f64,
    gpu_thread_insts: u64,
    gpu_coalescing: f64,
    bandwidth_utilization: f64,
    iterations: u32,
    report: &'a scu_algos::RunReport,
}

fn main() {
    let cfg = ExperimentConfig::from_env();
    let m = Matrix::collect(
        &cfg,
        &[Mode::GpuBaseline, Mode::ScuBasic, Mode::ScuFilteringOnly, Mode::ScuEnhanced],
    );
    let rows: Vec<JsonRow> = m
        .entries()
        .iter()
        .map(|e| JsonRow {
            algorithm: e.algo.name(),
            dataset: e.dataset.name(),
            system: e.system.name(),
            mode: e.mode.name(),
            total_time_ns: e.report.total_time_ns(),
            gpu_time_ns: e.report.gpu_time_ns(),
            scu_time_ns: e.report.scu.time_ns,
            compaction_fraction: e.report.compaction_fraction(),
            energy_total_pj: e.report.energy.total_pj(),
            gpu_thread_insts: e.report.gpu_thread_insts(),
            gpu_coalescing: e.report.gpu_coalescing(),
            bandwidth_utilization: e.report.bandwidth_utilization(),
            iterations: e.report.iterations,
            report: &e.report,
        })
        .collect();
    println!("{}", serde_json::to_string_pretty(&rows).expect("serialisable"));
}

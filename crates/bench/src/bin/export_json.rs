//! Exports the full measurement matrix as JSON for downstream
//! analysis/plotting tools.
//!
//! ```text
//! SCU_SCALE=0.0625 cargo run --release -p scu-bench --bin export_json > matrix.json
//! ```
//!
//! Accepts the shared harness flags: `--jobs N`, `--no-cache`,
//! `--filter SUBSTR`, `--timeout-secs N`, `--retries N`, `--resume`.
//! Completions are journaled to `results/manifest.json`, so a killed
//! export rerun with `--resume` recomputes only the missing cells and
//! produces byte-identical JSON. The matrix covers the paper's three
//! primitives plus the CC and k-core extensions.

use scu_algos::runner::Mode;
use scu_bench::experiments::matrix::{Matrix, Measurement};
use scu_bench::ExperimentConfig;
use scu_harness::CliArgs;
use serde_json::Value;

fn row(e: &Measurement) -> Value {
    let s = |v: &str| Value::Str(v.to_string());
    Value::Object(vec![
        ("algorithm".into(), s(e.algo.name())),
        ("dataset".into(), s(e.dataset.name())),
        ("system".into(), s(e.system.name())),
        ("mode".into(), s(e.mode.name())),
        ("total_time_ns".into(), Value::F64(e.report.total_time_ns())),
        ("gpu_time_ns".into(), Value::F64(e.report.gpu_time_ns())),
        ("scu_time_ns".into(), Value::F64(e.report.scu.time_ns)),
        (
            "compaction_fraction".into(),
            Value::F64(e.report.compaction_fraction()),
        ),
        (
            "energy_total_pj".into(),
            Value::F64(e.report.energy.total_pj()),
        ),
        (
            "gpu_thread_insts".into(),
            Value::U64(e.report.gpu_thread_insts()),
        ),
        (
            "gpu_coalescing".into(),
            Value::F64(e.report.gpu_coalescing()),
        ),
        (
            "bandwidth_utilization".into(),
            Value::F64(e.report.bandwidth_utilization()),
        ),
        ("iterations".into(), Value::U64(e.report.iterations as u64)),
        ("values_fnv".into(), Value::U64(e.values_fnv)),
        ("report".into(), serde_json::to_value(&e.report)),
        ("phases".into(), serde_json::to_value(&e.phases)),
    ])
}

/// All four machine variants, in the paper's order.
const MODES: [Mode; 4] = [
    Mode::GpuBaseline,
    Mode::ScuBasic,
    Mode::ScuFilteringOnly,
    Mode::ScuEnhanced,
];

fn main() {
    let args = CliArgs::from_env();
    scu_harness::session::reject_unparsed_args(&args);
    if args.trace.is_some() {
        eprintln!("note: --trace is honoured by run_one and reproduce_all, not export_json");
    }
    scu_algos::SimThreads::set(args.sim_threads);
    let cfg = ExperimentConfig::from_env();
    if let Err(e) = cfg.validate() {
        eprintln!("{e}");
        std::process::exit(2);
    }
    scu_algos::mount_graph_artifacts(
        (!args.no_graph_artifacts).then(|| scu_harness::session::DEFAULT_GRAPH_DIR.into()),
    );
    if let Some(f) = args.filter.as_deref() {
        if Matrix::plan(&cfg, &MODES, Some(f)).is_empty() {
            eprintln!(
                "--filter '{f}' matches none of the {} cells in the matrix",
                Matrix::plan(&cfg, &MODES, None).len()
            );
            std::process::exit(2);
        }
    }
    let harness = scu_harness::session::standard_harness(&args);
    let (m, sweep) = Matrix::collect_with(&cfg, &MODES, &harness, args.filter.as_deref());
    let rows: Vec<Value> = m.entries().iter().map(row).collect();
    println!(
        "{}",
        serde_json::to_string_pretty(&Value::Array(rows)).expect("serialisable")
    );
    if !sweep.summary.all_done() {
        eprintln!("{}", sweep.summary.render());
    }
    scu_harness::session::exit_sweep(&sweep.summary);
}

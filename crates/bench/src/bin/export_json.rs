//! Exports the full measurement matrix as JSON for downstream
//! analysis/plotting tools.
//!
//! ```text
//! SCU_SCALE=0.0625 cargo run --release -p scu-bench --bin export_json > matrix.json
//! ```
//!
//! Accepts the shared harness flags: `--jobs N`, `--no-cache`,
//! `--filter SUBSTR`, `--timeout-secs N`, `--retries N`, `--resume`.
//! Completions are journaled to `results/manifest.json`, so a killed
//! export rerun with `--resume` recomputes only the missing cells and
//! produces byte-identical JSON. The matrix covers the paper's three
//! primitives plus the CC and k-core extensions.

use scu_algos::runner::Mode;
use scu_bench::experiments::matrix::{Matrix, Measurement};
use scu_bench::ExperimentConfig;
use scu_harness::{CliArgs, Harness};
use serde_json::Value;

fn row(e: &Measurement) -> Value {
    let s = |v: &str| Value::Str(v.to_string());
    Value::Object(vec![
        ("algorithm".into(), s(e.algo.name())),
        ("dataset".into(), s(e.dataset.name())),
        ("system".into(), s(e.system.name())),
        ("mode".into(), s(e.mode.name())),
        ("total_time_ns".into(), Value::F64(e.report.total_time_ns())),
        ("gpu_time_ns".into(), Value::F64(e.report.gpu_time_ns())),
        ("scu_time_ns".into(), Value::F64(e.report.scu.time_ns)),
        (
            "compaction_fraction".into(),
            Value::F64(e.report.compaction_fraction()),
        ),
        (
            "energy_total_pj".into(),
            Value::F64(e.report.energy.total_pj()),
        ),
        (
            "gpu_thread_insts".into(),
            Value::U64(e.report.gpu_thread_insts()),
        ),
        (
            "gpu_coalescing".into(),
            Value::F64(e.report.gpu_coalescing()),
        ),
        (
            "bandwidth_utilization".into(),
            Value::F64(e.report.bandwidth_utilization()),
        ),
        ("iterations".into(), Value::U64(e.report.iterations as u64)),
        ("values_fnv".into(), Value::U64(e.values_fnv)),
        ("report".into(), serde_json::to_value(&e.report)),
        ("phases".into(), serde_json::to_value(&e.phases)),
    ])
}

fn main() {
    let args = CliArgs::from_env();
    if !args.rest.is_empty() {
        eprintln!(
            "unexpected arguments: {:?}\n{}",
            args.rest,
            scu_harness::cli::USAGE
        );
        std::process::exit(2);
    }
    if args.trace.is_some() {
        eprintln!("note: --trace is honoured by run_one and reproduce_all, not export_json");
    }
    scu_algos::SimThreads::set(args.sim_threads);
    let cfg = ExperimentConfig::from_env();
    let harness = Harness::new()
        .apply_cli(&args, "results/cache")
        .manifest("results/manifest.json")
        .handle_sigint(true);
    let (m, sweep) = Matrix::collect_with(
        &cfg,
        &[
            Mode::GpuBaseline,
            Mode::ScuBasic,
            Mode::ScuFilteringOnly,
            Mode::ScuEnhanced,
        ],
        &harness,
        args.filter.as_deref(),
    );
    let rows: Vec<Value> = m.entries().iter().map(row).collect();
    println!(
        "{}",
        serde_json::to_string_pretty(&Value::Array(rows)).expect("serialisable")
    );
    if sweep.summary.was_interrupted() {
        eprintln!("{}", sweep.summary.render());
        eprintln!("interrupted — rerun with --resume to finish the remaining cells");
        std::process::exit(130);
    }
    if !sweep.summary.all_done() {
        eprintln!("{}", sweep.summary.render());
        std::process::exit(1);
    }
}

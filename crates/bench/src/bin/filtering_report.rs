//! Regenerates the section 6.3 filtering-effectiveness report.
use scu_algos::runner::Mode;
use scu_bench::experiments::{filtering, matrix::Matrix};
use scu_bench::ExperimentConfig;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let m = Matrix::collect(&cfg, &[Mode::GpuBaseline, Mode::ScuEnhanced]);
    print!("{}", filtering::render(&filtering::rows(&m)));
}

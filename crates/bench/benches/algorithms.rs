//! Criterion benchmarks of the three graph primitives in each machine
//! mode at reduced scale — end-to-end simulator throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use scu_algos::runner::{run_with, Algorithm, Mode};
use scu_algos::SystemKind;
use scu_graph::Dataset;

fn bench_algorithms(c: &mut Criterion) {
    let mut g = c.benchmark_group("algorithms");
    g.sample_size(10);
    let graph = Dataset::Kron.build(1.0 / 128.0, 42);

    for algo in Algorithm::ALL {
        for mode in [Mode::GpuBaseline, Mode::ScuBasic, Mode::ScuEnhanced] {
            g.bench_function(BenchmarkId::new(algo.name(), mode.name()), |b| {
                b.iter(|| {
                    let out = run_with(algo, &graph, SystemKind::Tx1, mode, 2);
                    black_box(out.report.total_time_ns());
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);

//! Criterion microbenchmarks of the memory-hierarchy hot paths the
//! flattened data layouts optimise: raw cache tag scans, warp and
//! stream coalescing, and the batched `access_run` line path. These are
//! the tightest loops in the simulator, so they anchor the perf
//! regression gate (see `EXPERIMENTS.md`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use scu_mem::cache::{AccessKind, Cache, CacheConfig};
use scu_mem::coalescer::{StreamCoalescer, WarpCoalescer};
use scu_mem::line::LineSize;
use scu_mem::system::{MemorySystem, MemorySystemConfig};

/// Deterministic pseudo-random addresses (no RNG state to drift).
fn scrambled(i: u64, span: u64) -> u64 {
    (i.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 16) % span
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.sample_size(20);

    // GTX 980 L2 geometry: the largest tag array the sweep exercises.
    let cfg = CacheConfig::new(2 * 1024 * 1024, LineSize::L128, 16).expect("valid");

    g.bench_function(BenchmarkId::new("hit-scan", "2MiB-16way"), |b| {
        let mut cache = Cache::new(cfg);
        // Resident working set: every access after warm-up hits.
        for i in 0..1024u64 {
            cache.access(i * 128, AccessKind::Read);
        }
        b.iter(|| {
            for i in 0..1024u64 {
                black_box(cache.access(i * 128, AccessKind::Read));
            }
        });
    });

    g.bench_function(BenchmarkId::new("miss-evict", "2MiB-16way"), |b| {
        let mut cache = Cache::new(cfg);
        let mut epoch = 0u64;
        b.iter(|| {
            // A fresh 4 MiB stream per sample: every access misses and
            // (once warm) evicts.
            epoch += 1;
            let base = epoch << 32;
            for i in 0..32_768u64 {
                black_box(cache.access(base + i * 128, AccessKind::Write));
            }
        });
    });

    g.finish();
}

fn bench_coalescers(c: &mut Criterion) {
    let mut g = c.benchmark_group("coalescer");
    g.sample_size(20);

    let warp = WarpCoalescer::new(LineSize::L128);
    let coalesced: Vec<u64> = (0..32u64).map(|i| i * 4).collect();
    let scattered: Vec<u64> = (0..32u64).map(|i| scrambled(i, 1 << 20)).collect();

    g.bench_function(BenchmarkId::new("warp", "coalesced"), |b| {
        let mut tx = Vec::new();
        b.iter(|| {
            for _ in 0..1024 {
                warp.transactions_into(&coalesced, &mut tx);
                black_box(tx.len());
            }
        });
    });

    g.bench_function(BenchmarkId::new("warp", "scattered"), |b| {
        let mut tx = Vec::new();
        b.iter(|| {
            for _ in 0..1024 {
                warp.transactions_into(&scattered, &mut tx);
                black_box(tx.len());
            }
        });
    });

    g.bench_function(BenchmarkId::new("stream", "window-ring"), |b| {
        let mut sc = StreamCoalescer::new(LineSize::L128, 8);
        b.iter(|| {
            for i in 0..16_384u64 {
                // Mix of window hits (sequential) and fresh lines.
                black_box(sc.push(i * 64));
                black_box(sc.push(scrambled(i, 1 << 22)));
            }
            sc.reset();
        });
    });

    g.finish();
}

fn bench_access_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("mem-system");
    g.sample_size(20);

    g.bench_function(BenchmarkId::new("access", "per-line"), |b| {
        let mut mem = MemorySystem::new(MemorySystemConfig::tx1());
        b.iter(|| {
            for i in 0..8192u64 {
                black_box(mem.access(i * 128, AccessKind::Read));
            }
        });
    });

    g.bench_function(BenchmarkId::new("access_run", "batched-64"), |b| {
        let mut mem = MemorySystem::new(MemorySystemConfig::tx1());
        b.iter(|| {
            for i in 0..128u64 {
                black_box(mem.access_run(i * 64 * 128, 64, AccessKind::Read));
            }
        });
    });

    g.finish();
}

criterion_group!(benches, bench_cache, bench_coalescers, bench_access_run);
criterion_main!(benches);

//! Criterion microbenchmarks of the result-store hot paths: WAL
//! appends (the per-finished-cell cost), point reads from a sealed
//! segment vs. the legacy one-file-per-entry layout, and cold-open
//! recovery (what `--resume` pays before the first cell runs) at 10k
//! and 100k records. The acceptance bar for the storage swap is that
//! the LSM layout beats the legacy layout on point reads and on
//! cold-open at 100k; `bench_gate` pins the numbers in
//! `BENCH_baseline.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::io::Write as _;
use std::path::PathBuf;

use scu_store::lsm::{LsmOptions, LsmStore};
use scu_store::record::JournalRecord;
use scu_store::{LegacyStore, ResultStore};
use serde_json::Value;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scu-bench-store-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn key(n: u64) -> Value {
    Value::Object(vec![
        ("cell".to_string(), Value::U64(n)),
        ("model".to_string(), Value::Str("scu-sim-2".into())),
    ])
}

fn value(n: u64) -> Value {
    Value::Object(vec![
        ("metric".to_string(), Value::F64(n as f64 * 0.5)),
        ("count".to_string(), Value::U64(n * 37)),
        ("label".to_string(), Value::Str("BFS/kron/GTX980".into())),
    ])
}

fn record(n: u64) -> JournalRecord {
    JournalRecord {
        key: Some(key(n)),
        id: format!("cell-{n}"),
        value: value(n),
        digest: Some(n.wrapping_mul(0x9e37_79b9)),
    }
}

/// An LSM store holding `n` journaled records, sealed into segments
/// (WAL drained), reopened cold by the benchmark body.
fn sealed_lsm(tag: &str, n: u64) -> PathBuf {
    let dir = scratch(tag);
    let opts = LsmOptions {
        flush_records: usize::MAX,
        compact_min_segments: usize::MAX,
        ..LsmOptions::default()
    };
    let store = LsmStore::open_with(&dir, opts).unwrap();
    store.begin_sweep(false).unwrap();
    for i in 0..n {
        store.journal_append(&record(i)).unwrap();
    }
    ResultStore::flush(&store).unwrap();
    dir
}

/// A legacy line-JSON journal holding `n` records (the pre-store
/// resume path parsed this on every `--resume`).
fn legacy_journal(tag: &str, n: u64) -> (PathBuf, PathBuf) {
    let dir = scratch(tag);
    let manifest = dir.join("manifest.json");
    let mut out = std::io::BufWriter::new(std::fs::File::create(&manifest).unwrap());
    for i in 0..n {
        let line = serde_json::to_string(&record(i).to_value()).unwrap();
        writeln!(out, "{line}").unwrap();
    }
    out.flush().unwrap();
    (dir, manifest)
}

fn bench_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_micro");
    g.sample_size(20);

    // One finished cell = one durable journal append. LSM: a
    // CRC-framed WAL write. Legacy: a whole temp-file + rename blob.
    g.bench_function(BenchmarkId::new("append", "wal"), |b| {
        let dir = scratch("append-wal");
        let opts = LsmOptions {
            flush_records: usize::MAX,
            compact_min_segments: usize::MAX,
            ..LsmOptions::default()
        };
        let store = LsmStore::open_with(&dir, opts).unwrap();
        store.begin_sweep(false).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            // Rotate a bounded key set so the memtable stays small.
            i = (i + 1) % 1024;
            store.put(&key(i), &value(i)).unwrap();
        });
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    });

    g.bench_function(BenchmarkId::new("append", "legacy-blob"), |b| {
        let dir = scratch("append-legacy");
        let store = LegacyStore::open(&dir).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 1024;
            store.put(&key(i), &value(i)).unwrap();
        });
        let _ = std::fs::remove_dir_all(&dir);
    });

    g.finish();
}

fn bench_point_read(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_micro");
    g.sample_size(20);

    g.bench_function(BenchmarkId::new("point-read", "lsm-10k"), |b| {
        let dir = sealed_lsm("read-lsm", 10_000);
        let store = LsmStore::open(&dir).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 10_000;
            black_box(store.get(&key(i)));
        });
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    });

    g.bench_function(BenchmarkId::new("point-read", "legacy-10k"), |b| {
        let dir = scratch("read-legacy");
        let store = LegacyStore::open(&dir).unwrap();
        for i in 0..10_000u64 {
            store.put(&key(i), &value(i)).unwrap();
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 10_000;
            black_box(store.get(&key(i)));
        });
        let _ = std::fs::remove_dir_all(&dir);
    });

    g.finish();
}

fn bench_cold_open(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_micro");
    // Whole-store opens are slow; keep the sample count low.
    g.sample_size(10);

    for n in [10_000u64, 100_000] {
        let short = n / 1000;
        let lsm_dir = sealed_lsm(&format!("cold-lsm-{n}"), n);
        g.bench_function(
            BenchmarkId::new("cold-open", format!("lsm-{short}k")),
            |b| {
                b.iter(|| {
                    let store = LsmStore::open(&lsm_dir).unwrap();
                    black_box(store.resume_state().unwrap().values.len())
                });
            },
        );
        let _ = std::fs::remove_dir_all(&lsm_dir);

        let (legacy_dir, manifest) = legacy_journal(&format!("cold-legacy-{n}"), n);
        g.bench_function(
            BenchmarkId::new("cold-open", format!("legacy-{short}k")),
            |b| {
                b.iter(|| {
                    let store = LegacyStore::open(&legacy_dir)
                        .unwrap()
                        .with_manifest(manifest.clone());
                    black_box(store.resume_state().unwrap().values.len())
                });
            },
        );
        let _ = std::fs::remove_dir_all(&legacy_dir);
    }

    g.finish();
}

criterion_group!(benches, bench_append, bench_point_read, bench_cold_open);
criterion_main!(benches);

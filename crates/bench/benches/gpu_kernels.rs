//! Criterion microbenchmarks of the simulated GPU engine: coalesced,
//! strided and random access kernels plus atomics — the building
//! blocks of the timing model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use scu_gpu::{GpuConfig, GpuEngine};
use scu_mem::buffer::{DeviceAllocator, DeviceArray};
use scu_mem::system::MemorySystem;

const N: usize = 64 * 1024;

fn setup() -> (GpuEngine, MemorySystem, DeviceAllocator) {
    let cfg = GpuConfig::tx1();
    let mem = MemorySystem::new(cfg.memory.clone());
    (GpuEngine::new(cfg), mem, DeviceAllocator::new())
}

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("gpu-kernels");
    g.sample_size(10);

    g.bench_function(BenchmarkId::new("coalesced-copy", N), |b| {
        let (mut eng, mut mem, mut alloc) = setup();
        let src: DeviceArray<u32> = DeviceArray::from_vec(&mut alloc, (0..N as u32).collect());
        let mut dst: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, N);
        b.iter(|| {
            let s = eng.run(&mut mem, "copy", N, |tid, ctx| {
                let v = ctx.load(&src, tid);
                ctx.store(&mut dst, tid, v);
            });
            black_box(s.time_ns);
        });
    });

    g.bench_function(BenchmarkId::new("random-gather", N), |b| {
        let (mut eng, mut mem, mut alloc) = setup();
        let src: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, N * 4);
        b.iter(|| {
            let s = eng.run(&mut mem, "gather", N, |tid, ctx| {
                let idx = (tid.wrapping_mul(2654435761)) % (N * 4);
                black_box(ctx.load(&src, idx));
            });
            black_box(s.time_ns);
        });
    });

    g.bench_function(BenchmarkId::new("atomic-histogram", N), |b| {
        let (mut eng, mut mem, mut alloc) = setup();
        let mut hist: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 256);
        b.iter(|| {
            let s = eng.run(&mut mem, "hist", N, |tid, ctx| {
                ctx.atomic_rmw(&mut hist, tid % 256, |v| v.wrapping_add(1));
            });
            black_box(s.time_ns);
        });
    });

    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);

//! Criterion microbenchmarks of the tracing hot path.
//!
//! The trace spine's contract is that an *off* probe costs one branch:
//! `MemorySystem::access` and the warp coalescer must run at the same
//! speed whether the system carries the default `Probe::off` or a live
//! recording sink that is not subscribed to per-access events. The
//! `probe-off` and `recording-sink` variants below must stay within
//! noise (<2%) of each other; `recording-sink-mem-events` shows the
//! cost of opting in to per-access events, which no production path
//! does.

use criterion::{criterion_group, criterion_main, Criterion};
use std::cell::RefCell;
use std::hint::black_box;
use std::rc::Rc;

use scu_gpu::GpuConfig;
use scu_mem::coalescer::WarpCoalescer;
use scu_mem::line::LineSize;
use scu_mem::system::MemorySystem;
use scu_mem::AccessKind;
use scu_trace::{Probe, RecordingSink};

const ACCESSES: usize = 16 * 1024;

fn fresh_mem() -> MemorySystem {
    MemorySystem::new(GpuConfig::tx1().memory.clone())
}

/// A mixed read/write address walk with some locality, so the bench
/// exercises hits and misses rather than a pure DRAM stream.
fn drive(mem: &mut MemorySystem, n: usize) -> u64 {
    let mut sum = 0u64;
    for i in 0..n {
        let addr = ((i as u64).wrapping_mul(2654435761) % 4096) * 128 + (i as u64 % 32) * 4;
        let kind = if i % 4 == 0 {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let out = mem.access(addr, kind);
        sum = sum.wrapping_add(out.latency_ns as u64);
    }
    sum
}

fn bench_mem_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace-hot-path");
    g.sample_size(30);

    g.bench_function("mem-access/probe-off", |b| {
        let mut mem = fresh_mem();
        b.iter(|| black_box(drive(&mut mem, ACCESSES)));
    });

    g.bench_function("mem-access/recording-sink", |b| {
        // A live sink, but not subscribed to per-access events — the
        // production tracing configuration. Same one-branch hot path.
        let mut mem = fresh_mem();
        let sink = Rc::new(RefCell::new(RecordingSink::new("bench", false)));
        mem.set_probe(Probe::new(sink));
        b.iter(|| black_box(drive(&mut mem, ACCESSES)));
    });

    g.bench_function("mem-access/recording-sink-mem-events", |b| {
        // Opting in to per-access events records one event per access;
        // rebuild the sink each iteration so the event vector cannot
        // grow across samples.
        b.iter(|| {
            let mut mem = fresh_mem();
            let sink = Rc::new(RefCell::new(
                RecordingSink::new("bench", false).with_mem_access(true),
            ));
            mem.set_probe(Probe::new(sink));
            black_box(drive(&mut mem, ACCESSES / 4))
        });
    });

    g.finish();
}

fn bench_coalescer(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace-hot-path");
    g.sample_size(30);

    // The coalescer sits inside every simulated warp access; it has no
    // probe hook at all, so this is the floor the traced path rides on.
    g.bench_function("warp-coalescer/strided", |b| {
        let coal = WarpCoalescer::new(LineSize::L128);
        let addrs: Vec<u64> = (0..32u64).map(|i| i * 64).collect();
        b.iter(|| {
            let mut total = 0usize;
            for _ in 0..1024 {
                total += coal.transaction_count(black_box(&addrs));
            }
            black_box(total)
        });
    });

    g.finish();
}

criterion_group!(benches, bench_mem_access, bench_coalescer);
criterion_main!(benches);

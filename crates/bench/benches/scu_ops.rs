//! Criterion microbenchmarks of the five SCU operations (Figure 6)
//! and the enhanced filter/group passes — measures the *simulator's*
//! throughput per operation, useful for tracking model regressions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use scu_core::{CompareOp, FilterHash, FilterMode, GroupHash, ScuConfig, ScuDevice};
use scu_mem::buffer::{DeviceAllocator, DeviceArray};
use scu_mem::system::{MemorySystem, MemorySystemConfig};

const N: usize = 64 * 1024;

fn fresh() -> (ScuDevice, MemorySystem, DeviceAllocator) {
    (
        ScuDevice::new(ScuConfig::tx1()),
        MemorySystem::new(MemorySystemConfig::tx1()),
        DeviceAllocator::new(),
    )
}

fn bench_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("scu-ops");
    g.sample_size(10);

    g.bench_function(BenchmarkId::new("bitmask-constructor", N), |b| {
        let (mut scu, mut mem, mut alloc) = fresh();
        let src = DeviceArray::from_vec(&mut alloc, (0..N as u32).collect());
        let mut flags: DeviceArray<u8> = DeviceArray::zeroed(&mut alloc, N);
        b.iter(|| {
            scu.bitmask_construct(&mut mem, &src, N, CompareOp::Lt, N as u32 / 2, &mut flags);
            black_box(flags.get(0));
        });
    });

    g.bench_function(BenchmarkId::new("data-compaction", N), |b| {
        let (mut scu, mut mem, mut alloc) = fresh();
        let src = DeviceArray::from_vec(&mut alloc, (0..N as u32).collect());
        let flags = DeviceArray::from_vec(&mut alloc, (0..N).map(|i| (i % 2) as u8).collect());
        let mut dst: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, N);
        b.iter(|| {
            let op = scu.data_compaction(&mut mem, &src, Some(&flags), &mut dst);
            black_box(op.elements_out);
        });
    });

    g.bench_function(BenchmarkId::new("access-expansion", N), |b| {
        let (mut scu, mut mem, mut alloc) = fresh();
        let src: DeviceArray<u32> = DeviceArray::from_vec(&mut alloc, (0..N as u32).collect());
        let rows = N / 16;
        let indexes = DeviceArray::from_vec(&mut alloc, (0..rows as u32).map(|i| i * 16).collect());
        let counts = DeviceArray::from_vec(&mut alloc, vec![16u32; rows]);
        let mut dst: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, N);
        b.iter(|| {
            let op = scu.access_expansion_compaction(
                &mut mem, &src, &indexes, &counts, rows, None, None, &mut dst,
            );
            black_box(op.elements_out);
        });
    });

    g.bench_function(BenchmarkId::new("filter-pass", N), |b| {
        let (mut scu, mut mem, mut alloc) = fresh();
        let cfg = ScuConfig::tx1();
        let mut hash = FilterHash::new(&mut alloc, cfg.filter_bfs_hash);
        let src = DeviceArray::from_vec(&mut alloc, (0..N as u32).map(|i| i % 1024).collect());
        let mut flags: DeviceArray<u8> = DeviceArray::zeroed(&mut alloc, N);
        b.iter(|| {
            hash.clear();
            let op = scu.filter_pass_data(
                &mut mem,
                &src,
                N,
                None,
                FilterMode::Unique,
                None,
                &mut hash,
                &mut flags,
            );
            black_box(op.elements_out);
        });
    });

    g.bench_function(BenchmarkId::new("group-pass", N), |b| {
        let (mut scu, mut mem, mut alloc) = fresh();
        let cfg = ScuConfig::tx1();
        let mut hash = GroupHash::new(&mut alloc, cfg.grouping_hash);
        let target: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, 4096);
        let src = DeviceArray::from_vec(&mut alloc, (0..N as u32).map(|i| i % 4096).collect());
        let mut order: DeviceArray<u32> = DeviceArray::zeroed(&mut alloc, N);
        b.iter(|| {
            hash.clear();
            let op = scu.group_pass_data(&mut mem, &src, N, None, &target, &mut hash, &mut order);
            black_box(op.elements_out);
        });
    });

    g.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);

//! End-to-end cell benchmark: the full `Cell::run` path — graph memo,
//! simulation, trace spine, report derivation and fingerprinting —
//! exactly as the sweep harness drives it. This is the number that
//! tracks `reproduce_all` wall-clock, so it sits in the regression
//! gate alongside the micro-benches (see `EXPERIMENTS.md`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use scu_algos::cell::Cell;
use scu_algos::runner::{Algorithm, Mode};
use scu_algos::{SimThreads, SystemKind};
use scu_graph::Dataset;

/// CI-sized cell: big enough to exercise multi-iteration frontiers,
/// small enough for tens of samples.
fn cell(algorithm: Algorithm, mode: Mode) -> Cell {
    Cell {
        algorithm,
        dataset: Dataset::Kron,
        system: SystemKind::Tx1,
        mode,
        pr_iters: 3,
        scale: 1.0 / 128.0,
        seed: 42,
        scu_config: None,
    }
}

fn bench_cells(c: &mut Criterion) {
    let mut g = c.benchmark_group("cell");
    g.sample_size(10);

    for algorithm in [Algorithm::Bfs, Algorithm::PageRank] {
        for mode in [Mode::GpuBaseline, Mode::ScuEnhanced] {
            let cell = cell(algorithm, mode);
            // Pre-build the shared graph so samples measure simulation,
            // not first-touch generation.
            black_box(scu_algos::shared_graph(cell.dataset, cell.scale, cell.seed));
            g.bench_function(BenchmarkId::new(algorithm.name(), mode.name()), move |b| {
                b.iter(|| black_box(cell.run()));
            });
        }
    }

    g.finish();
}

/// Thread-scaling of the engine's per-SM timing lanes: the same
/// GTX980 cell (16 SMs, so up to 16 lanes) at 1, 2 and 4 lanes.
/// Results are byte-identical across variants — only wall-clock moves
/// — so `t1` doubles as the sequential-path regression guard and
/// `t4`'s ratio to it tracks the parallel speedup in the gate.
fn bench_thread_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("cell-threads");
    g.sample_size(10);

    let cell = Cell {
        algorithm: Algorithm::Bfs,
        dataset: Dataset::Kron,
        system: SystemKind::Gtx980,
        mode: Mode::GpuBaseline,
        pr_iters: 3,
        scale: 1.0 / 128.0,
        seed: 42,
        scu_config: None,
    };
    black_box(scu_algos::shared_graph(cell.dataset, cell.scale, cell.seed));

    for threads in [1usize, 2, 4] {
        let cell = cell.clone();
        g.bench_function(
            BenchmarkId::new("BFS-GTX980-gpu", format!("t{threads}")),
            move |b| {
                SimThreads::set(threads);
                b.iter(|| black_box(cell.run()));
            },
        );
    }
    SimThreads::set(1);

    g.finish();
}

criterion_group!(benches, bench_cells, bench_thread_scaling);
criterion_main!(benches);

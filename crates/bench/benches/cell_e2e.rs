//! End-to-end cell benchmark: the full `Cell::run` path — graph memo,
//! simulation, trace spine, report derivation and fingerprinting —
//! exactly as the sweep harness drives it. This is the number that
//! tracks `reproduce_all` wall-clock, so it sits in the regression
//! gate alongside the micro-benches (see `EXPERIMENTS.md`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashMap;
use std::hint::black_box;
use std::sync::{Arc, Mutex};

use scu_algos::cell::Cell;
use scu_algos::runner::{Algorithm, Mode};
use scu_algos::trace_cache::{self, TraceLoad, TraceStore};
use scu_algos::{SimThreads, SystemKind};
use scu_graph::Dataset;

/// CI-sized cell: big enough to exercise multi-iteration frontiers,
/// small enough for tens of samples.
fn cell(algorithm: Algorithm, mode: Mode) -> Cell {
    Cell {
        algorithm,
        dataset: Dataset::Kron,
        system: SystemKind::Tx1,
        mode,
        pr_iters: 3,
        scale: 1.0 / 128.0,
        seed: 42,
        scu_config: None,
    }
}

fn bench_cells(c: &mut Criterion) {
    let mut g = c.benchmark_group("cell");
    g.sample_size(10);

    for algorithm in [Algorithm::Bfs, Algorithm::PageRank] {
        for mode in [Mode::GpuBaseline, Mode::ScuEnhanced] {
            let cell = cell(algorithm, mode);
            // Pre-build the shared graph so samples measure simulation,
            // not first-touch generation.
            black_box(scu_algos::shared_graph(cell.dataset, cell.scale, cell.seed));
            g.bench_function(BenchmarkId::new(algorithm.name(), mode.name()), move |b| {
                b.iter(|| black_box(cell.run()));
            });
        }
    }

    g.finish();
}

/// Thread-scaling of the engine's per-SM timing lanes: the same
/// GTX980 cell (16 SMs, so up to 16 lanes) at 1, 2 and 4 lanes.
/// Results are byte-identical across variants — only wall-clock moves
/// — so `t1` doubles as the sequential-path regression guard and
/// `t4`'s ratio to it tracks the parallel speedup in the gate.
fn bench_thread_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("cell-threads");
    g.sample_size(10);

    let cell = Cell {
        algorithm: Algorithm::Bfs,
        dataset: Dataset::Kron,
        system: SystemKind::Gtx980,
        mode: Mode::GpuBaseline,
        pr_iters: 3,
        scale: 1.0 / 128.0,
        seed: 42,
        scu_config: None,
    };
    black_box(scu_algos::shared_graph(cell.dataset, cell.scale, cell.seed));

    for threads in [1usize, 2, 4] {
        let cell = cell.clone();
        // Tag records measured on a host with fewer cores than the lane
        // count requests: the timing is honest for this machine but must
        // not land in the committed baseline (bench_gate refuses it).
        criterion::mark_degraded(scu_gpu::parallelism_degraded(threads));
        g.bench_function(
            BenchmarkId::new("BFS-GTX980-gpu", format!("t{threads}")),
            move |b| {
                SimThreads::set(threads);
                b.iter(|| black_box(cell.run()));
            },
        );
    }
    criterion::mark_degraded(false);
    SimThreads::set(1);

    g.finish();
}

/// In-memory [`TraceStore`] for the warm/cold benches — no disk I/O in
/// the measured loop, so the delta between variants is purely the
/// functional recording the warm path skips.
#[derive(Default)]
struct MemStore(Mutex<HashMap<String, Vec<u8>>>);

impl TraceStore for MemStore {
    fn load(&self, key: &str) -> TraceLoad {
        match self.0.lock().unwrap().get(key) {
            Some(b) => TraceLoad::Data(b.clone()),
            None => TraceLoad::Missing,
        }
    }
    fn store(&self, key: &str, bytes: &[u8]) -> bool {
        self.0
            .lock()
            .unwrap()
            .insert(key.to_string(), bytes.to_vec());
        true
    }
}

/// Functional-trace cache overhead and payoff on one cell: `cold`
/// clears the store every sample (records + stores each run), `warm`
/// replays the recorded trace, `disabled` runs with the cache off —
/// the no-regression guard for the uncached path. All three produce
/// byte-identical results; only wall-clock differs.
fn bench_trace_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace-cache");
    g.sample_size(10);

    let cell = Cell {
        algorithm: Algorithm::Bfs,
        dataset: Dataset::Kron,
        system: SystemKind::Gtx980,
        mode: Mode::GpuBaseline,
        pr_iters: 3,
        scale: 1.0 / 128.0,
        seed: 42,
        scu_config: None,
    };
    black_box(scu_algos::shared_graph(cell.dataset, cell.scale, cell.seed));

    let store = Arc::new(MemStore::default());
    trace_cache::set_enabled(true);
    trace_cache::install(Some(store.clone()));

    {
        let store = Arc::clone(&store);
        let cell = cell.clone();
        g.bench_function(BenchmarkId::new("BFS-GTX980-gpu", "cold"), move |b| {
            b.iter(|| {
                store.0.lock().unwrap().clear();
                black_box(cell.run())
            });
        });
    }
    {
        let cell = cell.clone();
        cell.run(); // prime the store so every sample replays
        g.bench_function(BenchmarkId::new("BFS-GTX980-gpu", "warm"), move |b| {
            b.iter(|| black_box(cell.run()));
        });
    }
    trace_cache::install(None);
    trace_cache::set_enabled(false);
    {
        let cell = cell.clone();
        g.bench_function(BenchmarkId::new("BFS-GTX980-gpu", "disabled"), move |b| {
            b.iter(|| black_box(cell.run()));
        });
    }
    trace_cache::set_enabled(true);

    g.finish();
}

criterion_group!(
    benches,
    bench_cells,
    bench_thread_scaling,
    bench_trace_cache
);
criterion_main!(benches);

//! End-to-end cell benchmark: the full `Cell::run` path — graph memo,
//! simulation, trace spine, report derivation and fingerprinting —
//! exactly as the sweep harness drives it. This is the number that
//! tracks `reproduce_all` wall-clock, so it sits in the regression
//! gate alongside the micro-benches (see `EXPERIMENTS.md`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use scu_algos::cell::Cell;
use scu_algos::runner::{Algorithm, Mode};
use scu_algos::SystemKind;
use scu_graph::Dataset;

/// CI-sized cell: big enough to exercise multi-iteration frontiers,
/// small enough for tens of samples.
fn cell(algorithm: Algorithm, mode: Mode) -> Cell {
    Cell {
        algorithm,
        dataset: Dataset::Kron,
        system: SystemKind::Tx1,
        mode,
        pr_iters: 3,
        scale: 1.0 / 128.0,
        seed: 42,
        scu_config: None,
    }
}

fn bench_cells(c: &mut Criterion) {
    let mut g = c.benchmark_group("cell");
    g.sample_size(10);

    for algorithm in [Algorithm::Bfs, Algorithm::PageRank] {
        for mode in [Mode::GpuBaseline, Mode::ScuEnhanced] {
            let cell = cell(algorithm, mode);
            // Pre-build the shared graph so samples measure simulation,
            // not first-touch generation.
            black_box(scu_algos::shared_graph(cell.dataset, cell.scale, cell.seed));
            g.bench_function(BenchmarkId::new(algorithm.name(), mode.name()), move |b| {
                b.iter(|| black_box(cell.run()));
            });
        }
    }

    g.finish();
}

criterion_group!(benches, bench_cells);
criterion_main!(benches);

//! Criterion benchmarks of the graph artifact store: cold build
//! (generate the CSR, publish the artifact) vs. warm load (digest
//! check + mmap of the published file) at the default paper scale,
//! plus the raw decode cost with the graph already in page cache.
//! The acceptance bar for the build-once artifact work is that a
//! warm load is orders of magnitude cheaper than a cold build;
//! `bench_gate` pins the numbers in `BENCH_baseline.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::path::PathBuf;
use std::sync::Arc;

use scu_graph::artifact::GraphStore;
use scu_graph::Dataset;

/// The kron benchmark point: 2^14 nodes is big enough that mmap vs.
/// rebuild separates cleanly, small enough for a criterion loop.
const SCALE: f64 = 0.0625;
const SEED: u64 = 42;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scu-bench-graph-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn load(store: &Arc<GraphStore>) -> scu_graph::Csr {
    store
        .load_or_build(Dataset::Kron, SCALE, SEED, || {
            Dataset::Kron.try_build(SCALE, SEED)
        })
        .unwrap()
}

fn bench_cold_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("graph_store");
    // Every iteration generates and publishes the full graph.
    g.sample_size(10);
    g.bench_function(BenchmarkId::new("cold-build", "kron-2^14"), |b| {
        let dir = scratch("cold");
        b.iter(|| {
            // Wipe the store so load_or_build takes the miss path:
            // streaming Kronecker build + digest-streamed publish.
            let _ = std::fs::remove_dir_all(&dir);
            let store = Arc::new(GraphStore::new(&dir));
            black_box(load(&store).num_edges())
        });
        let _ = std::fs::remove_dir_all(&dir);
    });
    g.finish();
}

fn bench_warm_load(c: &mut Criterion) {
    let mut g = c.benchmark_group("graph_store");
    g.sample_size(20);

    // The per-process cost a sweep pays when the artifact exists:
    // open, digest-verify, mmap, wrap in zero-copy Words.
    g.bench_function(BenchmarkId::new("warm-load", "kron-2^14"), |b| {
        let dir = scratch("warm");
        let store = Arc::new(GraphStore::new(&dir));
        load(&store); // publish once
        b.iter(|| black_box(load(&store).num_edges()));
        let _ = std::fs::remove_dir_all(&dir);
    });

    // The same graph rebuilt in memory every time — what every
    // process paid before the artifact store existed.
    g.bench_function(BenchmarkId::new("warm-load", "rebuild-in-memory"), |b| {
        b.iter(|| black_box(Dataset::Kron.build(SCALE, SEED).num_edges()));
    });

    g.finish();
}

fn bench_traverse(c: &mut Criterion) {
    let mut g = c.benchmark_group("graph_store");
    g.sample_size(20);

    // Full neighbor-list sweep over a mapped vs. an owned CSR — the
    // zero-copy Words indirection must not tax traversal.
    let dir = scratch("traverse");
    let store = Arc::new(GraphStore::new(&dir));
    load(&store); // publish
    let mapped = load(&store);
    assert!(mapped.is_mapped(), "second load should mmap the artifact");
    let owned = Dataset::Kron.build(SCALE, SEED);
    for (tag, graph) in [("mapped", &mapped), ("owned", &owned)] {
        g.bench_function(BenchmarkId::new("traverse", tag), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for v in 0..graph.num_nodes() as u32 {
                    for &n in graph.neighbors(v) {
                        acc = acc.wrapping_add(n as u64);
                    }
                }
                black_box(acc)
            });
        });
    }
    drop(mapped);
    let _ = std::fs::remove_dir_all(&dir);
    g.finish();
}

criterion_group!(benches, bench_cold_build, bench_warm_load, bench_traverse);
criterion_main!(benches);

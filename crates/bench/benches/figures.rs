//! Criterion benchmarks that regenerate each paper figure at reduced
//! scale — one group per table/figure of the evaluation, so `cargo
//! bench --bench figures` exercises the entire reproduction pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use scu_algos::runner::Mode;
use scu_bench::experiments::{
    ablation, area, fig01, fig09, fig10, fig11, fig12, fig13, filtering, matrix::Matrix, tables,
};
use scu_bench::ExperimentConfig;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    let cfg = ExperimentConfig::tiny();

    // The matrix dominates the cost; collect it once per iteration of
    // the matrix bench and reuse a prebuilt copy for the per-figure
    // row computations.
    g.bench_function("matrix-collect", |b| {
        b.iter(|| {
            let m = Matrix::collect(&cfg, &[Mode::GpuBaseline, Mode::ScuEnhanced]);
            black_box(m.entries().len());
        });
    });

    let matrix = Matrix::collect(
        &cfg,
        &[
            Mode::GpuBaseline,
            Mode::ScuBasic,
            Mode::ScuFilteringOnly,
            Mode::ScuEnhanced,
        ],
    );

    g.bench_function("fig01-breakdown", |b| {
        b.iter(|| black_box(fig01::rows(&matrix).len()));
    });
    g.bench_function("fig09-energy", |b| {
        b.iter(|| black_box(fig09::rows(&matrix).len()));
    });
    g.bench_function("fig10-time", |b| {
        b.iter(|| black_box(fig10::rows(&matrix).len()));
    });
    g.bench_function("fig11-basic-vs-enhanced", |b| {
        b.iter(|| black_box(fig11::rows(&matrix).len()));
    });
    g.bench_function("fig12-coalescing", |b| {
        b.iter(|| black_box(fig12::rows(&matrix).len()));
    });
    g.bench_function("fig13-bandwidth", |b| {
        b.iter(|| black_box(fig13::rows(&matrix).len()));
    });
    g.bench_function("sec6.3-filtering", |b| {
        b.iter(|| black_box(filtering::rows(&matrix).len()));
    });
    g.bench_function("sec6.4-area", |b| {
        b.iter(|| black_box(area::render().len()));
    });
    g.bench_function("tables1-5", |b| {
        b.iter(|| black_box(tables::render_all(&cfg).len()));
    });
    g.bench_function("ablation-bfs-grouping", |b| {
        let mut small = cfg.clone();
        small.datasets = vec![scu_graph::Dataset::Cond];
        b.iter(|| black_box(ablation::bfs_grouping(&small).len()));
    });

    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);

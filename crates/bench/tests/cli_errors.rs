//! Bad command-line input must produce a one-line error and a
//! non-zero exit from every experiment binary — never a panic, a
//! usage dump with no diagnosis, or a silent no-op sweep.

use std::process::{Command, Output};

/// Runs a binary at tiny scale so even an accidental simulation could
/// not stall the suite.
fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin)
        .args(args)
        .env("SCU_SCALE", "0.0078125")
        .output()
        .expect("binary spawns")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Asserts exit code 2 and that the FIRST stderr line carries the
/// diagnosis — the one-line-error contract.
fn assert_rejects(bin: &str, args: &[&str], needle: &str) {
    let out = run(bin, args);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{args:?} should exit 2; stderr: {}",
        stderr_of(&out)
    );
    let err = stderr_of(&out);
    let first = err.lines().next().unwrap_or_default();
    assert!(
        first.contains(needle),
        "{args:?}: first stderr line {first:?} should mention {needle:?}"
    );
}

#[test]
fn run_one_rejects_unknown_names() {
    let bin = env!("CARGO_BIN_EXE_run_one");
    assert_rejects(bin, &["NOPE"], "unknown algorithm 'NOPE'");
    assert_rejects(bin, &["BFS", "nope"], "unknown dataset 'nope'");
    assert_rejects(bin, &["BFS", "kron", "nope"], "unknown system 'nope'");
    assert_rejects(bin, &["BFS", "kron", "TX1", "nope"], "unknown mode 'nope'");
}

#[test]
fn run_one_rejects_malformed_remote_usage() {
    let bin = env!("CARGO_BIN_EXE_run_one");
    assert_rejects(bin, &["--remote"], "--remote expects a server URL");
    assert_rejects(
        bin,
        &["--remote", "localhost:1", "--trace", "t.json"],
        "--trace needs a local simulation",
    );
}

#[test]
fn run_one_rejects_bad_flag_values() {
    let bin = env!("CARGO_BIN_EXE_run_one");
    assert_rejects(
        bin,
        &["--jobs", "zero"],
        "--jobs expects a positive integer",
    );
    assert_rejects(bin, &["--sim-threads", "0"], "--sim-threads expects");
    assert_rejects(bin, &["--timeout-secs", "-1"], "--timeout-secs expects");
}

#[test]
fn sweep_binaries_reject_unexpected_positionals() {
    for bin in [
        env!("CARGO_BIN_EXE_reproduce_all"),
        env!("CARGO_BIN_EXE_export_json"),
    ] {
        assert_rejects(bin, &["bogus"], "unexpected arguments");
        assert_rejects(bin, &["--bogus-flag"], "unexpected arguments");
    }
}

#[test]
fn sweep_binaries_reject_filters_matching_nothing() {
    for bin in [
        env!("CARGO_BIN_EXE_reproduce_all"),
        env!("CARGO_BIN_EXE_export_json"),
    ] {
        assert_rejects(
            bin,
            &["--filter", "no-such-cell"],
            "--filter 'no-such-cell' matches none",
        );
    }
}

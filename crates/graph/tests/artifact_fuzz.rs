//! Property tests over the graph artifact file format: arbitrary
//! corruption (truncation, byte flips, garbage) must never panic the
//! loader, must always quarantine the damaged file, and must always
//! fall back to a rebuild whose result is byte-identical to the
//! in-memory build. A published artifact must round-trip exactly,
//! whether the words come back mmap'd or decode-copied.

use std::path::Path;
use std::sync::Arc;

use proptest::prelude::*;
use scu_graph::artifact::{artifact_file_name, artifact_key, decode_artifact, GraphStore};
use scu_graph::Dataset;
use scu_store::mmap::Mapped;

const SCALE: f64 = 0.0078125; // 2^11 nodes — fast enough for proptest
const SEED: u64 = 7;

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("scu-graph-fuzz-{}-{tag}", std::process::id(),));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Publishes one artifact and returns (store, artifact path, bytes).
fn published(tag: &str) -> (Arc<GraphStore>, std::path::PathBuf, Vec<u8>) {
    let dir = scratch(tag);
    let store = Arc::new(GraphStore::new(&dir));
    store
        .load_or_build(Dataset::Kron, SCALE, SEED, || {
            Dataset::Kron.try_build(SCALE, SEED)
        })
        .unwrap();
    let path = store
        .dir()
        .join(artifact_file_name(Dataset::Kron, SCALE, SEED));
    let bytes = std::fs::read(&path).unwrap();
    (store, path, bytes)
}

fn reference() -> scu_graph::Csr {
    Dataset::Kron.build(SCALE, SEED)
}

fn quarantined_files(store: &GraphStore) -> usize {
    std::fs::read_dir(store.quarantine_dir())
        .map(|d| d.filter_map(Result::ok).count())
        .unwrap_or(0)
}

/// After the store serves a graph from a corrupted file, the result
/// must equal the clean build, the bad file must be in quarantine and
/// a fresh, loadable artifact must have been republished.
fn assert_recovered(store: &Arc<GraphStore>, path: &Path) {
    let g = store
        .load_or_build(Dataset::Kron, SCALE, SEED, || {
            Dataset::Kron.try_build(SCALE, SEED)
        })
        .unwrap();
    let clean = reference();
    assert_eq!(g, clean, "rebuild after corruption must be byte-identical");
    assert!(
        quarantined_files(store) >= 1,
        "corrupt artifact must land in quarantine"
    );
    // The republished artifact must itself load clean (and mmap'd).
    let again = store
        .load_or_build(Dataset::Kron, SCALE, SEED, || {
            panic!("republished artifact should load without a rebuild")
        })
        .unwrap();
    assert_eq!(again, clean);
    assert!(again.is_mapped(), "republished artifact should mmap");
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Truncating the file anywhere — mid-magic, mid-header,
    /// mid-section, mid-digest — never panics and always recovers.
    #[test]
    fn truncation_recovers(frac in 0usize..1000) {
        let (store, path, bytes) = published("trunc");
        // frac < 1000 so at least one byte is always cut.
        let keep = bytes.len() * frac / 1000;
        std::fs::write(&path, &bytes[..keep]).unwrap();
        assert_recovered(&store, &path);
    }

    /// Flipping any single byte is caught by the digest (or, for
    /// flips inside the trailing digest itself, by the digest
    /// comparison) and recovers.
    #[test]
    fn byte_flip_recovers(pos_frac in 0usize..1000, xor in 1u8..=255) {
        let (store, path, mut bytes) = published("flip");
        let pos = (bytes.len() - 1) * pos_frac / 999;
        bytes[pos] ^= xor;
        std::fs::write(&path, &bytes).unwrap();
        assert_recovered(&store, &path);
    }

    /// A burst of damaged bytes (torn write / bad sector) recovers.
    #[test]
    fn burst_corruption_recovers(
        start_frac in 0usize..1000,
        len in 1usize..512,
        xor in 1u8..=255,
    ) {
        let (store, path, mut bytes) = published("burst");
        let start = (bytes.len() - 1) * start_frac / 999;
        let end = (start + len).min(bytes.len());
        // XOR with a nonzero pattern guarantees the burst changed
        // at least the first byte of the range.
        for b in &mut bytes[start..end] {
            *b ^= xor;
        }
        std::fs::write(&path, &bytes).unwrap();
        assert_recovered(&store, &path);
    }

    /// decode_artifact on arbitrary garbage bytes errors, never
    /// panics — the digest gate runs before any layout arithmetic.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(0u8..=255, 0..4096)) {
        let map = Arc::new(Mapped::from_bytes(bytes.clone()));
        let key = artifact_key(Dataset::Kron, SCALE, SEED);
        prop_assert!(decode_artifact(&map, &key).is_err());
    }

    /// Garbage that keeps the magic and a plausible prefix still
    /// errors cleanly — exercises the header/layout checks behind
    /// the digest gate.
    #[test]
    fn garbage_with_magic_never_panics(tail in prop::collection::vec(0u8..=255, 0..2048)) {
        let mut bytes = b"SCUCSR01".to_vec();
        bytes.extend_from_slice(&tail);
        let map = Arc::new(Mapped::from_bytes(bytes));
        let key = artifact_key(Dataset::Kron, SCALE, SEED);
        prop_assert!(decode_artifact(&map, &key).is_err());
    }
}

/// Round-trip: the mmap'd artifact equals the in-memory build — same
/// nodes, edges, weights, word for word — across several (scale, seed)
/// points. Not a proptest because each case builds a real graph.
#[test]
fn round_trip_mmap_equals_in_memory() {
    for (scale, seed) in [(0.0078125, 1u64), (0.0625, 42), (0.046875, 9)] {
        let dir = scratch(&format!("rt-{seed}"));
        let store = Arc::new(GraphStore::new(&dir));
        let build = || Dataset::Kron.try_build(scale, seed);
        let first = store
            .load_or_build(Dataset::Kron, scale, seed, build)
            .unwrap();
        let second = store
            .load_or_build(Dataset::Kron, scale, seed, build)
            .unwrap();
        let in_memory = Dataset::Kron.build(scale, seed);
        assert_eq!(first, in_memory, "built-and-published path (scale {scale})");
        assert_eq!(second, in_memory, "mmap'd path (scale {scale})");
        assert!(second.is_mapped());
        assert_eq!(
            second.row_offsets(),
            in_memory.row_offsets(),
            "row offsets word-for-word"
        );
        assert_eq!(second.edges(), in_memory.edges());
        assert_eq!(second.weights(), in_memory.weights());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! The Table 5 benchmark dataset registry.
//!
//! | name | description | nodes (10³) | edges (10⁶) |
//! |---|---|---|---|
//! | `ca` | California road network | 710 | 3.48 |
//! | `cond` | arXiv cond-mat collaboration | 40 | 0.35 |
//! | `delaunay` | Delaunay triangulation | 524 | 3.4 |
//! | `human` | human gene regulatory network | 22 | 24.6 |
//! | `kron` | Graph500 synthetic Kronecker | 262 | 21 |
//! | `msdoor` | 3-D object FEM mesh | 415 | 20.2 |
//!
//! The original datasets come from the UFL sparse matrix collection
//! and the 10th DIMACS challenge; this reproduction regenerates each
//! *class* synthetically at the published size (scale 1.0) or smaller
//! (see `DESIGN.md` for the substitution rationale).

use serde::{Deserialize, Serialize};

use crate::csr::Csr;
use crate::generate;

/// Graph500's reference edges-per-node ratio, used for `kron` at
/// scales past the published size (the paper's own region, scale ≤ 1,
/// keeps the published ratio unchanged).
pub const GRAPH500_EDGE_FACTOR: usize = 16;

/// One of the paper's six benchmark graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// California road network (710 K nodes, 3.48 M edges).
    Ca,
    /// Collaboration network, arxiv.org (40 K nodes, 0.35 M edges).
    Cond,
    /// Delaunay triangulation (524 K nodes, 3.4 M edges).
    Delaunay,
    /// Human gene regulatory network (22 K nodes, 24.6 M edges).
    Human,
    /// Graph500 synthetic Kronecker graph (262 K nodes, 21 M edges).
    Kron,
    /// 3-D object mesh (415 K nodes, 20.2 M edges).
    Msdoor,
}

impl Dataset {
    /// All six datasets in the paper's presentation order.
    pub const ALL: [Dataset; 6] = [
        Dataset::Ca,
        Dataset::Cond,
        Dataset::Delaunay,
        Dataset::Human,
        Dataset::Kron,
        Dataset::Msdoor,
    ];

    /// Parses the paper's name, case-insensitively.
    pub fn from_name(name: &str) -> Option<Dataset> {
        Dataset::ALL
            .into_iter()
            .find(|d| d.name().eq_ignore_ascii_case(name))
    }

    /// The paper's name for the dataset.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Ca => "ca",
            Dataset::Cond => "cond",
            Dataset::Delaunay => "delaunay",
            Dataset::Human => "human",
            Dataset::Kron => "kron",
            Dataset::Msdoor => "msdoor",
        }
    }

    /// Table 5 description.
    pub fn description(self) -> &'static str {
        match self {
            Dataset::Ca => "California road network",
            Dataset::Cond => "Collaboration network, arxiv.org",
            Dataset::Delaunay => "Delaunay triangulation",
            Dataset::Human => "Human gene regulatory network",
            Dataset::Kron => "Graph500, Synthetic Graph",
            Dataset::Msdoor => "Mesh of a 3D object",
        }
    }

    /// Published node count.
    pub fn published_nodes(self) -> usize {
        match self {
            Dataset::Ca => 710_000,
            Dataset::Cond => 40_000,
            Dataset::Delaunay => 524_000,
            Dataset::Human => 22_000,
            Dataset::Kron => 262_144,
            Dataset::Msdoor => 415_000,
        }
    }

    /// Published edge count.
    pub fn published_edges(self) -> usize {
        match self {
            Dataset::Ca => 3_480_000,
            Dataset::Cond => 350_000,
            Dataset::Delaunay => 3_400_000,
            Dataset::Human => 24_600_000,
            Dataset::Kron => 21_000_000,
            Dataset::Msdoor => 20_200_000,
        }
    }

    /// The Kronecker exponent `scale` maps to: the power of two
    /// closest to the scaled node count.
    fn kron_exponent(self, scale: f64) -> u32 {
        let nodes = ((self.published_nodes() as f64 * scale) as usize).max(64);
        (nodes as f64).log2().round() as u32
    }

    /// Checks that `scale` is buildable for this dataset without
    /// building anything — CLIs call this up front so a bad
    /// `SCU_SCALE` is a one-line error (exit 2), not a mid-sweep
    /// panic or (worse) a silently smaller graph.
    ///
    /// # Errors
    ///
    /// Returns a one-line description of the violated range.
    pub fn validate_scale(self, scale: f64) -> Result<(), String> {
        if !scale.is_finite() || scale <= 0.0 {
            return Err(format!(
                "scale {scale} must be a positive, finite multiplier"
            ));
        }
        let nodes = (self.published_nodes() as f64 * scale).max(64.0);
        if nodes >= u32::MAX as f64 {
            return Err(format!(
                "scale {scale} gives {nodes:.0} {self} nodes, past the u32 node-id limit"
            ));
        }
        if self == Dataset::Kron {
            let sc = self.kron_exponent(scale);
            let max = generate::kronecker::MAX_SCALE;
            if sc > max {
                // The scale that lands exactly on the largest exponent.
                let cap = (1u64 << max) as f64 / self.published_nodes() as f64;
                return Err(format!(
                    "scale {scale} maps kron to Kronecker exponent {sc}, above the supported \
                     maximum {max} (2^{max} nodes ≈ scale {cap:.0})"
                ));
            }
        }
        Ok(())
    }

    /// Builds the synthetic stand-in at `scale` × the published node
    /// count, deterministically from `seed`.
    ///
    /// `scale` ∈ (0, 1] reproduces the paper's affordable-simulation
    /// region, byte-for-byte as it always has. `scale` > 1 opens the
    /// Graph500-class region the paper could not evaluate: `kron`
    /// switches to the Graph500 reference edge factor
    /// ([`GRAPH500_EDGE_FACTOR`]) and the streaming generator, so
    /// Kronecker exponents up to
    /// [`MAX_SCALE`](generate::kronecker::MAX_SCALE) (scale 22 ≈
    /// `SCU_SCALE=16`) build with peak RSS bounded by the output CSR.
    ///
    /// # Errors
    ///
    /// Returns the [`Dataset::validate_scale`] error for an
    /// out-of-range `scale`.
    pub fn try_build(self, scale: f64, seed: u64) -> Result<Csr, String> {
        self.validate_scale(scale)?;
        let nodes = ((self.published_nodes() as f64 * scale) as usize).max(64);
        let avg_degree =
            (self.published_edges() as f64 / self.published_nodes() as f64).round() as usize;
        Ok(match self {
            Dataset::Ca => generate::road::generate(nodes, seed),
            Dataset::Cond => generate::power_law::generate(nodes, 4, seed),
            Dataset::Delaunay => generate::delaunay::generate(nodes, seed),
            Dataset::Human => generate::dense::generate(nodes, avg_degree, seed),
            Dataset::Kron => {
                // Preserve the Graph500 shape: scale the exponent. At
                // scale ≤ 1 the exponent lands in 6..=18 and the edge
                // factor stays the published ratio (byte-compatible
                // with every artifact and cached result ever built);
                // past 1.0 — a region that used to be rejected — the
                // Graph500 reference edge factor applies.
                let sc = self.kron_exponent(scale);
                let edge_factor = if scale > 1.0 {
                    GRAPH500_EDGE_FACTOR
                } else {
                    avg_degree.max(8)
                };
                generate::kronecker::generate(sc, edge_factor, seed)
            }
            Dataset::Msdoor => generate::mesh3d::generate(nodes, avg_degree, seed),
        })
    }

    /// [`Dataset::try_build`], panicking on an out-of-range scale.
    ///
    /// # Panics
    ///
    /// Panics with the [`Dataset::validate_scale`] message.
    pub fn build(self, scale: f64, seed: u64) -> Csr {
        self.try_build(scale, seed)
            .unwrap_or_else(|e| panic!("{e}"))
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_build_small() {
        for d in Dataset::ALL {
            let g = d.build(1.0 / 128.0, 42);
            g.validate().unwrap_or_else(|e| panic!("{d}: {e}"));
            assert!(g.num_nodes() >= 64, "{d} too small");
            assert!(g.num_edges() > 0, "{d} has no edges");
        }
    }

    #[test]
    fn scaled_degree_tracks_published_class() {
        // Average degree at small scale should stay within 2x of the
        // published edges/nodes ratio (structure preserved).
        for d in [Dataset::Ca, Dataset::Delaunay, Dataset::Msdoor] {
            let g = d.build(1.0 / 64.0, 1);
            let published = d.published_edges() as f64 / d.published_nodes() as f64;
            let got = g.avg_degree();
            assert!(
                got > published / 2.5 && got < published * 2.5,
                "{d}: degree {got} vs published {published}"
            );
        }
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<_> = Dataset::ALL.iter().map(|d| d.name()).collect();
        assert_eq!(names, ["ca", "cond", "delaunay", "human", "kron", "msdoor"]);
    }

    #[test]
    fn determinism_across_calls() {
        assert_eq!(Dataset::Cond.build(0.01, 5), Dataset::Cond.build(0.01, 5));
    }

    #[test]
    #[should_panic(expected = "must be a positive, finite multiplier")]
    fn zero_scale_panics() {
        Dataset::Ca.build(0.0, 1);
    }

    #[test]
    fn validate_scale_ranges() {
        assert!(Dataset::Kron.validate_scale(1.0).is_ok());
        assert!(Dataset::Kron.validate_scale(1.0 / 4096.0).is_ok());
        // Scale 16 → Kronecker exponent 22: the graph-dwarfs-L2 region.
        assert!(Dataset::Kron.validate_scale(16.0).is_ok());
        // Past exponent 26 the error names the limit and the cap.
        let err = Dataset::Kron.validate_scale(1000.0).unwrap_err();
        assert!(err.contains("maximum 26"), "{err}");
        assert!(Dataset::Ca.validate_scale(f64::NAN).is_err());
        assert!(Dataset::Ca.validate_scale(-1.0).is_err());
        assert!(Dataset::Ca.validate_scale(0.0).is_err());
        // Non-kron datasets hit the u32 node-id ceiling instead.
        assert!(Dataset::Ca.validate_scale(1.0e7).is_err());
    }

    #[test]
    fn try_build_reports_instead_of_panicking() {
        assert!(Dataset::Kron.try_build(1000.0, 1).is_err());
        let g = Dataset::Kron.try_build(1.0 / 512.0, 1).unwrap();
        g.validate().unwrap();
    }

    #[test]
    fn kron_exponent_tracks_scale() {
        // The old code clamped the exponent to 6..=18 silently; the
        // paper region (0, 1] never actually left that range, so the
        // explicit version must agree with it exactly there.
        for scale in [1.0 / 4096.0, 1.0 / 128.0, 0.25, 1.0] {
            let sc = Dataset::Kron.kron_exponent(scale);
            assert_eq!(sc, sc.clamp(6, 18), "scale {scale} exponent {sc}");
        }
        assert_eq!(Dataset::Kron.kron_exponent(16.0), 22);
    }

    #[test]
    fn display_uses_name() {
        assert_eq!(Dataset::Kron.to_string(), "kron");
    }
}

//! The Table 5 benchmark dataset registry.
//!
//! | name | description | nodes (10³) | edges (10⁶) |
//! |---|---|---|---|
//! | `ca` | California road network | 710 | 3.48 |
//! | `cond` | arXiv cond-mat collaboration | 40 | 0.35 |
//! | `delaunay` | Delaunay triangulation | 524 | 3.4 |
//! | `human` | human gene regulatory network | 22 | 24.6 |
//! | `kron` | Graph500 synthetic Kronecker | 262 | 21 |
//! | `msdoor` | 3-D object FEM mesh | 415 | 20.2 |
//!
//! The original datasets come from the UFL sparse matrix collection
//! and the 10th DIMACS challenge; this reproduction regenerates each
//! *class* synthetically at the published size (scale 1.0) or smaller
//! (see `DESIGN.md` for the substitution rationale).

use serde::{Deserialize, Serialize};

use crate::csr::Csr;
use crate::generate;

/// One of the paper's six benchmark graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// California road network (710 K nodes, 3.48 M edges).
    Ca,
    /// Collaboration network, arxiv.org (40 K nodes, 0.35 M edges).
    Cond,
    /// Delaunay triangulation (524 K nodes, 3.4 M edges).
    Delaunay,
    /// Human gene regulatory network (22 K nodes, 24.6 M edges).
    Human,
    /// Graph500 synthetic Kronecker graph (262 K nodes, 21 M edges).
    Kron,
    /// 3-D object mesh (415 K nodes, 20.2 M edges).
    Msdoor,
}

impl Dataset {
    /// All six datasets in the paper's presentation order.
    pub const ALL: [Dataset; 6] = [
        Dataset::Ca,
        Dataset::Cond,
        Dataset::Delaunay,
        Dataset::Human,
        Dataset::Kron,
        Dataset::Msdoor,
    ];

    /// Parses the paper's name, case-insensitively.
    pub fn from_name(name: &str) -> Option<Dataset> {
        Dataset::ALL
            .into_iter()
            .find(|d| d.name().eq_ignore_ascii_case(name))
    }

    /// The paper's name for the dataset.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Ca => "ca",
            Dataset::Cond => "cond",
            Dataset::Delaunay => "delaunay",
            Dataset::Human => "human",
            Dataset::Kron => "kron",
            Dataset::Msdoor => "msdoor",
        }
    }

    /// Table 5 description.
    pub fn description(self) -> &'static str {
        match self {
            Dataset::Ca => "California road network",
            Dataset::Cond => "Collaboration network, arxiv.org",
            Dataset::Delaunay => "Delaunay triangulation",
            Dataset::Human => "Human gene regulatory network",
            Dataset::Kron => "Graph500, Synthetic Graph",
            Dataset::Msdoor => "Mesh of a 3D object",
        }
    }

    /// Published node count.
    pub fn published_nodes(self) -> usize {
        match self {
            Dataset::Ca => 710_000,
            Dataset::Cond => 40_000,
            Dataset::Delaunay => 524_000,
            Dataset::Human => 22_000,
            Dataset::Kron => 262_144,
            Dataset::Msdoor => 415_000,
        }
    }

    /// Published edge count.
    pub fn published_edges(self) -> usize {
        match self {
            Dataset::Ca => 3_480_000,
            Dataset::Cond => 350_000,
            Dataset::Delaunay => 3_400_000,
            Dataset::Human => 24_600_000,
            Dataset::Kron => 21_000_000,
            Dataset::Msdoor => 20_200_000,
        }
    }

    /// Builds the synthetic stand-in at `scale` ∈ (0, 1] of the
    /// published node count, deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not in `(0, 1]`.
    pub fn build(self, scale: f64, seed: u64) -> Csr {
        assert!(
            scale > 0.0 && scale <= 1.0,
            "scale {scale} must be in (0, 1]"
        );
        let nodes = ((self.published_nodes() as f64 * scale) as usize).max(64);
        let avg_degree =
            (self.published_edges() as f64 / self.published_nodes() as f64).round() as usize;
        match self {
            Dataset::Ca => generate::road::generate(nodes, seed),
            Dataset::Cond => generate::power_law::generate(nodes, 4, seed),
            Dataset::Delaunay => generate::delaunay::generate(nodes, seed),
            Dataset::Human => generate::dense::generate(nodes, avg_degree, seed),
            Dataset::Kron => {
                // Preserve the Graph500 shape: scale the exponent.
                let sc = (nodes as f64).log2().round() as u32;
                let edge_factor = avg_degree.max(8);
                generate::kronecker::generate(sc.clamp(6, 18), edge_factor, seed)
            }
            Dataset::Msdoor => generate::mesh3d::generate(nodes, avg_degree, seed),
        }
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_build_small() {
        for d in Dataset::ALL {
            let g = d.build(1.0 / 128.0, 42);
            g.validate().unwrap_or_else(|e| panic!("{d}: {e}"));
            assert!(g.num_nodes() >= 64, "{d} too small");
            assert!(g.num_edges() > 0, "{d} has no edges");
        }
    }

    #[test]
    fn scaled_degree_tracks_published_class() {
        // Average degree at small scale should stay within 2x of the
        // published edges/nodes ratio (structure preserved).
        for d in [Dataset::Ca, Dataset::Delaunay, Dataset::Msdoor] {
            let g = d.build(1.0 / 64.0, 1);
            let published = d.published_edges() as f64 / d.published_nodes() as f64;
            let got = g.avg_degree();
            assert!(
                got > published / 2.5 && got < published * 2.5,
                "{d}: degree {got} vs published {published}"
            );
        }
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<_> = Dataset::ALL.iter().map(|d| d.name()).collect();
        assert_eq!(names, ["ca", "cond", "delaunay", "human", "kron", "msdoor"]);
    }

    #[test]
    fn determinism_across_calls() {
        assert_eq!(Dataset::Cond.build(0.01, 5), Dataset::Cond.build(0.01, 5));
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1]")]
    fn zero_scale_panics() {
        Dataset::Ca.build(0.0, 1);
    }

    #[test]
    fn display_uses_name() {
        assert_eq!(Dataset::Kron.to_string(), "kron");
    }
}

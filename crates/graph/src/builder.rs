//! Incremental edge-list builder producing [`Csr`] graphs.

use crate::csr::Csr;

/// Accumulates `(src, dst, weight)` triples and builds a [`Csr`].
///
/// ```
/// use scu_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1, 5);
/// b.add_edge(0, 2, 2);
/// b.add_edge(2, 1, 1);
/// let g = b.build();
/// assert_eq!(g.neighbors(0), &[1, 2]);
/// assert_eq!(g.neighbor_weights(2), &[1]);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<(u32, u32, u32)>,
    dedup: bool,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        GraphBuilder {
            num_nodes,
            edges: Vec::new(),
            dedup: false,
        }
    }

    /// Removes duplicate `(src, dst)` pairs at build time, keeping the
    /// smallest weight.
    pub fn dedup(&mut self) -> &mut Self {
        self.dedup = true;
        self
    }

    /// Adds a directed edge.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    pub fn add_edge(&mut self, src: u32, dst: u32, weight: u32) -> &mut Self {
        assert!(
            (src as usize) < self.num_nodes && (dst as usize) < self.num_nodes,
            "edge ({src}, {dst}) out of range for {} nodes",
            self.num_nodes
        );
        self.edges.push((src, dst, weight));
        self
    }

    /// Adds `src -> dst` and `dst -> src` with the same weight.
    pub fn add_undirected(&mut self, a: u32, b: u32, weight: u32) -> &mut Self {
        self.add_edge(a, b, weight);
        if a != b {
            self.add_edge(b, a, weight);
        }
        self
    }

    /// Number of edges accumulated so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Sorts, optionally deduplicates, and produces the CSR graph.
    pub fn build(mut self) -> Csr {
        // Sort by (src, dst, weight) so dedup keeps the cheapest copy.
        self.edges.sort_unstable();
        if self.dedup {
            self.edges.dedup_by_key(|&mut (s, d, _)| (s, d));
        }
        let mut row_offsets = vec![0u32; self.num_nodes + 1];
        for &(s, _, _) in &self.edges {
            row_offsets[s as usize + 1] += 1;
        }
        for i in 1..row_offsets.len() {
            row_offsets[i] += row_offsets[i - 1];
        }
        let edges: Vec<u32> = self.edges.iter().map(|&(_, d, _)| d).collect();
        let weights: Vec<u32> = self.edges.iter().map(|&(_, _, w)| w).collect();
        Csr::new(row_offsets, edges, weights).expect("builder output is valid by construction")
    }
}

impl Extend<(u32, u32, u32)> for GraphBuilder {
    fn extend<T: IntoIterator<Item = (u32, u32, u32)>>(&mut self, iter: T) {
        for (s, d, w) in iter {
            self.add_edge(s, d, w);
        }
    }
}

/// Builds a graph directly from `(src, dst, weight)` triples; the node
/// count is `max id + 1`.
///
/// ```
/// use scu_graph::builder::from_edges;
/// let g = from_edges([(0, 2, 5), (2, 1, 1)]);
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.neighbors(0), &[2]);
/// ```
pub fn from_edges(iter: impl IntoIterator<Item = (u32, u32, u32)>) -> Csr {
    let triples: Vec<(u32, u32, u32)> = iter.into_iter().collect();
    let n = triples
        .iter()
        .map(|&(s, d, _)| s.max(d) as usize + 1)
        .max()
        .unwrap_or(0);
    let mut b = GraphBuilder::new(n);
    b.extend(triples);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_adjacency() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(2, 0, 1).add_edge(0, 3, 2).add_edge(0, 1, 3);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 3]);
        assert_eq!(g.neighbors(2), &[0]);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn dedup_keeps_cheapest() {
        let mut b = GraphBuilder::new(2);
        b.dedup();
        b.add_edge(0, 1, 9).add_edge(0, 1, 3).add_edge(0, 1, 7);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbor_weights(0), &[3]);
    }

    #[test]
    fn without_dedup_parallel_edges_remain() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1).add_edge(0, 1, 2);
        assert_eq!(b.edge_count(), 2);
        assert_eq!(b.build().num_edges(), 2);
    }

    #[test]
    fn undirected_adds_both_directions() {
        let mut b = GraphBuilder::new(3);
        b.add_undirected(0, 2, 4);
        b.add_undirected(1, 1, 5); // self-loop only once
        let g = b.build();
        assert_eq!(g.neighbors(0), &[2]);
        assert_eq!(g.neighbors(2), &[0]);
        assert_eq!(g.neighbors(1), &[1]);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        GraphBuilder::new(2).add_edge(0, 2, 1);
    }

    #[test]
    fn extend_and_from_edges() {
        let mut b = GraphBuilder::new(3);
        b.extend([(0u32, 1u32, 1u32), (1, 2, 2)]);
        assert_eq!(b.build().num_edges(), 2);

        let g = from_edges([(4, 0, 9)]);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.neighbor_weights(4), &[9]);
        assert_eq!(from_edges(std::iter::empty()).num_nodes(), 0);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new(5).build();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
    }
}

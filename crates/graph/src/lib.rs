//! # scu-graph — graph substrate: CSR storage, generators, datasets
//!
//! Provides everything the graph algorithms and benchmarks need:
//!
//! * [`csr`] — the Compressed Sparse Row representation the paper's
//!   GPU implementations use (§2, Figure 2): a row-offset array, an
//!   edge (destination) array, and a parallel weight array.
//! * [`builder`] — incremental edge-list construction with optional
//!   deduplication and sorting.
//! * [`artifact`] — the build-once graph artifact store: checksummed,
//!   mmap'd CSR files served zero-copy across cells, processes and
//!   daemon restarts (format `SCUCSR01`; see `DESIGN.md`).
//! * [`generate`] — synthetic generators for each *class* of graph in
//!   the paper's Table 5: road networks, collaboration (power-law)
//!   networks, Delaunay-like planar meshes, dense biological networks,
//!   Kronecker/Graph500 graphs and 3D FEM meshes.
//! * [`datasets`] — the Table 5 registry: `ca`, `cond`, `delaunay`,
//!   `human`, `kron`, `msdoor`, with published node/edge counts and a
//!   scale knob for affordable simulation (the substitution is
//!   documented in `DESIGN.md`).
//! * [`io`] — edge-list, DIMACS and MatrixMarket parsing/serialisation.
//! * [`stats`] — degree-distribution and locality statistics.
//! * [`transform`] — locality-improving renumberings (for the
//!   preprocessing-vs-SCU comparison the related work motivates).
//!
//! ## Example
//!
//! ```
//! use scu_graph::datasets::Dataset;
//!
//! // A 1/64-scale `cond` collaboration network.
//! let g = Dataset::Cond.build(1.0 / 64.0, 7);
//! assert!(g.num_nodes() > 0);
//! g.validate().unwrap();
//! ```

pub mod artifact;
pub mod builder;
pub mod csr;
pub mod datasets;
pub mod generate;
pub mod io;
pub mod stats;
pub mod transform;

pub use artifact::GraphStore;
pub use builder::GraphBuilder;
pub use csr::Csr;
pub use datasets::Dataset;
pub use stats::GraphStats;

//! Plain-text graph parsing and serialisation.
//!
//! Two formats are supported:
//!
//! * **edge list** — one `src dst [weight]` triple per line, `#`
//!   comments, 0-indexed (the format of the SNAP collection the `ca`
//!   and `cond` datasets come from);
//! * **DIMACS shortest-path** — `c` comments, one `p sp <n> <m>`
//!   header, `a <src> <dst> <weight>` arcs, 1-indexed (the 9th/10th
//!   DIMACS challenge format of the `delaunay` datasets).

use std::fmt::Write as _;

use crate::builder::GraphBuilder;
use crate::csr::Csr;

/// Error from a parser in this module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGraphError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseGraphError {}

fn err(line: usize, message: impl Into<String>) -> ParseGraphError {
    ParseGraphError {
        line,
        message: message.into(),
    }
}

/// Parses a 0-indexed `src dst [weight]` edge list. Missing weights
/// default to 1. The node count is `max id + 1`.
///
/// # Errors
///
/// Returns [`ParseGraphError`] on malformed lines.
pub fn parse_edge_list(text: &str) -> Result<Csr, ParseGraphError> {
    let mut triples: Vec<(u32, u32, u32)> = Vec::new();
    let mut max_id = 0u32;
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let src: u32 = it
            .next()
            .ok_or_else(|| err(ln + 1, "missing src"))?
            .parse()
            .map_err(|e| err(ln + 1, format!("bad src: {e}")))?;
        let dst: u32 = it
            .next()
            .ok_or_else(|| err(ln + 1, "missing dst"))?
            .parse()
            .map_err(|e| err(ln + 1, format!("bad dst: {e}")))?;
        let weight: u32 = match it.next() {
            Some(w) => w
                .parse()
                .map_err(|e| err(ln + 1, format!("bad weight: {e}")))?,
            None => 1,
        };
        if it.next().is_some() {
            return Err(err(ln + 1, "trailing tokens"));
        }
        // `u32::MAX` would make the node count `u32::MAX + 1`, which
        // no u32 node id can index — reject instead of wrapping.
        if src == u32::MAX || dst == u32::MAX {
            return Err(err(
                ln + 1,
                format!(
                    "node index overflow: id {} exceeds the maximum {}",
                    u32::MAX,
                    u32::MAX - 1
                ),
            ));
        }
        max_id = max_id.max(src).max(dst);
        triples.push((src, dst, weight));
    }
    let n = if triples.is_empty() {
        0
    } else {
        max_id as usize + 1
    };
    let mut b = GraphBuilder::new(n);
    for (s, d, w) in triples {
        b.add_edge(s, d, w);
    }
    Ok(b.build())
}

/// Serialises a graph as a 0-indexed edge list with weights.
pub fn to_edge_list(g: &Csr) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# nodes {} edges {}", g.num_nodes(), g.num_edges());
    for (s, d, w) in g.iter_edges() {
        let _ = writeln!(out, "{s} {d} {w}");
    }
    out
}

/// Parses the DIMACS shortest-path format (1-indexed `a` arcs).
///
/// # Errors
///
/// Returns [`ParseGraphError`] on malformed lines, a missing header,
/// node IDs outside the declared range, or an arc count that does not
/// match the header's `m`.
pub fn parse_dimacs(text: &str) -> Result<Csr, ParseGraphError> {
    let mut builder: Option<GraphBuilder> = None;
    let mut declared: (usize, usize) = (0, 0);
    let mut arcs = 0usize;
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut it = line.split_whitespace();
        match it.next() {
            Some("p") => {
                if it.next() != Some("sp") {
                    return Err(err(ln + 1, "expected 'p sp <n> <m>'"));
                }
                let n: usize = it
                    .next()
                    .ok_or_else(|| err(ln + 1, "missing node count"))?
                    .parse()
                    .map_err(|e| err(ln + 1, format!("bad node count: {e}")))?;
                let m: usize = it
                    .next()
                    .ok_or_else(|| err(ln + 1, "missing edge count"))?
                    .parse()
                    .map_err(|e| err(ln + 1, format!("bad edge count: {e}")))?;
                if n > u32::MAX as usize {
                    return Err(err(
                        ln + 1,
                        format!("node count {n} exceeds the u32 node-id space"),
                    ));
                }
                declared = (n, m);
                builder = Some(GraphBuilder::new(n));
            }
            Some("a") => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err(ln + 1, "arc before 'p sp' header"))?;
                let src: u32 = it
                    .next()
                    .ok_or_else(|| err(ln + 1, "missing src"))?
                    .parse()
                    .map_err(|e| err(ln + 1, format!("bad src: {e}")))?;
                let dst: u32 = it
                    .next()
                    .ok_or_else(|| err(ln + 1, "missing dst"))?
                    .parse()
                    .map_err(|e| err(ln + 1, format!("bad dst: {e}")))?;
                let w: u32 = it
                    .next()
                    .ok_or_else(|| err(ln + 1, "missing weight"))?
                    .parse()
                    .map_err(|e| err(ln + 1, format!("bad weight: {e}")))?;
                if src == 0 || dst == 0 {
                    return Err(err(ln + 1, "DIMACS node ids are 1-indexed"));
                }
                if src as usize > declared.0 || dst as usize > declared.0 {
                    return Err(err(
                        ln + 1,
                        format!(
                            "arc ({src}, {dst}) outside the declared {} node(s)",
                            declared.0
                        ),
                    ));
                }
                arcs += 1;
                b.add_edge(src - 1, dst - 1, w);
            }
            Some(other) => {
                return Err(err(ln + 1, format!("unknown record '{other}'")));
            }
            None => unreachable!("line is nonempty"),
        }
    }
    let b = builder.ok_or_else(|| err(1, "missing 'p sp' header"))?;
    if arcs != declared.1 {
        return Err(err(
            text.lines().count().max(1),
            format!("header declares {} arc(s) but {arcs} present", declared.1),
        ));
    }
    Ok(b.build())
}

/// Parses the MatrixMarket coordinate format (the UFL collection's
/// native format, used by the paper's `human`/`msdoor` datasets):
/// a `%%MatrixMarket matrix coordinate <field> <symmetry>` banner,
/// `%` comments, a `rows cols nnz` size line, then 1-indexed
/// `i j [value]` entries. `symmetric` matrices add both directions.
/// Numeric values are mapped to weights by `ceil(|v|)` clamped to
/// at least 1; `pattern` matrices get weight 1.
///
/// # Errors
///
/// Returns [`ParseGraphError`] on malformed input.
pub fn parse_matrix_market(text: &str) -> Result<Csr, ParseGraphError> {
    let mut lines = text.lines().enumerate();
    let (_, banner) = lines.next().ok_or_else(|| err(1, "empty input"))?;
    let banner_fields: Vec<&str> = banner.split_whitespace().collect();
    if banner_fields.len() < 5
        || !banner_fields[0].eq_ignore_ascii_case("%%MatrixMarket")
        || !banner_fields[1].eq_ignore_ascii_case("matrix")
        || !banner_fields[2].eq_ignore_ascii_case("coordinate")
    {
        return Err(err(
            1,
            "expected '%%MatrixMarket matrix coordinate ...' banner",
        ));
    }
    let pattern = banner_fields[3].eq_ignore_ascii_case("pattern");
    let symmetric = banner_fields[4].eq_ignore_ascii_case("symmetric");

    let mut builder: Option<GraphBuilder> = None;
    let mut declared: (usize, usize, usize) = (0, 0, 0); // rows, cols, nnz
    let mut entries = 0usize;
    for (ln, raw) in lines {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        if builder.is_none() {
            let rows: usize = it
                .next()
                .ok_or_else(|| err(ln + 1, "missing row count"))?
                .parse()
                .map_err(|e| err(ln + 1, format!("bad row count: {e}")))?;
            let cols: usize = it
                .next()
                .ok_or_else(|| err(ln + 1, "missing column count"))?
                .parse()
                .map_err(|e| err(ln + 1, format!("bad column count: {e}")))?;
            let nnz: usize = it
                .next()
                .ok_or_else(|| err(ln + 1, "missing nonzero count"))?
                .parse()
                .map_err(|e| err(ln + 1, format!("bad nonzero count: {e}")))?;
            if rows.max(cols) > u32::MAX as usize {
                return Err(err(
                    ln + 1,
                    format!("dimension {} exceeds the u32 node-id space", rows.max(cols)),
                ));
            }
            declared = (rows, cols, nnz);
            builder = Some(GraphBuilder::new(rows.max(cols)));
            continue;
        }
        let b = builder.as_mut().expect("set above");
        let i: u32 = it
            .next()
            .ok_or_else(|| err(ln + 1, "missing row index"))?
            .parse()
            .map_err(|e| err(ln + 1, format!("bad row index: {e}")))?;
        let j: u32 = it
            .next()
            .ok_or_else(|| err(ln + 1, "missing column index"))?
            .parse()
            .map_err(|e| err(ln + 1, format!("bad column index: {e}")))?;
        if i == 0 || j == 0 {
            return Err(err(ln + 1, "MatrixMarket indices are 1-indexed"));
        }
        if i as usize > declared.0 || j as usize > declared.1 {
            return Err(err(
                ln + 1,
                format!(
                    "entry ({i}, {j}) outside the declared {}x{} matrix",
                    declared.0, declared.1
                ),
            ));
        }
        let weight = if pattern {
            1
        } else {
            let v: f64 = it
                .next()
                .ok_or_else(|| err(ln + 1, "missing value"))?
                .parse()
                .map_err(|e| err(ln + 1, format!("bad value: {e}")))?;
            (v.abs().ceil() as u32).max(1)
        };
        entries += 1;
        b.add_edge(i - 1, j - 1, weight);
        if symmetric && i != j {
            b.add_edge(j - 1, i - 1, weight);
        }
    }
    let b = builder.ok_or_else(|| err(1, "missing size line"))?;
    if entries != declared.2 {
        return Err(err(
            text.lines().count().max(1),
            format!(
                "size line declares {} nonzero(s) but {entries} present",
                declared.2
            ),
        ));
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_list_round_trip() {
        let text = "# comment\n0 1 5\n1 2 3\n2 0\n";
        let g = parse_edge_list(text).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbor_weights(0), &[5]);
        assert_eq!(g.neighbor_weights(2), &[1]); // default weight

        let text2 = to_edge_list(&g);
        let g2 = parse_edge_list(&text2).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        assert!(parse_edge_list("0\n").is_err());
        assert!(parse_edge_list("a b\n").is_err());
        assert!(parse_edge_list("0 1 2 3\n").is_err());
        let e = parse_edge_list("0 1\nx 2\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn empty_edge_list_is_empty_graph() {
        let g = parse_edge_list("# nothing\n").unwrap();
        assert_eq!(g.num_nodes(), 0);
    }

    #[test]
    fn dimacs_parses_1_indexed() {
        let text = "c comment\np sp 3 2\na 1 2 7\na 2 3 4\n";
        let g = parse_dimacs(text).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbor_weights(1), &[4]);
    }

    #[test]
    fn dimacs_rejects_zero_ids_and_missing_header() {
        assert!(parse_dimacs("a 1 2 3\n").is_err());
        assert!(parse_dimacs("p sp 2 1\na 0 1 3\n").is_err());
        assert!(parse_dimacs("p xx 2 1\n").is_err());
        assert!(parse_dimacs("q sp 2 1\n").is_err());
    }

    #[test]
    fn matrix_market_general_real() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % comment\n3 3 3\n1 2 2.5\n2 3 1.0\n3 1 0.2\n";
        let g = parse_matrix_market(text).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbor_weights(0), &[3]); // ceil(2.5)
        assert_eq!(g.neighbor_weights(2), &[1]); // max(1, ceil(0.2))
    }

    #[test]
    fn matrix_market_symmetric_pattern() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                    2 2 1\n1 2\n";
        let g = parse_matrix_market(text).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn matrix_market_rejects_bad_input() {
        assert!(parse_matrix_market("").is_err());
        assert!(parse_matrix_market("%%MatrixMarket vector coordinate real general\n").is_err());
        assert!(parse_matrix_market(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 3\n"
        )
        .is_err());
        assert!(parse_matrix_market("%%MatrixMarket matrix coordinate real general\n").is_err());
    }

    #[test]
    fn error_display_includes_line() {
        let e = parse_edge_list("0 1\nbroken\n").unwrap_err();
        assert!(e.to_string().starts_with("line 2:"));
    }

    #[test]
    fn edge_list_rejects_node_index_overflow() {
        let e = parse_edge_list(&format!("0 {}\n", u32::MAX)).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("overflow"), "{}", e.message);
    }

    #[test]
    fn dimacs_rejects_out_of_range_arcs() {
        let e = parse_dimacs("p sp 2 1\na 1 3 5\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("outside the declared"), "{}", e.message);
    }

    #[test]
    fn dimacs_rejects_arc_count_mismatch() {
        let e = parse_dimacs("p sp 3 2\na 1 2 7\n").unwrap_err();
        assert!(e.message.contains("declares 2 arc(s)"), "{}", e.message);
        let e = parse_dimacs("p sp 3 1\na 1 2 7\na 2 3 4\n").unwrap_err();
        assert!(e.message.contains("but 2 present"), "{}", e.message);
    }

    #[test]
    fn matrix_market_rejects_out_of_range_entries() {
        let e =
            parse_matrix_market("%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n")
                .unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("outside the declared"), "{}", e.message);
    }

    #[test]
    fn matrix_market_rejects_nnz_mismatch() {
        let e =
            parse_matrix_market("%%MatrixMarket matrix coordinate real general\n3 3 2\n1 2 1.0\n")
                .unwrap_err();
        assert!(e.message.contains("declares 2 nonzero(s)"), "{}", e.message);
    }
}

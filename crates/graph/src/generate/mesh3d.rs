//! 3-D FEM mesh generator (the `msdoor` class).
//!
//! `msdoor` is the sparsity pattern of a finite-element model of a 3-D
//! object: a banded matrix where each row couples with its spatial
//! neighbourhood (~50–100 nonzeros per row, tightly clustered IDs).
//! A 3-D lattice with a configurable coupling radius reproduces the
//! banded structure and high uniform degree.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use super::random_weight;
use crate::builder::GraphBuilder;
use crate::csr::Csr;

/// Generates a 3-D FEM-style mesh of roughly `num_nodes` nodes, each
/// coupled to approximately `target_degree` spatial neighbours.
///
/// The lattice is cubic; couplings include every node within the
/// smallest Chebyshev radius whose shell population reaches
/// `target_degree`, trimmed randomly to the target.
pub fn generate(num_nodes: usize, target_degree: usize, seed: u64) -> Csr {
    let side = (num_nodes as f64).cbrt().ceil() as usize;
    let side = side.max(2);
    let n = side * side * side;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);

    // Radius r neighbourhood has (2r+1)^3 - 1 candidates.
    let mut r = 1usize;
    while (2 * r + 1).pow(3) - 1 < target_degree {
        r += 1;
    }
    let keep_p = target_degree as f64 / ((2 * r + 1).pow(3) - 1) as f64;

    let id = |x: usize, y: usize, z: usize| ((z * side + y) * side + x) as u32;
    for z in 0..side {
        for y in 0..side {
            for x in 0..side {
                let v = id(x, y, z);
                // Emit only "forward" couplings to avoid double
                // counting; add_undirected supplies the reverse.
                for dz in 0..=r {
                    for dy in -(r as isize)..=(r as isize) {
                        for dx in -(r as isize)..=(r as isize) {
                            if dz == 0 && (dy < 0 || (dy == 0 && dx <= 0)) {
                                continue;
                            }
                            let nx = x as isize + dx;
                            let ny = y as isize + dy;
                            let nz = z + dz;
                            if nx < 0
                                || ny < 0
                                || nx >= side as isize
                                || ny >= side as isize
                                || nz >= side
                            {
                                continue;
                            }
                            if rng.random::<f64>() < keep_p {
                                let w = id(nx as usize, ny as usize, nz);
                                b.add_undirected(v, w, random_weight(&mut rng));
                            }
                        }
                    }
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(generate(1000, 26, 3), generate(1000, 26, 3));
    }

    #[test]
    fn degree_tracks_target() {
        let g = generate(8000, 48, 1);
        let d = g.avg_degree();
        assert!((30.0..60.0).contains(&d), "avg degree {d}");
    }

    #[test]
    fn banded_structure_neighbors_have_nearby_ids() {
        let g = generate(8000, 26, 2);
        let side = 20u32;
        let band = 2 * side * side; // two z-planes
        let v = g.num_nodes() as u32 / 2;
        for &w in g.neighbors(v) {
            assert!(v.abs_diff(w) <= band, "neighbor {w} outside band of {v}");
        }
    }

    #[test]
    fn validates() {
        generate(3000, 26, 5).validate().unwrap();
    }

    #[test]
    fn degree_is_uniform_no_hubs() {
        let g = generate(8000, 48, 4);
        assert!(
            (g.max_degree() as f64) < 3.0 * g.avg_degree(),
            "max {} avg {}",
            g.max_degree(),
            g.avg_degree()
        );
    }
}

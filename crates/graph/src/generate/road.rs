//! Road-network generator (the `ca` / California class).
//!
//! Road networks are near-planar lattices: almost every junction
//! connects to 2–4 geographic neighbours, diameters are enormous, and
//! BFS/SSSP frontiers stay small for many iterations — the regime
//! where compaction overhead dominates GPU execution.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use super::random_weight;
use crate::builder::GraphBuilder;
use crate::csr::Csr;

/// Generates a road-like network of roughly `num_nodes` nodes: a 2-D
/// grid with 4-neighbour streets, a fraction of missing segments
/// (rivers, mountains) and sparse long-range shortcuts (highways).
///
/// Directed average degree lands near the `ca` dataset's ~4.9.
pub fn generate(num_nodes: usize, seed: u64) -> Csr {
    let side = (num_nodes as f64).sqrt().ceil() as usize;
    let n = side * side;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);

    let id = |x: usize, y: usize| (y * side + x) as u32;
    for y in 0..side {
        for x in 0..side {
            // Street to the east / south, each present with p = 0.93
            // (road networks are grids with occasional gaps).
            if x + 1 < side && rng.random_range(0..100) < 93 {
                b.add_undirected(id(x, y), id(x + 1, y), random_weight(&mut rng));
            }
            if y + 1 < side && rng.random_range(0..100) < 93 {
                b.add_undirected(id(x, y), id(x, y + 1), random_weight(&mut rng));
            }
        }
    }
    // Highways: ~2% of nodes get one long-range link.
    let highways = n / 50;
    for _ in 0..highways {
        let a = rng.random_range(0..n as u32);
        let c = rng.random_range(0..n as u32);
        if a != c {
            b.add_undirected(a, c, random_weight(&mut rng));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = generate(1000, 9);
        let b = generate(1000, 9);
        assert_eq!(a, b);
        let c = generate(1000, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn degree_matches_road_class() {
        let g = generate(10_000, 1);
        let d = g.avg_degree();
        assert!((3.0..6.0).contains(&d), "avg degree {d} not road-like");
        // Low max degree: no hubs in a road network.
        assert!(g.max_degree() < 12, "max degree {}", g.max_degree());
    }

    #[test]
    fn validates() {
        generate(5000, 3).validate().unwrap();
    }

    #[test]
    fn large_diameter_frontier_growth_is_slow() {
        // BFS from node 0: the frontier of a lattice grows ~linearly,
        // not exponentially. After 5 rounds it must still be tiny
        // compared to the graph.
        let g = generate(10_000, 4);
        let mut dist = vec![u32::MAX; g.num_nodes()];
        dist[0] = 0;
        let mut frontier = vec![0u32];
        for _ in 0..5 {
            let mut next = Vec::new();
            for &v in &frontier {
                for &w in g.neighbors(v) {
                    if dist[w as usize] == u32::MAX {
                        dist[w as usize] = 1;
                        next.push(w);
                    }
                }
            }
            frontier = next;
        }
        assert!(frontier.len() < g.num_nodes() / 20);
    }
}

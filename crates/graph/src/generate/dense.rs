//! Dense biological-network generator (the `human` gene-regulatory
//! class).
//!
//! The `human` dataset is tiny in nodes (22 K) but enormous in edges
//! (24.6 M, average degree >1000): regulatory networks are near-
//! complete inside functional modules. The generator draws, for every
//! node, a degree-sized sample biased toward the node's community
//! block plus uniform background links.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use super::random_weight;
use crate::builder::GraphBuilder;
use crate::csr::Csr;

/// Generates a dense community-structured graph with `num_nodes`
/// nodes and roughly `avg_degree` out-edges per node.
///
/// 70% of each node's edges stay inside its community block of
/// `block = max(64, avg_degree)` nodes, 30% go anywhere; parallel
/// duplicates are removed, so the realised degree is slightly below
/// the target for very dense settings.
pub fn generate(num_nodes: usize, avg_degree: usize, seed: u64) -> Csr {
    let n = num_nodes.max(2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    b.dedup();
    let block = avg_degree.max(64).min(n);
    let n_blocks = n.div_ceil(block);

    for v in 0..n as u32 {
        let my_block = v as usize / block;
        for _ in 0..avg_degree {
            let dst = if rng.random_range(0..10) < 7 {
                // In-community edge.
                let lo = my_block * block;
                let hi = ((my_block + 1) * block).min(n);
                rng.random_range(lo as u32..hi as u32)
            } else {
                let other = rng.random_range(0..n_blocks);
                let lo = other * block;
                let hi = ((other + 1) * block).min(n);
                rng.random_range(lo as u32..hi as u32)
            };
            if dst != v {
                b.add_edge(v, dst, random_weight(&mut rng));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(generate(500, 50, 4), generate(500, 50, 4));
    }

    #[test]
    fn density_tracks_target() {
        let g = generate(2000, 100, 1);
        let d = g.avg_degree();
        assert!((60.0..100.0).contains(&d), "avg degree {d}");
    }

    #[test]
    fn community_structure_present() {
        let g = generate(2000, 100, 2);
        // Count edges staying within the 100-wide block of node 0.
        let in_block = g.neighbors(0).iter().filter(|&&w| w < 100).count();
        let total = g.degree(0) as usize;
        assert!(
            in_block * 2 > total,
            "only {in_block}/{total} edges in community"
        );
    }

    #[test]
    fn validates_and_has_no_self_loops() {
        let g = generate(1000, 40, 9);
        g.validate().unwrap();
        for (s, d, _) in g.iter_edges() {
            assert_ne!(s, d, "self loop {s}");
        }
    }

    #[test]
    fn no_parallel_edges() {
        let g = generate(500, 80, 3);
        for v in 0..g.num_nodes() as u32 {
            let nb = g.neighbors(v);
            for w in nb.windows(2) {
                assert!(w[0] < w[1], "duplicate edge {v}->{}", w[0]);
            }
        }
    }
}

//! Synthetic graph generators, one per Table 5 dataset class.
//!
//! The paper evaluates on six real graphs "representative of different
//! categories of graphs as well as dimensions and connectivity
//! properties" (§5). What the SCU's benefit depends on is exactly those
//! category properties — frontier growth rate, duplicate density, and
//! destination locality — so each generator here reproduces one
//! category's structure at a configurable size:
//!
//! | module | class | paper dataset |
//! |---|---|---|
//! | [`road`] | planar lattice with shortcuts, low degree, huge diameter | `ca` |
//! | [`power_law`] | preferential attachment, heavy-tailed degrees | `cond` |
//! | [`delaunay`] | triangulated planar mesh, uniform low degree | `delaunay` |
//! | [`dense`] | small, extremely dense with community blocks | `human` |
//! | [`kronecker`] | R-MAT/Graph500, scale-free with massive hubs | `kron` |
//! | [`mesh3d`] | banded 3-D FEM stencil, high uniform degree | `msdoor` |
//!
//! All generators are deterministic given their seed.

pub mod delaunay;
pub mod dense;
pub mod kronecker;
pub mod mesh3d;
pub mod power_law;
pub mod road;

use rand::rngs::StdRng;
use rand::RngExt;

/// Draws an edge weight in `1..=10` (the paper's SSSP uses small
/// positive integer costs; see Figure 2).
pub(crate) fn random_weight(rng: &mut StdRng) -> u32 {
    rng.random_range(1..=10)
}

//! Delaunay-triangulation-like generator (the `delaunay` / DIMACS
//! class).
//!
//! A Delaunay triangulation of random points is a planar graph where
//! almost every node has degree ~6 (the expected Delaunay degree) with
//! small variance. A jittered triangular lattice reproduces that
//! degree structure and the spatial locality of the real datasets
//! without a full computational-geometry kernel.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use super::random_weight;
use crate::builder::GraphBuilder;
use crate::csr::Csr;

/// Generates a triangulated planar mesh of roughly `num_nodes` nodes:
/// a 2-D lattice with east, south and south-east (diagonal) links,
/// giving undirected degree ≈ 6 like a Delaunay triangulation, with a
/// small fraction of flipped diagonals for irregularity.
pub fn generate(num_nodes: usize, seed: u64) -> Csr {
    let side = (num_nodes as f64).sqrt().ceil() as usize;
    let n = side * side;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    let id = |x: usize, y: usize| (y * side + x) as u32;

    for y in 0..side {
        for x in 0..side {
            if x + 1 < side {
                b.add_undirected(id(x, y), id(x + 1, y), random_weight(&mut rng));
            }
            if y + 1 < side {
                b.add_undirected(id(x, y), id(x, y + 1), random_weight(&mut rng));
            }
            if x + 1 < side && y + 1 < side {
                // Triangulating diagonal; flip orientation ~50% like a
                // real triangulation of jittered points.
                if rng.random_range(0..2) == 0 {
                    b.add_undirected(id(x, y), id(x + 1, y + 1), random_weight(&mut rng));
                } else {
                    b.add_undirected(id(x + 1, y), id(x, y + 1), random_weight(&mut rng));
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(generate(400, 2), generate(400, 2));
    }

    #[test]
    fn degree_close_to_six() {
        let g = generate(10_000, 1);
        let d = g.avg_degree();
        assert!((5.0..6.5).contains(&d), "avg degree {d}");
        // Delaunay graphs have tightly bounded degree.
        assert!(g.max_degree() <= 10, "max degree {}", g.max_degree());
    }

    #[test]
    fn validates() {
        generate(2500, 7).validate().unwrap();
    }

    #[test]
    fn planar_locality_neighbors_are_near() {
        let g = generate(10_000, 3);
        let side = 100u32;
        // Every neighbour of a node is within lattice distance 1 in
        // both coordinates — the spatial locality that makes grouping
        // less critical on meshes.
        for v in [0u32, 5_000, 9_999] {
            for &w in g.neighbors(v) {
                let (vx, vy) = (v % side, v / side);
                let (wx, wy) = (w % side, w / side);
                assert!(vx.abs_diff(wx) <= 1 && vy.abs_diff(wy) <= 1);
            }
        }
    }
}

//! Collaboration-network generator (the `cond` / arXiv cond-mat class).
//!
//! Collaboration networks have heavy-tailed degree distributions: a
//! few prolific authors connect to hundreds of others while most have
//! a handful of links. Preferential attachment (Barabási–Albert)
//! reproduces the tail; duplicate endpoints in the expansion stream
//! are common, which is what the SCU's filtering exploits.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use super::random_weight;
use crate::builder::GraphBuilder;
use crate::csr::Csr;

/// Generates a scale-free network of `num_nodes` nodes where each new
/// node attaches to `edges_per_node` existing nodes chosen
/// preferentially by degree.
///
/// Directed average degree ≈ `2 * edges_per_node`, matching `cond`'s
/// ~8.7 with `edges_per_node = 4`.
pub fn generate(num_nodes: usize, edges_per_node: usize, seed: u64) -> Csr {
    assert!(edges_per_node >= 1, "need at least one edge per node");
    let m = edges_per_node;
    let n = num_nodes.max(m + 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);

    // Repeated-endpoint list: sampling uniformly from it is sampling
    // proportionally to degree.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * m * n);

    // Seed clique over the first m+1 nodes.
    for i in 0..=m as u32 {
        for j in 0..i {
            b.add_undirected(i, j, random_weight(&mut rng));
            endpoints.push(i);
            endpoints.push(j);
        }
    }

    for v in (m as u32 + 1)..n as u32 {
        let mut chosen: Vec<u32> = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m && guard < 50 * m {
            guard += 1;
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            b.add_undirected(v, t, random_weight(&mut rng));
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(generate(500, 4, 1), generate(500, 4, 1));
        assert_ne!(generate(500, 4, 1), generate(500, 4, 2));
    }

    #[test]
    fn average_degree_tracks_m() {
        let g = generate(5000, 4, 3);
        let d = g.avg_degree();
        assert!((7.0..10.0).contains(&d), "avg degree {d}");
    }

    #[test]
    fn has_heavy_tail() {
        let g = generate(5000, 4, 3);
        // A scale-free graph's max degree is far above the mean.
        assert!(
            g.max_degree() as f64 > 8.0 * g.avg_degree(),
            "max {} vs avg {}",
            g.max_degree(),
            g.avg_degree()
        );
    }

    #[test]
    fn validates() {
        generate(2000, 4, 5).validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "at least one edge")]
    fn zero_m_panics() {
        generate(10, 0, 1);
    }

    #[test]
    fn tiny_graph_clamps_to_seed_clique() {
        let g = generate(2, 4, 1);
        assert_eq!(g.num_nodes(), 5); // m + 1
        g.validate().unwrap();
    }
}

//! Kronecker / R-MAT generator (the `kron` / Graph500 class).
//!
//! Graph500's synthetic graphs are stochastic Kronecker graphs: each
//! edge picks its endpoints by descending a 2×2 probability matrix
//! `[[a, b], [c, d]]` for `scale` levels. The result is scale-free
//! with massive hubs and essentially no locality — the hardest case
//! for memory coalescing and the most duplicate-rich for filtering.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use super::random_weight;
use crate::builder::GraphBuilder;
use crate::csr::Csr;

/// Graph500 reference R-MAT parameters.
pub const A: f64 = 0.57;
/// See [`A`].
pub const B: f64 = 0.19;
/// See [`A`].
pub const C: f64 = 0.19;

/// Generates a Kronecker graph with `2^scale` nodes and
/// `edge_factor * 2^scale` directed edges (multi-edges kept, as in
/// Graph500's edge lists).
pub fn generate(scale: u32, edge_factor: usize, seed: u64) -> Csr {
    assert!(
        (1..=26).contains(&scale),
        "scale {scale} out of supported range"
    );
    let n = 1usize << scale;
    let m = edge_factor * n;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);

    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.random();
            if r < A {
                // top-left: no bits set
            } else if r < A + B {
                v |= 1;
            } else if r < A + B + C {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        if u != v {
            b.add_edge(u as u32, v as u32, random_weight(&mut rng));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(generate(8, 8, 1), generate(8, 8, 1));
        assert_ne!(generate(8, 8, 1), generate(8, 8, 2));
    }

    #[test]
    fn node_and_edge_counts() {
        let g = generate(10, 16, 3);
        assert_eq!(g.num_nodes(), 1024);
        // Self-loops removed, so slightly under edge_factor * n.
        let m = g.num_edges();
        assert!(m > 15 * 1024 && m <= 16 * 1024, "edges {m}");
    }

    #[test]
    fn hubs_dominate() {
        let g = generate(12, 16, 5);
        assert!(
            g.max_degree() as f64 > 20.0 * g.avg_degree(),
            "max {} avg {}",
            g.max_degree(),
            g.avg_degree()
        );
    }

    #[test]
    fn low_ids_are_heavier() {
        // The R-MAT skew concentrates edges on low node IDs.
        let g = generate(10, 16, 7);
        let n = g.num_nodes() as u32;
        let low: u32 = (0..n / 4).map(|v| g.degree(v)).sum();
        let high: u32 = (3 * n / 4..n).map(|v| g.degree(v)).sum();
        assert!(low > 3 * high, "low quarter {low} vs high quarter {high}");
    }

    #[test]
    fn validates() {
        generate(9, 8, 11).validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "out of supported range")]
    fn huge_scale_panics() {
        generate(30, 8, 1);
    }
}

//! Kronecker / R-MAT generator (the `kron` / Graph500 class).
//!
//! Graph500's synthetic graphs are stochastic Kronecker graphs: each
//! edge picks its endpoints by descending a 2×2 probability matrix
//! `[[a, b], [c, d]]` for `scale` levels. The result is scale-free
//! with massive hubs and essentially no locality — the hardest case
//! for memory coalescing and the most duplicate-rich for filtering.
//!
//! ## Streaming construction
//!
//! The generator is two-pass: pass 1 runs the R-MAT recurrence over
//! every edge and only counts out-degrees; a prefix sum turns the
//! counts into row offsets; pass 2 re-seeds the identical RNG stream
//! and scatters each destination/weight straight into its final CSR
//! slot, then sorts each row in place. Peak memory is therefore the
//! *output* (row offsets + edges + weights) plus one cursor word per
//! node — the 12-byte-per-edge intermediate triple list the
//! [`GraphBuilder`](crate::builder::GraphBuilder) path would
//! accumulate never exists. That is what makes scale ≥ 22 (millions
//! of nodes, tens of millions of edges — a graph that dwarfs any L2)
//! buildable: ~16 bytes per edge of peak RSS, total, and the output
//! is byte-identical to the builder path (pinned by a test below).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use super::random_weight;
use crate::csr::Csr;

/// Graph500 reference R-MAT parameters.
pub const A: f64 = 0.57;
/// See [`A`].
pub const B: f64 = 0.19;
/// See [`A`].
pub const C: f64 = 0.19;

/// Smallest supported scale (2 nodes).
pub const MIN_SCALE: u32 = 1;
/// Largest supported scale: 2^26 nodes keeps every CSR index inside
/// `u32` at Graph500's edge factor 16 (~1.07 G edges < `u32::MAX`).
pub const MAX_SCALE: u32 = 26;

/// One R-MAT endpoint pair, advancing `rng` by exactly `scale`
/// `f64` draws.
#[inline]
fn rmat_endpoints(rng: &mut StdRng, scale: u32) -> (usize, usize) {
    let (mut u, mut v) = (0usize, 0usize);
    for _ in 0..scale {
        u <<= 1;
        v <<= 1;
        let r: f64 = rng.random();
        if r < A {
            // top-left: no bits set
        } else if r < A + B {
            v |= 1;
        } else if r < A + B + C {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    (u, v)
}

/// Generates a Kronecker graph with `2^scale` nodes and
/// `edge_factor * 2^scale` directed edges (multi-edges kept, as in
/// Graph500's edge lists; self-loops skipped).
pub fn generate(scale: u32, edge_factor: usize, seed: u64) -> Csr {
    assert!(
        (MIN_SCALE..=MAX_SCALE).contains(&scale),
        "scale {scale} out of supported range"
    );
    let n = 1usize << scale;
    // Row-offset prefix sums are u32, so the total edge count must
    // stay below u32::MAX — the same reasoning that caps MAX_SCALE at
    // Graph500's edge factor 16 applies to any caller-supplied factor.
    assert!(
        (edge_factor as u64)
            .checked_mul(n as u64)
            .is_some_and(|m| m < u32::MAX as u64),
        "edge_factor {edge_factor} at scale {scale} overflows u32 edge indices"
    );
    let m = edge_factor * n;

    // Pass 1: count out-degrees. The weight draw must happen exactly
    // when the builder path would draw it (only for non-loops) so the
    // two RNG streams stay aligned draw for draw.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut row_offsets = vec![0u32; n + 1];
    for _ in 0..m {
        let (u, v) = rmat_endpoints(&mut rng, scale);
        if u != v {
            let _ = random_weight(&mut rng);
            row_offsets[u + 1] += 1;
        }
    }
    for i in 1..row_offsets.len() {
        row_offsets[i] += row_offsets[i - 1];
    }
    let kept = row_offsets[n] as usize;

    // Pass 2: regenerate the identical edge stream and scatter each
    // destination/weight into its row's next free slot.
    let mut edges = vec![0u32; kept];
    let mut weights = vec![0u32; kept];
    let mut cursor: Vec<u32> = row_offsets[..n].to_vec();
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..m {
        let (u, v) = rmat_endpoints(&mut rng, scale);
        if u != v {
            let w = random_weight(&mut rng);
            let slot = cursor[u] as usize;
            cursor[u] += 1;
            edges[slot] = v as u32;
            weights[slot] = w;
        }
    }

    // Rows hold edges in generation order; the builder path sorts the
    // whole triple list by (src, dst, weight), which within a row is a
    // (dst, weight) sort. Match it row by row.
    let mut scratch: Vec<(u32, u32)> = Vec::new();
    for win in row_offsets.windows(2) {
        let (lo, hi) = (win[0] as usize, win[1] as usize);
        if hi - lo < 2 {
            continue;
        }
        scratch.clear();
        scratch.extend(
            edges[lo..hi]
                .iter()
                .copied()
                .zip(weights[lo..hi].iter().copied()),
        );
        scratch.sort_unstable();
        for (i, &(d, w)) in scratch.iter().enumerate() {
            edges[lo + i] = d;
            weights[lo + i] = w;
        }
    }

    Csr::new(row_offsets, edges, weights).expect("streamed CSR is valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// The pre-streaming implementation: accumulate triples, sort,
    /// build. Kept as the byte-identity oracle — result bytes across
    /// the whole repo depend on `generate` never drifting from this.
    fn reference(scale: u32, edge_factor: usize, seed: u64) -> Csr {
        let n = 1usize << scale;
        let m = edge_factor * n;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        for _ in 0..m {
            let (u, v) = rmat_endpoints(&mut rng, scale);
            if u != v {
                b.add_edge(u as u32, v as u32, random_weight(&mut rng));
            }
        }
        b.build()
    }

    #[test]
    fn streaming_matches_builder_reference_exactly() {
        for (scale, ef, seed) in [(6, 8, 1), (8, 16, 42), (10, 16, 3), (11, 4, 7)] {
            let fast = generate(scale, ef, seed);
            let slow = reference(scale, ef, seed);
            assert_eq!(
                fast.row_offsets(),
                slow.row_offsets(),
                "offsets diverge at scale {scale} seed {seed}"
            );
            assert_eq!(fast.edges(), slow.edges(), "scale {scale} seed {seed}");
            assert_eq!(fast.weights(), slow.weights(), "scale {scale} seed {seed}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(generate(8, 8, 1), generate(8, 8, 1));
        assert_ne!(generate(8, 8, 1), generate(8, 8, 2));
    }

    #[test]
    fn node_and_edge_counts() {
        let g = generate(10, 16, 3);
        assert_eq!(g.num_nodes(), 1024);
        // Self-loops removed, so slightly under edge_factor * n.
        let m = g.num_edges();
        assert!(m > 15 * 1024 && m <= 16 * 1024, "edges {m}");
    }

    #[test]
    fn hubs_dominate() {
        let g = generate(12, 16, 5);
        assert!(
            g.max_degree() as f64 > 20.0 * g.avg_degree(),
            "max {} avg {}",
            g.max_degree(),
            g.avg_degree()
        );
    }

    #[test]
    fn low_ids_are_heavier() {
        // The R-MAT skew concentrates edges on low node IDs.
        let g = generate(10, 16, 7);
        let n = g.num_nodes() as u32;
        let low: u32 = (0..n / 4).map(|v| g.degree(v)).sum();
        let high: u32 = (3 * n / 4..n).map(|v| g.degree(v)).sum();
        assert!(low > 3 * high, "low quarter {low} vs high quarter {high}");
    }

    #[test]
    fn validates() {
        generate(9, 8, 11).validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "out of supported range")]
    fn huge_scale_panics() {
        generate(30, 8, 1);
    }

    #[test]
    #[should_panic(expected = "overflows u32 edge indices")]
    fn huge_edge_factor_panics() {
        // 64 * 2^26 = 2^32 edges would wrap the u32 prefix sums.
        generate(26, 64, 1);
    }
}

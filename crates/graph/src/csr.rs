//! Compressed Sparse Row graph storage (paper §2, Figure 2b).

use std::fmt;

/// A directed graph in CSR form: `row_offsets[v] .. row_offsets[v+1]`
/// indexes the out-edges of node `v` in `edges` (destinations) and
/// `weights` (edge costs).
///
/// Node IDs and offsets are `u32` — the largest paper dataset
/// (`human`, 24.6 M edges) fits comfortably.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    row_offsets: Vec<u32>,
    edges: Vec<u32>,
    weights: Vec<u32>,
}

/// Error returned by [`Csr::new`] / [`Csr::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidCsr(pub String);

impl fmt::Display for InvalidCsr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid CSR: {}", self.0)
    }
}

impl std::error::Error for InvalidCsr {}

impl Csr {
    /// Builds a CSR graph from raw arrays.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidCsr`] if the offsets are not monotonically
    /// non-decreasing starting at 0 and ending at `edges.len()`, if
    /// `weights.len() != edges.len()`, or if any destination is out of
    /// range.
    pub fn new(
        row_offsets: Vec<u32>,
        edges: Vec<u32>,
        weights: Vec<u32>,
    ) -> Result<Self, InvalidCsr> {
        let g = Csr {
            row_offsets,
            edges,
            weights,
        };
        g.validate()?;
        Ok(g)
    }

    /// Checks the CSR invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), InvalidCsr> {
        if self.row_offsets.is_empty() {
            return Err(InvalidCsr(
                "row_offsets must have at least one entry".into(),
            ));
        }
        if self.row_offsets[0] != 0 {
            return Err(InvalidCsr("row_offsets[0] must be 0".into()));
        }
        if *self.row_offsets.last().expect("nonempty") as usize != self.edges.len() {
            return Err(InvalidCsr(format!(
                "last offset {} != edge count {}",
                self.row_offsets.last().expect("nonempty"),
                self.edges.len()
            )));
        }
        if self.weights.len() != self.edges.len() {
            return Err(InvalidCsr(format!(
                "weights length {} != edges length {}",
                self.weights.len(),
                self.edges.len()
            )));
        }
        for w in self.row_offsets.windows(2) {
            if w[1] < w[0] {
                return Err(InvalidCsr("row_offsets must be non-decreasing".into()));
            }
        }
        let n = self.num_nodes() as u32;
        if let Some(&bad) = self.edges.iter().find(|&&d| d >= n) {
            return Err(InvalidCsr(format!(
                "edge destination {bad} out of range (n={n})"
            )));
        }
        Ok(())
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.row_offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Mean out-degree.
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_nodes() as f64
        }
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: u32) -> u32 {
        self.row_offsets[v as usize + 1] - self.row_offsets[v as usize]
    }

    /// Maximum out-degree over all nodes (0 for an empty graph).
    pub fn max_degree(&self) -> u32 {
        (0..self.num_nodes() as u32)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// The out-neighbour slice of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let lo = self.row_offsets[v as usize] as usize;
        let hi = self.row_offsets[v as usize + 1] as usize;
        &self.edges[lo..hi]
    }

    /// The weights parallel to [`Csr::neighbors`].
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbor_weights(&self, v: u32) -> &[u32] {
        let lo = self.row_offsets[v as usize] as usize;
        let hi = self.row_offsets[v as usize + 1] as usize;
        &self.weights[lo..hi]
    }

    /// The row-offset array (length `num_nodes + 1`).
    pub fn row_offsets(&self) -> &[u32] {
        &self.row_offsets
    }

    /// The edge-destination array.
    pub fn edges(&self) -> &[u32] {
        &self.edges
    }

    /// The edge-weight array (parallel to [`Csr::edges`]).
    pub fn weights(&self) -> &[u32] {
        &self.weights
    }

    /// Iterator over `(src, dst, weight)` triples.
    pub fn iter_edges(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        (0..self.num_nodes() as u32).flat_map(move |v| {
            self.neighbors(v)
                .iter()
                .zip(self.neighbor_weights(v))
                .map(move |(&d, &w)| (v, d, w))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference graph of the paper's Figure 2.
    pub fn figure2() -> Csr {
        // Nodes A..G = 0..6.
        // A->B(2) A->C(3) A->D(1); B->E(1) B->F(1); C->F(2);
        // D->C(1) D->G(2); E,F,G: none.
        Csr::new(
            vec![0, 3, 5, 6, 8, 8, 8, 8],
            vec![1, 2, 3, 4, 5, 5, 2, 6],
            vec![2, 3, 1, 1, 1, 2, 1, 2],
        )
        .expect("figure 2 graph is valid")
    }

    #[test]
    fn figure2_shape() {
        let g = figure2();
        assert_eq!(g.num_nodes(), 7);
        assert_eq!(g.num_edges(), 8);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(4), 0);
        assert_eq!(g.neighbors(3), &[2, 6]);
        assert_eq!(g.neighbor_weights(3), &[1, 2]);
        assert_eq!(g.max_degree(), 3);
        assert!((g.avg_degree() - 8.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn iter_edges_yields_all_triples() {
        let g = figure2();
        let triples: Vec<_> = g.iter_edges().collect();
        assert_eq!(triples.len(), 8);
        assert_eq!(triples[0], (0, 1, 2));
        assert_eq!(triples[7], (3, 6, 2));
    }

    #[test]
    fn rejects_bad_offsets() {
        assert!(Csr::new(vec![], vec![], vec![]).is_err());
        assert!(Csr::new(vec![1, 2], vec![0, 0], vec![1, 1]).is_err());
        assert!(Csr::new(vec![0, 2, 1], vec![0, 0], vec![1, 1]).is_err());
        assert!(Csr::new(vec![0, 1], vec![0, 0], vec![1, 1]).is_err());
    }

    #[test]
    fn rejects_out_of_range_destination() {
        assert!(Csr::new(vec![0, 1], vec![5], vec![1]).is_err());
    }

    #[test]
    fn rejects_weight_mismatch() {
        assert!(Csr::new(vec![0, 1], vec![0], vec![]).is_err());
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = Csr::new(vec![0], vec![], vec![]).unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn display_of_error() {
        let e = Csr::new(vec![0, 1], vec![5], vec![1]).unwrap_err();
        assert!(e.to_string().contains("out of range"));
    }
}

//! Compressed Sparse Row graph storage (paper §2, Figure 2b).

use std::fmt;
use std::sync::Arc;

use scu_store::mmap::Mapped;

/// One CSR array: owned words on the heap, or a borrowed window of a
/// memory-mapped artifact file.
///
/// The mapped variant is what makes graph artifacts zero-copy: a
/// [`Csr`] over a mapped file holds three of these, each an
/// `Arc<Mapped>` plus a byte window, and every read goes straight to
/// the page cache — no materialisation, and the same physical pages
/// are shared by every cell, sweep process and daemon mapping the same
/// artifact. Cloning a mapped array is an `Arc` bump.
#[derive(Debug, Clone)]
pub(crate) enum Words {
    /// Heap-owned words (the in-memory build path).
    Owned(Vec<u32>),
    /// `len` little-endian `u32`s starting `offset` bytes into `map`.
    /// The constructor guarantees the window is in-bounds and 4-byte
    /// aligned on a little-endian host (anything else is copied into
    /// `Owned` instead).
    Mapped {
        map: Arc<Mapped>,
        offset: usize,
        len: usize,
    },
}

impl Words {
    /// The words as a slice, wherever they live.
    #[inline]
    pub(crate) fn as_slice(&self) -> &[u32] {
        match self {
            Words::Owned(v) => v,
            Words::Mapped { map, offset, len } => {
                let bytes = &map[*offset..*offset + *len * 4];
                // SAFETY: the constructor (`Words::mapped`) only
                // produces this variant when the window is 4-aligned
                // and the host is little-endian; the mapping is
                // immutable and outlives `self` via the Arc.
                unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<u32>(), *len) }
            }
        }
    }

    /// Wraps a window of `map` zero-copy when the platform allows it
    /// (little-endian, 4-byte aligned), else decodes a heap copy —
    /// identical contents either way.
    ///
    /// # Panics
    ///
    /// Panics if the window is out of bounds of `map`; callers bound
    /// it first (the artifact loader validates section offsets before
    /// constructing). The window end is computed with checked
    /// arithmetic so an absurd `len` can never wrap to a small
    /// in-bounds window — it panics here instead of handing
    /// `as_slice` an unsound length.
    pub(crate) fn mapped(map: &Arc<Mapped>, offset: usize, len: usize) -> Words {
        let end = len
            .checked_mul(4)
            .and_then(|b| offset.checked_add(b))
            .filter(|&e| e <= map.len())
            .expect("Words::mapped window out of bounds");
        let bytes = &map[offset..end];
        if cfg!(target_endian = "little") && bytes.as_ptr().align_offset(4) == 0 {
            return Words::Mapped {
                map: Arc::clone(map),
                offset,
                len,
            };
        }
        Words::Owned(
            bytes
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect(),
        )
    }

    /// Whether this array reads from a mapped file (for stats; owned
    /// fallbacks report `false`).
    pub(crate) fn is_mapped(&self) -> bool {
        matches!(self, Words::Mapped { .. })
    }
}

impl std::ops::Deref for Words {
    type Target = [u32];

    fn deref(&self) -> &[u32] {
        self.as_slice()
    }
}

/// A directed graph in CSR form: `row_offsets[v] .. row_offsets[v+1]`
/// indexes the out-edges of node `v` in `edges` (destinations) and
/// `weights` (edge costs).
///
/// Node IDs and offsets are `u32` — the largest supported graphs
/// (Kronecker scale 26, ~1 G edges) still fit.
///
/// Storage is borrowed-or-owned ([`Words`]): graphs built in memory
/// own their arrays; graphs served from the artifact store read them
/// straight out of a memory-mapped file. The API is identical — every
/// accessor hands out `&[u32]` — and so is equality: two graphs with
/// the same arrays compare equal regardless of where the bytes live.
#[derive(Debug, Clone)]
pub struct Csr {
    row_offsets: Words,
    edges: Words,
    weights: Words,
}

impl PartialEq for Csr {
    fn eq(&self, other: &Self) -> bool {
        self.row_offsets.as_slice() == other.row_offsets.as_slice()
            && self.edges.as_slice() == other.edges.as_slice()
            && self.weights.as_slice() == other.weights.as_slice()
    }
}

impl Eq for Csr {}

/// Error returned by [`Csr::new`] / [`Csr::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidCsr(pub String);

impl fmt::Display for InvalidCsr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid CSR: {}", self.0)
    }
}

impl std::error::Error for InvalidCsr {}

impl Csr {
    /// Builds a CSR graph from raw arrays.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidCsr`] if the offsets are not monotonically
    /// non-decreasing starting at 0 and ending at `edges.len()`, if
    /// `weights.len() != edges.len()`, or if any destination is out of
    /// range.
    pub fn new(
        row_offsets: Vec<u32>,
        edges: Vec<u32>,
        weights: Vec<u32>,
    ) -> Result<Self, InvalidCsr> {
        let g = Csr {
            row_offsets: Words::Owned(row_offsets),
            edges: Words::Owned(edges),
            weights: Words::Owned(weights),
        };
        g.validate()?;
        Ok(g)
    }

    /// Assembles a CSR over already-validated storage without the
    /// O(nodes + edges) scan — the artifact loader's entry point,
    /// where a matching content digest already vouches for the deep
    /// invariants. Only the cheap shape checks run here.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidCsr`] on the shape violations that are free to
    /// detect: empty offsets, a nonzero first offset, or length
    /// mismatches between the arrays.
    pub(crate) fn from_trusted_words(
        row_offsets: Words,
        edges: Words,
        weights: Words,
    ) -> Result<Self, InvalidCsr> {
        if row_offsets.is_empty() {
            return Err(InvalidCsr(
                "row_offsets must have at least one entry".into(),
            ));
        }
        if row_offsets[0] != 0 {
            return Err(InvalidCsr("row_offsets[0] must be 0".into()));
        }
        if *row_offsets.last().expect("nonempty") as usize != edges.len() {
            return Err(InvalidCsr(format!(
                "last offset {} != edge count {}",
                row_offsets.last().expect("nonempty"),
                edges.len()
            )));
        }
        if weights.len() != edges.len() {
            return Err(InvalidCsr(format!(
                "weights length {} != edges length {}",
                weights.len(),
                edges.len()
            )));
        }
        Ok(Csr {
            row_offsets,
            edges,
            weights,
        })
    }

    /// Whether all three arrays read from a memory-mapped artifact
    /// (zero-copy) rather than the heap.
    pub fn is_mapped(&self) -> bool {
        self.row_offsets.is_mapped() && self.edges.is_mapped() && self.weights.is_mapped()
    }

    /// Checks the CSR invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), InvalidCsr> {
        if self.row_offsets.is_empty() {
            return Err(InvalidCsr(
                "row_offsets must have at least one entry".into(),
            ));
        }
        if self.row_offsets[0] != 0 {
            return Err(InvalidCsr("row_offsets[0] must be 0".into()));
        }
        if *self.row_offsets.last().expect("nonempty") as usize != self.edges.len() {
            return Err(InvalidCsr(format!(
                "last offset {} != edge count {}",
                self.row_offsets.last().expect("nonempty"),
                self.edges.len()
            )));
        }
        if self.weights.len() != self.edges.len() {
            return Err(InvalidCsr(format!(
                "weights length {} != edges length {}",
                self.weights.len(),
                self.edges.len()
            )));
        }
        for w in self.row_offsets.windows(2) {
            if w[1] < w[0] {
                return Err(InvalidCsr("row_offsets must be non-decreasing".into()));
            }
        }
        let n = self.num_nodes() as u32;
        if let Some(&bad) = self.edges.iter().find(|&&d| d >= n) {
            return Err(InvalidCsr(format!(
                "edge destination {bad} out of range (n={n})"
            )));
        }
        Ok(())
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.row_offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Mean out-degree.
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_nodes() as f64
        }
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: u32) -> u32 {
        self.row_offsets[v as usize + 1] - self.row_offsets[v as usize]
    }

    /// Maximum out-degree over all nodes (0 for an empty graph).
    pub fn max_degree(&self) -> u32 {
        (0..self.num_nodes() as u32)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// The out-neighbour slice of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let lo = self.row_offsets[v as usize] as usize;
        let hi = self.row_offsets[v as usize + 1] as usize;
        &self.edges[lo..hi]
    }

    /// The weights parallel to [`Csr::neighbors`].
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbor_weights(&self, v: u32) -> &[u32] {
        let lo = self.row_offsets[v as usize] as usize;
        let hi = self.row_offsets[v as usize + 1] as usize;
        &self.weights[lo..hi]
    }

    /// The row-offset array (length `num_nodes + 1`).
    pub fn row_offsets(&self) -> &[u32] {
        &self.row_offsets
    }

    /// The edge-destination array.
    pub fn edges(&self) -> &[u32] {
        &self.edges
    }

    /// The edge-weight array (parallel to [`Csr::edges`]).
    pub fn weights(&self) -> &[u32] {
        &self.weights
    }

    /// Iterator over `(src, dst, weight)` triples.
    pub fn iter_edges(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        (0..self.num_nodes() as u32).flat_map(move |v| {
            self.neighbors(v)
                .iter()
                .zip(self.neighbor_weights(v))
                .map(move |(&d, &w)| (v, d, w))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference graph of the paper's Figure 2.
    pub fn figure2() -> Csr {
        // Nodes A..G = 0..6.
        // A->B(2) A->C(3) A->D(1); B->E(1) B->F(1); C->F(2);
        // D->C(1) D->G(2); E,F,G: none.
        Csr::new(
            vec![0, 3, 5, 6, 8, 8, 8, 8],
            vec![1, 2, 3, 4, 5, 5, 2, 6],
            vec![2, 3, 1, 1, 1, 2, 1, 2],
        )
        .expect("figure 2 graph is valid")
    }

    #[test]
    fn figure2_shape() {
        let g = figure2();
        assert_eq!(g.num_nodes(), 7);
        assert_eq!(g.num_edges(), 8);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(4), 0);
        assert_eq!(g.neighbors(3), &[2, 6]);
        assert_eq!(g.neighbor_weights(3), &[1, 2]);
        assert_eq!(g.max_degree(), 3);
        assert!((g.avg_degree() - 8.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn iter_edges_yields_all_triples() {
        let g = figure2();
        let triples: Vec<_> = g.iter_edges().collect();
        assert_eq!(triples.len(), 8);
        assert_eq!(triples[0], (0, 1, 2));
        assert_eq!(triples[7], (3, 6, 2));
    }

    #[test]
    fn rejects_bad_offsets() {
        assert!(Csr::new(vec![], vec![], vec![]).is_err());
        assert!(Csr::new(vec![1, 2], vec![0, 0], vec![1, 1]).is_err());
        assert!(Csr::new(vec![0, 2, 1], vec![0, 0], vec![1, 1]).is_err());
        assert!(Csr::new(vec![0, 1], vec![0, 0], vec![1, 1]).is_err());
    }

    #[test]
    fn rejects_out_of_range_destination() {
        assert!(Csr::new(vec![0, 1], vec![5], vec![1]).is_err());
    }

    #[test]
    fn rejects_weight_mismatch() {
        assert!(Csr::new(vec![0, 1], vec![0], vec![]).is_err());
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = Csr::new(vec![0], vec![], vec![]).unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn display_of_error() {
        let e = Csr::new(vec![0, 1], vec![5], vec![1]).unwrap_err();
        assert!(e.to_string().contains("out of range"));
    }

    #[test]
    fn mapped_words_read_identically_to_owned() {
        // Little-endian bytes of [0, 3, 7] with a 4-aligned window.
        let bytes: Vec<u8> = [0u32, 3, 7].iter().flat_map(|w| w.to_le_bytes()).collect();
        let map = Arc::new(Mapped::from_bytes(bytes));
        let words = Words::mapped(&map, 0, 3);
        assert_eq!(&*words, &[0, 3, 7]);
        // An unaligned window degrades to an owned decode with the
        // same contents.
        let mut shifted = vec![0u8];
        shifted.extend([9u32, 11].iter().flat_map(|w| w.to_le_bytes()));
        let map = Arc::new(Mapped::from_bytes(shifted));
        let words = Words::mapped(&map, 1, 2);
        assert!(!words.is_mapped() || cfg!(not(target_endian = "little")));
        assert_eq!(&*words, &[9, 11]);
    }

    #[test]
    fn owned_and_mapped_graphs_compare_equal() {
        let g = figure2();
        let pack = |ws: &[u32]| -> Vec<u8> { ws.iter().flat_map(|w| w.to_le_bytes()).collect() };
        let mut bytes = pack(g.row_offsets());
        let edges_off = bytes.len();
        bytes.extend(pack(g.edges()));
        let weights_off = bytes.len();
        bytes.extend(pack(g.weights()));
        let map = Arc::new(Mapped::from_bytes(bytes));
        let mapped = Csr::from_trusted_words(
            Words::mapped(&map, 0, g.row_offsets().len()),
            Words::mapped(&map, edges_off, g.num_edges()),
            Words::mapped(&map, weights_off, g.num_edges()),
        )
        .unwrap();
        assert_eq!(mapped, g);
        assert_eq!(mapped.neighbors(3), g.neighbors(3));
        assert!(mapped.validate().is_ok());
        // And a cheap clone still reads the same mapping.
        let clone = mapped.clone();
        assert_eq!(clone, g);
    }

    #[test]
    fn trusted_constructor_still_rejects_cheap_shape_violations() {
        let ws = |v: Vec<u32>| Words::Owned(v);
        assert!(Csr::from_trusted_words(ws(vec![]), ws(vec![]), ws(vec![])).is_err());
        assert!(Csr::from_trusted_words(ws(vec![1]), ws(vec![]), ws(vec![])).is_err());
        assert!(Csr::from_trusted_words(ws(vec![0, 2]), ws(vec![0]), ws(vec![0])).is_err());
        assert!(Csr::from_trusted_words(ws(vec![0, 1]), ws(vec![0]), ws(vec![])).is_err());
    }
}

//! The graph artifact store: build-once, mmap-everywhere CSR files.
//!
//! Re-generating a synthetic graph is the single largest fixed cost a
//! sweep pays — every process rebuilt every `(dataset, scale, seed)`
//! from scratch, because the in-process memo dies with the process.
//! This module makes a built CSR durable: the three arrays are written
//! once into a checksummed artifact file and every later consumer —
//! other cells, other sweep processes, the daemon after a restart —
//! maps the same file read-only and reads the arrays straight from the
//! page cache. Zero copies, and the physical pages are shared.
//!
//! ## File format (`SCUCSR01`)
//!
//! ```text
//! offset 0   8 bytes   magic "SCUCSR01"
//! offset 8   4 bytes   key length (u32 LE)
//! offset 12  …         key string (see [`artifact_key`]) + zero pad
//! 64-aligned 64 bytes  header: 8 × u64 LE
//!                        num_nodes, num_edges,
//!                        row_offsets (byte offset, word count),
//!                        edges       (byte offset, word count),
//!                        weights     (byte offset, word count)
//! 64-aligned …         row_offsets words (u32 LE)
//! 64-aligned …         edges words       (u32 LE)
//! 64-aligned …         weights words     (u32 LE)
//! tail       8 bytes   FNV-1a-64 of every preceding byte (u64 LE)
//! ```
//!
//! The key string embeds [`CSR_FORMAT_VERSION`], so a format or
//! generator change invalidates old artifacts by mismatch, not by
//! accident. Sections are 64-byte aligned; an mmap base is
//! page-aligned, so every section is 4-byte aligned and the `u32`
//! views are zero-copy casts (misaligned or big-endian hosts degrade
//! to a heap decode with identical contents — see `csr::Words`).
//!
//! ## Discipline (mirrors the PR-8 store / PR-9 trace cache)
//!
//! - publish is atomic: temp file + rename, so readers see an old
//!   artifact or a complete new one, never a torn write;
//! - every load verifies magic, key and the trailing digest before any
//!   word is trusted; anything that fails is quarantined (bounded,
//!   oldest-evicted) and rebuilt transparently — corruption can slow a
//!   sweep down, never change its bytes or kill it;
//! - artifacts are keyed *outside* `cache_key`: a hit hands back the
//!   exact arrays the in-memory build would produce, so result bytes
//!   cannot depend on whether the store is enabled.
//!
//! Like the trace cache, the store is an install slot: library code
//! never touches the filesystem unless a binary mounts a store
//! ([`install`]), and the fault-injection seam is a function-pointer
//! hook ([`install_io_hook`]) the harness layer fills in, because the
//! dependency arrow points the other way.

use std::cell::RefCell;
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use scu_store::mmap::Mapped;
use scu_store::quarantine;

use crate::csr::{Csr, Words};
use crate::datasets::Dataset;

/// Version string embedded in every artifact key. Bump when the file
/// format *or* any generator's output bytes change — old artifacts
/// then miss on key mismatch and are quarantined + rebuilt instead of
/// serving stale arrays.
pub const CSR_FORMAT_VERSION: &str = "scu-csr-1";

/// Artifact file magic.
pub const MAGIC: &[u8; 8] = b"SCUCSR01";

/// Default artifact directory, relative to the results root binaries
/// already use.
pub const DEFAULT_SUBDIR: &str = "graphs";

const HEADER_WORDS: usize = 8;
const DIGEST_LEN: usize = 8;

/// The full identity of an artifact: format version, dataset, exact
/// scale bits, seed. Two processes agree on the key iff they would
/// build bit-identical graphs.
pub fn artifact_key(dataset: Dataset, scale: f64, seed: u64) -> String {
    format!(
        "{CSR_FORMAT_VERSION}|{dataset}|scale={:016x}|seed={seed}",
        scale.to_bits()
    )
}

/// The artifact's file name inside the store directory (readable, and
/// in bijection with the key).
pub fn artifact_file_name(dataset: Dataset, scale: f64, seed: u64) -> String {
    format!("{dataset}-{:016x}-{seed}.csr", scale.to_bits())
}

/// How [`GraphStore::load_or_build`] satisfied a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactDisposition {
    /// Served zero-copy from an existing, digest-verified artifact.
    Hit,
    /// No artifact existed; built in memory and published.
    Built,
    /// An artifact existed but failed verification; it was quarantined
    /// and the graph was rebuilt and republished.
    Rebuilt,
}

impl ArtifactDisposition {
    /// Lower-case label for profiles and logs.
    pub fn label(self) -> &'static str {
        match self {
            ArtifactDisposition::Hit => "hit",
            ArtifactDisposition::Built => "built",
            ArtifactDisposition::Rebuilt => "rebuilt",
        }
    }
}

/// What one `load_or_build` did, for `run_one --profile`.
#[derive(Debug, Clone)]
pub struct GraphArtifactOutcome {
    /// The artifact key requested.
    pub key: String,
    /// Hit / built / rebuilt.
    pub disposition: ArtifactDisposition,
    /// Bytes served via mmap (0 when the graph was built in memory).
    pub bytes_mapped: u64,
    /// Wall time spent generating the graph (zero on a hit).
    pub build_wall: Duration,
}

/// Process-wide counters, mirrored into `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GraphArtifactStats {
    /// Digest-verified artifact loads.
    pub hits: u64,
    /// Requests that found no usable artifact (absent or corrupt).
    pub misses: u64,
    /// Graphs built in memory (each is also published best-effort).
    pub builds: u64,
    /// Corrupt artifact files quarantined.
    pub quarantined: u64,
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static BUILDS: AtomicU64 = AtomicU64::new(0);
static QUARANTINED: AtomicU64 = AtomicU64::new(0);

/// Current process-wide counters.
pub fn stats() -> GraphArtifactStats {
    GraphArtifactStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        builds: BUILDS.load(Ordering::Relaxed),
        quarantined: QUARANTINED.load(Ordering::Relaxed),
    }
}

thread_local! {
    static LAST: RefCell<Option<GraphArtifactOutcome>> = const { RefCell::new(None) };
}

/// Most recent outcome recorded by *any* thread (the memo serves later
/// requests without touching the store, so "last" here means the last
/// time a graph actually went through the artifact path).
static LAST_GLOBAL: Mutex<Option<GraphArtifactOutcome>> = Mutex::new(None);

/// The outcome of the most recent artifact request on this thread,
/// falling back to the most recent anywhere in the process (a profile
/// reader on the main thread usually wants the worker's outcome).
pub fn last_outcome() -> Option<GraphArtifactOutcome> {
    LAST.with(|l| l.borrow().clone()).or_else(|| {
        LAST_GLOBAL
            .lock()
            .expect("graph artifact outcome lock poisoned")
            .clone()
    })
}

fn record_outcome(outcome: &GraphArtifactOutcome) {
    LAST.with(|l| *l.borrow_mut() = Some(outcome.clone()));
    *LAST_GLOBAL
        .lock()
        .expect("graph artifact outcome lock poisoned") = Some(outcome.clone());
}

/// IO fault hook, installed by the layer that owns fault injection
/// (`scu-algos` wires it to the harness failpoint registry; `scu-graph`
/// cannot depend on `scu-harness`). Sites: `graph-artifact-load`,
/// `graph-artifact-store`.
pub type IoHook = fn(&str) -> io::Result<()>;

static HOOK: OnceLock<IoHook> = OnceLock::new();

/// Installs the fault hook. First caller wins; later calls are no-ops
/// (one process has one fault-injection registry).
pub fn install_io_hook(hook: IoHook) {
    let _ = HOOK.set(hook);
}

fn hook_io(site: &str) -> io::Result<()> {
    match HOOK.get() {
        Some(h) => h(site),
        None => Ok(()),
    }
}

/// The process-wide store slot. Library code consults it via
/// [`active`]; binaries mount a store at startup ([`install`]).
static STORE: Mutex<Option<Arc<GraphStore>>> = Mutex::new(None);

/// Mounts (`Some`) or unmounts (`None`) the process-wide store.
pub fn install(store: Option<Arc<GraphStore>>) {
    *STORE.lock().expect("graph store slot poisoned") = store;
}

/// The currently mounted store, if any.
pub fn active() -> Option<Arc<GraphStore>> {
    STORE.lock().expect("graph store slot poisoned").clone()
}

/// Incremental FNV-1a-64 over the bytes as they stream out, so
/// publishing never needs the whole file in memory. Must match
/// `scu_store::hash::fnv64` (pinned by a test below).
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Fnv64 {
        Fnv64(0xcbf29ce484222325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
}

fn align64(n: usize) -> usize {
    n.div_ceil(64) * 64
}

/// `align64` without the wrap: `None` when rounding up overflows.
fn align64_checked(n: usize) -> Option<usize> {
    n.checked_add(63).map(|v| v / 64 * 64)
}

enum LoadFailure {
    /// The file does not exist — a plain miss.
    Absent,
    /// The file (or the injected fault) could not be read; the bytes
    /// on disk may be fine, so no quarantine.
    Io(io::Error),
    /// The file exists but fails verification; quarantine it.
    Corrupt(String),
}

/// A directory of mmap'd CSR artifacts.
#[derive(Debug)]
pub struct GraphStore {
    dir: PathBuf,
    quarantine_cap: usize,
}

impl GraphStore {
    /// Opens (lazily — no IO until first use) a store rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> GraphStore {
        GraphStore {
            dir: dir.into(),
            quarantine_cap: quarantine::DEFAULT_QUARANTINE_CAP,
        }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Where corrupt artifacts are kept for post-mortem.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join("quarantine")
    }

    /// Serves the graph for `(dataset, scale, seed)`: zero-copy from a
    /// verified artifact when one exists, else by calling `build` and
    /// publishing the result for every later process. Corrupt
    /// artifacts are quarantined and rebuilt transparently — the only
    /// observable difference is time.
    ///
    /// # Errors
    ///
    /// Returns an error only when `build` itself fails (e.g. an
    /// out-of-range scale); store IO failures degrade to building.
    pub fn load_or_build(
        &self,
        dataset: Dataset,
        scale: f64,
        seed: u64,
        build: impl FnOnce() -> Result<Csr, String>,
    ) -> Result<Csr, String> {
        let key = artifact_key(dataset, scale, seed);
        let path = self.dir.join(artifact_file_name(dataset, scale, seed));
        let mut rebuilt = false;
        match self.try_load(&path, &key) {
            Ok((g, bytes_mapped)) => {
                HITS.fetch_add(1, Ordering::Relaxed);
                record_outcome(&GraphArtifactOutcome {
                    key,
                    disposition: ArtifactDisposition::Hit,
                    bytes_mapped,
                    build_wall: Duration::ZERO,
                });
                return Ok(g);
            }
            Err(LoadFailure::Absent) => {}
            Err(LoadFailure::Io(e)) => {
                // Transient or injected; the artifact may be intact, so
                // leave it in place and just build this time.
                eprintln!("[scu-graph] artifact load failed for {key}: {e}; building in memory");
            }
            Err(LoadFailure::Corrupt(reason)) => {
                QUARANTINED.fetch_add(1, Ordering::Relaxed);
                rebuilt = true;
                match quarantine::quarantine_move(&self.quarantine_dir(), &path, self.quarantine_cap)
                {
                    Ok(dest) => eprintln!(
                        "[scu-graph] quarantined corrupt artifact {} -> {} ({reason}); rebuilding",
                        path.display(),
                        dest.display()
                    ),
                    Err(e) => eprintln!(
                        "[scu-graph] corrupt artifact {} ({reason}); quarantine failed: {e}; rebuilding",
                        path.display()
                    ),
                }
            }
        }
        MISSES.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        let g = build()?;
        let build_wall = start.elapsed();
        BUILDS.fetch_add(1, Ordering::Relaxed);
        if let Err(e) = self.publish(&path, &key, &g) {
            eprintln!("[scu-graph] artifact publish failed for {key}: {e}; continuing unpublished");
        }
        record_outcome(&GraphArtifactOutcome {
            key,
            disposition: if rebuilt {
                ArtifactDisposition::Rebuilt
            } else {
                ArtifactDisposition::Built
            },
            bytes_mapped: 0,
            build_wall,
        });
        Ok(g)
    }

    fn try_load(&self, path: &Path, expected_key: &str) -> Result<(Csr, u64), LoadFailure> {
        hook_io("graph-artifact-load").map_err(LoadFailure::Io)?;
        let mut file = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(LoadFailure::Absent),
            Err(e) => return Err(LoadFailure::Io(e)),
        };
        let map = Arc::new(Mapped::of_file(&mut file).map_err(LoadFailure::Io)?);
        let bytes_mapped = map.len() as u64;
        let g = decode_artifact(&map, expected_key).map_err(LoadFailure::Corrupt)?;
        Ok((g, bytes_mapped))
    }

    /// Atomically publishes `g` under `path`: stream to a temp file in
    /// the same directory, then rename. Memory overhead is one small
    /// conversion buffer regardless of graph size.
    fn publish(&self, path: &Path, key: &str, g: &Csr) -> io::Result<()> {
        hook_io("graph-artifact-store")?;
        std::fs::create_dir_all(&self.dir)?;
        // Unique per publish, not just per process: `shared_graph`
        // deliberately builds outside its memo lock, so two threads
        // missing on the same key can publish concurrently — each must
        // stream into its own temp file or the renames race over a
        // torn interleaving.
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = path.with_extension(format!(
            "tmp{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let result = (|| -> io::Result<()> {
            let file = File::create(&tmp)?;
            let mut w = DigestWriter {
                inner: BufWriter::new(file),
                digest: Fnv64::new(),
                written: 0,
            };
            write_artifact(&mut w, key, g)?;
            let digest = w.digest.0;
            w.inner.write_all(&digest.to_le_bytes())?;
            w.inner.flush()?;
            w.inner.get_ref().sync_all()?;
            Ok(())
        })();
        match result {
            Ok(()) => std::fs::rename(&tmp, path),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }
}

struct DigestWriter {
    inner: BufWriter<File>,
    digest: Fnv64,
    written: usize,
}

impl DigestWriter {
    fn put(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.digest.update(bytes);
        self.written += bytes.len();
        self.inner.write_all(bytes)
    }

    fn pad_to(&mut self, offset: usize) -> io::Result<()> {
        debug_assert!(offset >= self.written);
        const ZEROS: [u8; 64] = [0; 64];
        let mut gap = offset - self.written;
        while gap > 0 {
            let n = gap.min(ZEROS.len());
            self.put(&ZEROS[..n])?;
            gap -= n;
        }
        Ok(())
    }

    fn put_words(&mut self, words: &[u32]) -> io::Result<()> {
        // Convert in bounded chunks so a 500 MB section never needs a
        // 500 MB staging buffer.
        let mut buf = [0u8; 16 * 1024];
        for chunk in words.chunks(buf.len() / 4) {
            for (i, w) in chunk.iter().enumerate() {
                buf[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
            }
            self.put(&buf[..chunk.len() * 4])?;
        }
        Ok(())
    }
}

/// The byte layout described in the module docs, minus the trailing
/// digest (the caller appends it — publishing streams it incrementally,
/// tests compute it over the buffer).
fn write_artifact(w: &mut DigestWriter, key: &str, g: &Csr) -> io::Result<()> {
    let layout = Layout::of(key.len(), g.num_nodes(), g.num_edges());
    w.put(MAGIC)?;
    w.put(&(key.len() as u32).to_le_bytes())?;
    w.put(key.as_bytes())?;
    w.pad_to(layout.header)?;
    for v in [
        g.num_nodes() as u64,
        g.num_edges() as u64,
        layout.row_offsets as u64,
        (g.num_nodes() + 1) as u64,
        layout.edges as u64,
        g.num_edges() as u64,
        layout.weights as u64,
        g.num_edges() as u64,
    ] {
        w.put(&v.to_le_bytes())?;
    }
    w.pad_to(layout.row_offsets)?;
    w.put_words(g.row_offsets())?;
    w.pad_to(layout.edges)?;
    w.put_words(g.edges())?;
    w.pad_to(layout.weights)?;
    w.put_words(g.weights())?;
    Ok(())
}

/// Section byte offsets for a graph of the given shape.
struct Layout {
    header: usize,
    row_offsets: usize,
    edges: usize,
    weights: usize,
    total_with_digest: usize,
}

impl Layout {
    /// Layout for a graph we built ourselves: counts come from real
    /// in-memory vectors, so the arithmetic cannot overflow.
    fn of(key_len: usize, num_nodes: usize, num_edges: usize) -> Layout {
        Layout::checked_of(key_len, num_nodes, num_edges)
            .expect("layout arithmetic overflows for an in-memory graph")
    }

    /// Layout from *untrusted* header counts. Every multiply and add
    /// is checked; `None` means the counts are absurd (the decoder
    /// maps it to `Corrupt`). This is load-bearing for the "adversarial
    /// files error instead of panicking" property: the digest is
    /// unkeyed FNV-1a, so a forged file can carry a valid digest over
    /// huge counts, and wrapped offsets must not reach `Words::mapped`.
    fn checked_of(key_len: usize, num_nodes: usize, num_edges: usize) -> Option<Layout> {
        let node_words = num_nodes.checked_add(1)?;
        let header = align64_checked(MAGIC.len().checked_add(4)?.checked_add(key_len)?)?;
        let row_offsets = header.checked_add(HEADER_WORDS * 8)?;
        let edges = align64_checked(row_offsets.checked_add(node_words.checked_mul(4)?)?)?;
        let edge_bytes = num_edges.checked_mul(4)?;
        let weights = align64_checked(edges.checked_add(edge_bytes)?)?;
        Some(Layout {
            header,
            row_offsets,
            edges,
            weights,
            total_with_digest: weights.checked_add(edge_bytes)?.checked_add(DIGEST_LEN)?,
        })
    }
}

/// Verifies and decodes an artifact image into a zero-copy [`Csr`].
/// Every failure mode — truncation, bit flips anywhere, a foreign or
/// stale key — is a clean `Err`, never a panic: the digest covers the
/// whole file, and the header fields are bounds-checked before any
/// slice is taken.
///
/// # Errors
///
/// Returns a human-readable reason; callers quarantine and rebuild.
pub fn decode_artifact(map: &Arc<Mapped>, expected_key: &str) -> Result<Csr, String> {
    let bytes: &[u8] = map;
    if bytes.len() < MAGIC.len() + 4 + DIGEST_LEN {
        return Err(format!("file too short ({} bytes)", bytes.len()));
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err("bad magic".into());
    }
    let body = &bytes[..bytes.len() - DIGEST_LEN];
    let stored = u64::from_le_bytes(
        bytes[bytes.len() - DIGEST_LEN..]
            .try_into()
            .expect("digest is 8 bytes"),
    );
    if scu_store::hash::fnv64(body) != stored {
        return Err("digest mismatch".into());
    }
    let key_len = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
    let key = body
        .get(12..12 + key_len)
        .ok_or_else(|| "key extends past file".to_string())?;
    if key != expected_key.as_bytes() {
        return Err(format!(
            "key mismatch: file has {:?}, wanted {expected_key:?}",
            String::from_utf8_lossy(key)
        ));
    }
    let header = align64(12 + key_len);
    let h = body
        .get(header..header + HEADER_WORDS * 8)
        .ok_or_else(|| "header extends past file".to_string())?;
    let word = |i: usize| u64::from_le_bytes(h[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
    // The digest is unkeyed FNV-1a, so a forged file can pair valid
    // checksums with absurd counts: bound them (CSR indices are u32,
    // so any real graph fits) and do the layout arithmetic checked —
    // overflow is corruption, not a panic.
    let num_nodes = word(0);
    let num_edges = word(1);
    if num_nodes >= u64::from(u32::MAX) || num_edges >= u64::from(u32::MAX) {
        return Err(format!(
            "header counts out of range (nodes {num_nodes}, edges {num_edges})"
        ));
    }
    let (num_nodes, num_edges) = (num_nodes as usize, num_edges as usize);
    let layout = Layout::checked_of(key_len, num_nodes, num_edges)
        .ok_or_else(|| "layout arithmetic overflows".to_string())?;
    if layout.total_with_digest != bytes.len() {
        return Err(format!(
            "size mismatch: layout wants {} bytes, file has {}",
            layout.total_with_digest,
            bytes.len()
        ));
    }
    let expect = [
        (
            word(2) as usize,
            word(3) as usize,
            layout.row_offsets,
            num_nodes + 1,
        ),
        (word(4) as usize, word(5) as usize, layout.edges, num_edges),
        (
            word(6) as usize,
            word(7) as usize,
            layout.weights,
            num_edges,
        ),
    ];
    for (got_off, got_len, want_off, want_len) in expect {
        if got_off != want_off || got_len != want_len {
            return Err("header section table disagrees with layout".into());
        }
    }
    let csr = Csr::from_trusted_words(
        Words::mapped(map, layout.row_offsets, num_nodes + 1),
        Words::mapped(map, layout.edges, num_edges),
        Words::mapped(map, layout.weights, num_edges),
    )
    .map_err(|e| e.to_string())?;
    Ok(csr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("scu-graph-artifact-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> Csr {
        from_edges([(0, 2, 5), (2, 1, 1), (1, 0, 3), (0, 1, 9)])
    }

    #[test]
    fn incremental_fnv_matches_store_fnv64() {
        let payload = b"the digests must agree or every artifact is corrupt".repeat(7);
        let mut f = Fnv64::new();
        f.update(&payload[..13]);
        f.update(&payload[13..]);
        assert_eq!(f.0, scu_store::hash::fnv64(&payload));
    }

    #[test]
    fn round_trip_through_file_is_byte_identical() {
        let dir = scratch("round");
        let store = GraphStore::new(&dir);
        let built = store
            .load_or_build(Dataset::Cond, 0.25, 9, || Ok(sample()))
            .unwrap();
        assert_eq!(built, sample());
        assert!(!built.is_mapped(), "first call builds in memory");
        // Second store instance (fresh process stand-in) maps the file.
        let store2 = GraphStore::new(&dir);
        let loaded = store2
            .load_or_build(Dataset::Cond, 0.25, 9, || {
                panic!("must not rebuild on a warm artifact")
            })
            .unwrap();
        assert_eq!(loaded, sample());
        assert!(loaded.is_mapped() || cfg!(not(target_endian = "little")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_artifact_is_quarantined_and_rebuilt() {
        let dir = scratch("corrupt");
        let store = GraphStore::new(&dir);
        store
            .load_or_build(Dataset::Kron, 0.5, 3, || Ok(sample()))
            .unwrap();
        let path = dir.join(artifact_file_name(Dataset::Kron, 0.5, 3));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let before = stats();
        let g = store
            .load_or_build(Dataset::Kron, 0.5, 3, || Ok(sample()))
            .unwrap();
        assert_eq!(g, sample());
        let after = stats();
        assert_eq!(after.quarantined, before.quarantined + 1);
        assert_eq!(quarantine::retained(&store.quarantine_dir()), 1);
        assert_eq!(
            last_outcome().unwrap().disposition,
            ArtifactDisposition::Rebuilt
        );
        // The rebuild republished a good artifact.
        let again = store
            .load_or_build(Dataset::Kron, 0.5, 3, || panic!("republished, no rebuild"))
            .unwrap();
        assert_eq!(again, sample());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Rewrites the header's node/edge counts and re-stamps a *valid*
    /// trailing digest — the forgery the fuzz suite cannot reach,
    /// because random corruption always breaks the digest first.
    fn forge_counts(path: &Path, num_nodes: u64, num_edges: u64) -> Vec<u8> {
        let mut bytes = std::fs::read(path).unwrap();
        let key_len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
        let header = align64(12 + key_len);
        bytes[header..header + 8].copy_from_slice(&num_nodes.to_le_bytes());
        bytes[header + 8..header + 16].copy_from_slice(&num_edges.to_le_bytes());
        let digest_at = bytes.len() - DIGEST_LEN;
        let digest = scu_store::hash::fnv64(&bytes[..digest_at]);
        bytes[digest_at..].copy_from_slice(&digest.to_le_bytes());
        bytes
    }

    #[test]
    fn forged_counts_with_valid_digest_error_cleanly() {
        let dir = scratch("forge");
        let store = GraphStore::new(&dir);
        store
            .load_or_build(Dataset::Kron, 0.5, 8, || Ok(sample()))
            .unwrap();
        let path = dir.join(artifact_file_name(Dataset::Kron, 0.5, 8));
        let key = artifact_key(Dataset::Kron, 0.5, 8);
        for (nodes, edges) in [
            (u64::MAX, 4),                // (num_nodes + 1) * 4 would wrap
            (3, u64::MAX),                // num_edges * 4 would wrap
            (u64::MAX / 4, u64::MAX / 4), // section sums would wrap
            (u64::from(u32::MAX), 4),     // just past the u32 index bound
            (3, u64::from(u32::MAX)),
        ] {
            let forged = forge_counts(&path, nodes, edges);
            let map = Arc::new(Mapped::from_bytes(forged));
            let err = decode_artifact(&map, &key).unwrap_err();
            assert!(
                err.contains("out of range") || err.contains("overflow"),
                "nodes {nodes} edges {edges}: {err}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_format_version_misses_by_key() {
        let dir = scratch("stale");
        let store = GraphStore::new(&dir);
        store
            .load_or_build(Dataset::Ca, 1.0, 1, || Ok(sample()))
            .unwrap();
        let path = dir.join(artifact_file_name(Dataset::Ca, 1.0, 1));
        let mapped = Arc::new(Mapped::from_bytes(std::fs::read(&path).unwrap()));
        let err = decode_artifact(&mapped, "scu-csr-0|ca|scale=deadbeef|seed=1").unwrap_err();
        assert!(err.contains("key mismatch"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncations_fail_clean() {
        let dir = scratch("trunc");
        let store = GraphStore::new(&dir);
        store
            .load_or_build(Dataset::Msdoor, 1.0, 2, || Ok(sample()))
            .unwrap();
        let path = dir.join(artifact_file_name(Dataset::Msdoor, 1.0, 2));
        let bytes = std::fs::read(&path).unwrap();
        let key = artifact_key(Dataset::Msdoor, 1.0, 2);
        for cut in [0, 1, 7, 8, 12, bytes.len() / 2, bytes.len() - 1] {
            let mapped = Arc::new(Mapped::from_bytes(bytes[..cut].to_vec()));
            assert!(decode_artifact(&mapped, &key).is_err(), "cut at {cut}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn io_hook_failure_builds_without_quarantining() {
        let dir = scratch("hook");
        let store = GraphStore::new(&dir);
        store
            .load_or_build(Dataset::Human, 1.0, 4, || Ok(sample()))
            .unwrap();
        // Simulate a load fault by asking for a path we cannot read:
        // the hook seam itself is process-global (OnceLock), so the
        // unit test exercises the Io arm via try_load on a directory.
        let bad = store.try_load(&dir, &artifact_key(Dataset::Human, 1.0, 4));
        assert!(matches!(
            bad,
            Err(LoadFailure::Io(_) | LoadFailure::Corrupt(_))
        ));
        // The real artifact is still intact and loads.
        let g = store
            .load_or_build(Dataset::Human, 1.0, 4, || panic!("artifact intact"))
            .unwrap();
        assert_eq!(g, sample());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_and_names_distinguish_every_axis() {
        let base = artifact_key(Dataset::Kron, 1.0, 1);
        assert_ne!(base, artifact_key(Dataset::Ca, 1.0, 1));
        assert_ne!(base, artifact_key(Dataset::Kron, 0.5, 1));
        assert_ne!(base, artifact_key(Dataset::Kron, 1.0, 2));
        assert!(base.starts_with(CSR_FORMAT_VERSION));
        let name = artifact_file_name(Dataset::Kron, 1.0, 1);
        assert_ne!(name, artifact_file_name(Dataset::Kron, 1.0, 2));
    }

    #[test]
    fn install_slot_round_trips() {
        // Serialise against other tests that may also poke the slot.
        let dir = scratch("slot");
        let store = Arc::new(GraphStore::new(&dir));
        install(Some(Arc::clone(&store)));
        assert!(active().is_some());
        install(None);
        assert!(active().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

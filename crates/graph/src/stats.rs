//! Graph statistics: degree distributions and locality measures.
//!
//! Used by the dataset registry tests (to verify each generator
//! reproduces its class's structure) and by the benchmark reports.

use crate::csr::Csr;

/// Summary statistics of a graph's degree distribution and edge
/// locality.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of directed edges.
    pub edges: usize,
    /// Mean out-degree.
    pub avg_degree: f64,
    /// Maximum out-degree.
    pub max_degree: u32,
    /// Fraction of nodes with zero out-degree.
    pub sink_fraction: f64,
    /// Gini coefficient of the out-degree distribution (0 = perfectly
    /// uniform, →1 = hub-dominated scale-free).
    pub degree_gini: f64,
    /// Mean |dst − src| over all edges, normalised by node count —
    /// a proxy for the destination locality grouping exploits.
    pub mean_edge_span: f64,
}

impl GraphStats {
    /// Computes statistics for `g`.
    pub fn of(g: &Csr) -> Self {
        let n = g.num_nodes();
        let m = g.num_edges();
        let mut degrees: Vec<u32> = (0..n as u32).map(|v| g.degree(v)).collect();
        let sinks = degrees.iter().filter(|&&d| d == 0).count();

        // Gini via the sorted-degrees formula.
        degrees.sort_unstable();
        let total: u64 = degrees.iter().map(|&d| d as u64).sum();
        let gini = if n == 0 || total == 0 {
            0.0
        } else {
            let weighted: f64 = degrees
                .iter()
                .enumerate()
                .map(|(i, &d)| (i as f64 + 1.0) * d as f64)
                .sum();
            (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
        };

        let span: f64 = if m == 0 {
            0.0
        } else {
            g.iter_edges()
                .map(|(s, d, _)| s.abs_diff(d) as f64)
                .sum::<f64>()
                / m as f64
                / n.max(1) as f64
        };

        GraphStats {
            nodes: n,
            edges: m,
            avg_degree: g.avg_degree(),
            max_degree: g.max_degree(),
            sink_fraction: if n == 0 { 0.0 } else { sinks as f64 / n as f64 },
            degree_gini: gini,
            mean_edge_span: span,
        }
    }
}

/// Histogram of out-degrees in power-of-two buckets; bucket `i` counts
/// nodes with degree in `[2^i, 2^(i+1))`, bucket 0 also counts degree
/// 0..2.
pub fn degree_histogram(g: &Csr) -> Vec<usize> {
    let mut buckets = vec![0usize; 1];
    for v in 0..g.num_nodes() as u32 {
        let d = g.degree(v);
        let b = if d < 2 {
            0
        } else {
            (32 - d.leading_zeros()) as usize - 1
        };
        if b >= buckets.len() {
            buckets.resize(b + 1, 0);
        }
        buckets[b] += 1;
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::datasets::Dataset;

    #[test]
    fn uniform_graph_has_low_gini() {
        let g = Dataset::Delaunay.build(1.0 / 64.0, 1);
        let s = GraphStats::of(&g);
        assert!(s.degree_gini < 0.2, "delaunay gini {}", s.degree_gini);
    }

    #[test]
    fn scale_free_graph_has_high_gini() {
        let g = Dataset::Kron.build(1.0 / 64.0, 1);
        let s = GraphStats::of(&g);
        assert!(s.degree_gini > 0.5, "kron gini {}", s.degree_gini);
    }

    #[test]
    fn mesh_has_lower_span_than_random() {
        let mesh = GraphStats::of(&Dataset::Msdoor.build(1.0 / 64.0, 1));
        let kron = GraphStats::of(&Dataset::Kron.build(1.0 / 64.0, 1));
        assert!(
            mesh.mean_edge_span < kron.mean_edge_span,
            "mesh span {} vs kron {}",
            mesh.mean_edge_span,
            kron.mean_edge_span
        );
    }

    #[test]
    fn histogram_buckets_sum_to_node_count() {
        let g = Dataset::Cond.build(1.0 / 64.0, 1);
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), g.num_nodes());
    }

    #[test]
    fn empty_graph_stats_are_zeroed() {
        let g = GraphBuilder::new(0).build();
        let s = GraphStats::of(&g);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.degree_gini, 0.0);
        assert_eq!(s.mean_edge_span, 0.0);
    }

    #[test]
    fn sink_fraction_counts_terminal_nodes() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1).add_edge(1, 2, 1);
        let s = GraphStats::of(&b.build());
        assert!((s.sink_fraction - 0.5).abs() < 1e-12); // nodes 2 and 3
    }
}

//! Graph transformations: node renumbering for locality.
//!
//! The related-work section of the paper contrasts the SCU with
//! software preprocessing approaches (Tigr) that transform the graph
//! off-line to make it more GPU-friendly. These transforms let the
//! benchmark harness compare "preprocess the graph" against "add the
//! SCU" on the same workloads.

use crate::csr::Csr;

/// Renumbers nodes by descending out-degree (hubs get the smallest
/// IDs) — the classic preprocessing step for scale-free graphs:
/// frequently-referenced destinations cluster into few cache lines.
///
/// Returns the transformed graph and the mapping `old id -> new id`.
pub fn renumber_by_degree(g: &Csr) -> (Csr, Vec<u32>) {
    let n = g.num_nodes();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    let mut mapping = vec![0u32; n];
    for (new_id, &old_id) in order.iter().enumerate() {
        mapping[old_id as usize] = new_id as u32;
    }
    (apply_mapping(g, &mapping), mapping)
}

/// Renumbers nodes in BFS order from node 0 (an RCM-like bandwidth
/// reduction): neighbours get nearby IDs, shrinking edge spans.
///
/// Unreached nodes keep their relative order after all reached ones.
/// Returns the transformed graph and the mapping `old id -> new id`.
pub fn renumber_bfs(g: &Csr) -> (Csr, Vec<u32>) {
    let n = g.num_nodes();
    let mut mapping = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = std::collections::VecDeque::new();
    if n > 0 {
        mapping[0] = 0;
        next = 1;
        queue.push_back(0u32);
    }
    while let Some(v) = queue.pop_front() {
        for &w in g.neighbors(v) {
            if mapping[w as usize] == u32::MAX {
                mapping[w as usize] = next;
                next += 1;
                queue.push_back(w);
            }
        }
    }
    for m in mapping.iter_mut() {
        if *m == u32::MAX {
            *m = next;
            next += 1;
        }
    }
    (apply_mapping(g, &mapping), mapping)
}

/// Rebuilds `g` under a bijective node mapping.
///
/// # Panics
///
/// Panics if `mapping` is not a permutation of `0..n`.
pub fn apply_mapping(g: &Csr, mapping: &[u32]) -> Csr {
    let n = g.num_nodes();
    assert_eq!(mapping.len(), n, "mapping length mismatch");
    let mut seen = vec![false; n];
    for &m in mapping {
        assert!(
            (m as usize) < n && !std::mem::replace(&mut seen[m as usize], true),
            "mapping is not a permutation"
        );
    }
    let mut b = crate::builder::GraphBuilder::new(n);
    for (s, d, w) in g.iter_edges() {
        b.add_edge(mapping[s as usize], mapping[d as usize], w);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::datasets::Dataset;
    use crate::stats::GraphStats;

    #[test]
    fn degree_renumbering_puts_hubs_first() {
        let g = Dataset::Kron.build(1.0 / 128.0, 1);
        let (t, mapping) = renumber_by_degree(&g);
        assert_eq!(t.num_edges(), g.num_edges());
        // New node 0 must have the old max degree.
        assert_eq!(t.degree(0), g.max_degree());
        // Mapping is a permutation.
        let mut sorted = mapping.clone();
        sorted.sort_unstable();
        assert!(sorted.iter().enumerate().all(|(i, &m)| i as u32 == m));
    }

    #[test]
    fn bfs_renumbering_shrinks_edge_span_on_road_networks() {
        let g = Dataset::Kron.build(1.0 / 128.0, 2);
        let (t, _) = renumber_bfs(&g);
        let before = GraphStats::of(&g).mean_edge_span;
        let after = GraphStats::of(&t).mean_edge_span;
        assert!(after < before, "span {after} not below {before}");
    }

    #[test]
    fn transforms_preserve_structure() {
        // Degrees are preserved as a multiset.
        let g = Dataset::Cond.build(1.0 / 128.0, 3);
        let (t, _) = renumber_by_degree(&g);
        let mut a: Vec<u32> = (0..g.num_nodes() as u32).map(|v| g.degree(v)).collect();
        let mut b: Vec<u32> = (0..t.num_nodes() as u32).map(|v| t.degree(v)).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn bad_mapping_rejected() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1);
        let g = b.build();
        apply_mapping(&g, &[0, 0]);
    }

    #[test]
    fn empty_graph_transforms() {
        let g = GraphBuilder::new(0).build();
        let (t, m) = renumber_bfs(&g);
        assert_eq!(t.num_nodes(), 0);
        assert!(m.is_empty());
    }
}

//! Offline stand-in for `serde_json` over the workspace-local
//! [`serde`] stub: compact and pretty printers plus a recursive-descent
//! parser for the JSON-shaped [`Value`].
//!
//! Guarantees the experiment harness relies on:
//!
//! - **Deterministic output**: objects print in insertion order; equal
//!   value trees print to equal bytes.
//! - **Exact round-trips**: `u64`/`i64` print digit-exact; `f64` uses
//!   Rust's shortest-representation `Display`, which parses back to the
//!   identical bit pattern, so `parse(print(v)) == v` for finite data.

pub use serde::{DeError as Error, Deserialize, Serialize, Value};

/// Converts any serialisable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Serialises compactly (no whitespace).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a JSON document into any deserialisable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(&format!("trailing data at byte {}", p.pos)));
    }
    T::from_value(&v)
}

// ---------------------------------------------------------------------------
// Printing.

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, items.len(), indent, depth, '[', ']', |out, i| {
            write_value(out, &items[i], indent, depth + 1)
        }),
        Value::Object(entries) => {
            write_seq(out, entries.len(), indent, depth, '{', '}', |out, i| {
                let (k, v) = &entries[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            })
        }
    }
}

fn write_seq(
    out: &mut String,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn write_f64(out: &mut String, x: f64) {
    debug_assert!(
        x.is_finite(),
        "non-finite floats become Value::Null at Serialize time"
    );
    // Rust's Display prints the shortest string that parses back to the
    // same f64; integral floats print without a fraction ("1"), which
    // is valid JSON and re-parses as F64 here only if marked — so tag
    // integral floats with ".0" to keep the Value variant stable
    // across a print/parse round-trip.
    let s = x.to_string();
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing.

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(&format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(Error::new(&format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(&format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(&format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), Error> {
        let b = self
            .peek()
            .ok_or_else(|| Error::new("unterminated escape"))?;
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: expect \uXXXX low half.
                    if !self.eat_keyword("\\u") {
                        return Err(Error::new("lone high surrogate"));
                    }
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(Error::new("invalid low surrogate"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| Error::new("invalid codepoint"))?);
            }
            other => return Err(Error::new(&format!("bad escape '\\{}'", other as char))),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .and_then(|s| std::str::from_utf8(s).ok())
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let code = u32::from_str_radix(digits, 16).map_err(|_| Error::new("non-hex \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number bytes");
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(&format!("bad number '{text}'")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            // "-0" and friends still parse as I64.
            stripped
                .parse::<u64>()
                .ok()
                .and_then(|_| text.parse::<i64>().ok())
                .map(Value::I64)
                .ok_or_else(|| Error::new(&format!("bad number '{text}'")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(&format!("bad number '{text}'")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) {
        let compact: Value = from_str(&to_string(v).unwrap()).unwrap();
        assert_eq!(&compact, v);
        let pretty: Value = from_str(&to_string_pretty(v).unwrap()).unwrap();
        assert_eq!(&pretty, v);
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(&Value::Null);
        round_trip(&Value::Bool(true));
        round_trip(&Value::U64(u64::MAX));
        round_trip(&Value::I64(-42));
        round_trip(&Value::F64(0.1 + 0.2));
        round_trip(&Value::F64(3.0));
        round_trip(&Value::Str("line\n\"quoted\" \\ tab\t".into()));
    }

    #[test]
    fn nested_structure_round_trips_and_is_deterministic() {
        let v = Value::Object(vec![
            (
                "zeta".into(),
                Value::Array(vec![Value::U64(1), Value::Null]),
            ),
            (
                "alpha".into(),
                Value::Object(vec![("x".into(), Value::F64(1.5))]),
            ),
        ]);
        round_trip(&v);
        assert_eq!(to_string(&v).unwrap(), to_string(&v.clone()).unwrap());
        // Insertion order is preserved, not sorted.
        assert!(
            to_string(&v).unwrap().find("zeta").unwrap()
                < to_string(&v).unwrap().find("alpha").unwrap()
        );
    }

    #[test]
    fn integral_floats_keep_their_variant() {
        let s = to_string(&Value::F64(2.0)).unwrap();
        assert_eq!(s, "2.0");
        assert_eq!(from_str::<Value>(&s).unwrap(), Value::F64(2.0));
        assert_eq!(from_str::<Value>("2").unwrap(), Value::U64(2));
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: Value = from_str(r#""aA😀""#).unwrap();
        assert_eq!(v, Value::Str("aA😀".into()));
    }

    #[test]
    fn pretty_layout_is_indented() {
        let v = Value::Object(vec![("k".into(), Value::Array(vec![Value::U64(1)]))]);
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"k\": [\n    1\n  ]\n}"
        );
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}

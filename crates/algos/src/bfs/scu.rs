//! BFS with compaction offloaded to the SCU (Algorithms 1 and 4).
//!
//! Basic SCU (Algorithm 1): the GPU prepares the `indexes`/`count`
//! vectors and the contraction bitmask; the SCU runs *Access Expansion
//! Compaction* for the edge frontier and *Data Compaction* for the
//! node frontier.
//!
//! Enhanced SCU (Algorithm 4): an additional filter pass before each
//! compaction drops duplicated and already-visited nodes using the
//! persistent in-memory hash (paper: reduces GPU workload to ~14%).

use scu_core::group::GroupHash;
use scu_core::hash::{FilterHash, FilterMode};
use scu_gpu::buffer::DeviceArray;
use scu_graph::Csr;
use scu_trace::{IterGuard, PhaseGuard};

use crate::device_graph::DeviceGraph;
use crate::kernels::WarpCull;
use crate::report::{Phase, RunReport};
use crate::system::System;

use super::{BfsVariant, UNREACHED};

/// Runs SCU-offloaded BFS from `src`; `enhanced` enables the
/// filtering passes of Algorithm 4. Returns exact distances and the
/// measured report.
///
/// # Panics
///
/// Panics if `src` is out of range or `sys` has no SCU.
pub fn run(sys: &mut System, g: &Csr, src: u32, enhanced: bool) -> (Vec<u32>, RunReport) {
    let variant = if enhanced {
        BfsVariant::enhanced()
    } else {
        BfsVariant::basic()
    };
    run_variant(sys, g, src, variant)
}

/// [`run`] with independent filtering/grouping knobs (the grouping
/// knob reproduces the §4.4 ablation).
///
/// # Panics
///
/// Panics if `src` is out of range or `sys` has no SCU.
pub fn run_variant(
    sys: &mut System,
    g: &Csr,
    src: u32,
    variant: BfsVariant,
) -> (Vec<u32>, RunReport) {
    assert!((src as usize) < g.num_nodes(), "source {src} out of range");
    assert!(
        sys.scu.is_some(),
        "SCU BFS requires a System::with_scu platform"
    );
    sys.begin_trace("bfs", true);
    let dg = DeviceGraph::upload(&mut sys.alloc, g);
    let n = g.num_nodes();
    let m = g.num_edges().max(1);

    let mut dist: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, n);
    let ef_cap = 4 * m + 64;
    let mut nf: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, ef_cap);
    let mut ef: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, ef_cap);
    let mut indexes: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, ef_cap);
    let mut counts: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, ef_cap);
    let mut flags8: DeviceArray<u8> = DeviceArray::zeroed(&mut sys.alloc, ef_cap);
    let mut elem_flags: DeviceArray<u8> = DeviceArray::zeroed(&mut sys.alloc, ef_cap);
    let mut filter_flags: DeviceArray<u8> = DeviceArray::zeroed(&mut sys.alloc, ef_cap);

    // Enhanced-SCU hash tables: `visited` persists across the whole
    // traversal (drops already-visited nodes); `iter` is cleared per
    // contraction.
    let scu_cfg = sys.scu.as_ref().expect("checked above").config().clone();
    let hash_cfg = scu_cfg.filter_bfs_hash;
    let mut visited_hash = FilterHash::new(&mut sys.alloc, hash_cfg);
    let mut iter_hash = FilterHash::new(&mut sys.alloc, hash_cfg);
    let mut group_hash = GroupHash::new(&mut sys.alloc, scu_cfg.grouping_hash);
    let mut order: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, ef_cap);

    {
        let _p = PhaseGuard::new(sys.probe(), Phase::Processing);
        sys.gpu.run(&mut sys.mem, "bfs-init", n, |tid, ctx| {
            ctx.store(&mut dist, tid, UNREACHED);
        });
        sys.gpu.run(&mut sys.mem, "bfs-seed", 1, |_, ctx| {
            ctx.store(&mut dist, src as usize, 0);
            ctx.store(&mut nf, 0, src);
        });
    }
    if variant.filtering {
        // Seed the visited filter so back-edges to the source drop.
        visited_hash.probe_unique(&mut sys.mem, src);
    }

    let mut frontier_len = 1usize;
    let mut level = 0u32;
    let mut iter = 0u32;

    // Host staging reused across iterations — the loop body allocates
    // nothing on the host; only device regrowth (below) ever allocates.
    let mut visible: Vec<u32> = Vec::with_capacity(n);
    let mut pending: Vec<(usize, u32)> = Vec::new();
    let mut cull = WarpCull::new(n);

    while frontier_len > 0 {
        iter += 1;
        let _iter = IterGuard::new(sys.probe(), iter);
        if frontier_len > indexes.len() {
            let cap = frontier_len * 2;
            indexes = DeviceArray::zeroed(&mut sys.alloc, cap);
            counts = DeviceArray::zeroed(&mut sys.alloc, cap);
        }

        // ---- Expansion setup on the GPU (contiguous accesses). ----
        {
            let _p = PhaseGuard::new(sys.probe(), Phase::Processing);
            sys.gpu.run(
                &mut sys.mem,
                "bfs-expand-setup",
                frontier_len,
                |tid, ctx| {
                    let v = ctx.load(&nf, tid) as usize;
                    let lo = ctx.load(&dg.row_offsets, v);
                    let hi = ctx.load(&dg.row_offsets, v + 1);
                    ctx.alu(1);
                    ctx.store(&mut indexes, tid, lo);
                    ctx.store(&mut counts, tid, hi - lo);
                },
            );
        }

        // ---- Expansion compaction on the SCU. ----
        let expansion_size: usize = (0..frontier_len).map(|i| counts.get(i) as usize).sum();
        if expansion_size > ef.len() {
            let cap = expansion_size * 2;
            ef = DeviceArray::zeroed(&mut sys.alloc, cap);
            nf = DeviceArray::zeroed(&mut sys.alloc, cap);
            flags8 = DeviceArray::zeroed(&mut sys.alloc, cap);
            elem_flags = DeviceArray::zeroed(&mut sys.alloc, cap);
            filter_flags = DeviceArray::zeroed(&mut sys.alloc, cap);
            order = DeviceArray::zeroed(&mut sys.alloc, cap);
        }
        let total = {
            let _p = PhaseGuard::new(sys.probe(), Phase::Compaction);
            let scu = sys.scu.as_mut().expect("checked above");
            if variant.filtering {
                scu.filter_pass_expansion(
                    &mut sys.mem,
                    &dg.edges,
                    None,
                    &indexes,
                    &counts,
                    frontier_len,
                    None,
                    FilterMode::Unique,
                    &mut visited_hash,
                    &mut elem_flags,
                );
                let op = scu.access_expansion_compaction(
                    &mut sys.mem,
                    &dg.edges,
                    &indexes,
                    &counts,
                    frontier_len,
                    Some(&elem_flags),
                    None,
                    &mut ef,
                );
                op.elements_out as usize
            } else {
                let op = scu.access_expansion_compaction(
                    &mut sys.mem,
                    &dg.edges,
                    &indexes,
                    &counts,
                    frontier_len,
                    None,
                    None,
                    &mut ef,
                );
                op.elements_out as usize
            }
        };
        if total == 0 {
            break;
        }

        // ---- Contraction mark (processing). Visited checks use
        // wave-granular visibility: threads resident together read the
        // same pre-wave `dist` (races let duplicates through, as with
        // the paper's best-effort bitmask), while later waves observe
        // earlier waves' updates — which is what bounds duplicate
        // amplification on real hardware. ----
        let wave = (sys.gpu.config().num_sms * sys.gpu.config().threads_per_sm) as usize;
        visible.clear();
        visible.extend_from_slice(dist.as_slice());
        pending.clear();
        let mut cur_wave = 0usize;
        cull.begin_launch();
        {
            let _p = PhaseGuard::new(sys.probe(), Phase::Processing);
            sys.gpu
                .run(&mut sys.mem, "bfs-contract-mark", total, |tid, ctx| {
                    let w = tid / wave;
                    if w != cur_wave {
                        for (i, v) in pending.drain(..) {
                            visible[i] = v;
                        }
                        cur_wave = w;
                    }
                    let e = ctx.load(&ef, tid) as usize;
                    ctx.alu(3); // warp-cull hashing
                    ctx.load(&dist, e); // visited check (value from `visible`)
                    let unvisited = visible[e] == UNREACHED;
                    let first = cull.first_in_warp(tid, e as u32);
                    let keep = unvisited && first;
                    ctx.store(&mut flags8, tid, keep as u8);
                    if keep {
                        ctx.store(&mut dist, e, level + 1);
                        pending.push((e, level + 1));
                    }
                });
        }

        // ---- Contraction compaction on the SCU. ----
        let kept = {
            let _p = PhaseGuard::new(sys.probe(), Phase::Compaction);
            let scu = sys.scu.as_mut().expect("checked above");
            let final_flags = if variant.filtering {
                iter_hash.clear();
                scu.filter_pass_data(
                    &mut sys.mem,
                    &ef,
                    total,
                    Some(&flags8),
                    FilterMode::Unique,
                    None,
                    &mut iter_hash,
                    &mut filter_flags,
                );
                &filter_flags
            } else {
                &flags8
            };
            let order_ref = if variant.grouping {
                scu.group_pass_data(
                    &mut sys.mem,
                    &ef,
                    total,
                    Some(final_flags),
                    &dist,
                    &mut group_hash,
                    &mut order,
                );
                Some(&order)
            } else {
                None
            };
            let op = scu.data_compaction_n(
                &mut sys.mem,
                &ef,
                total,
                Some(final_flags),
                order_ref,
                &mut nf,
                0,
            );
            op.elements_out as usize
        };

        frontier_len = kept;
        level += 1;
        assert!(level <= n as u32 + 1, "BFS failed to terminate");
    }

    let report = sys.finish_trace();
    (dist.into_vec(), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::{gpu, reference};
    use crate::system::SystemKind;
    use scu_graph::Dataset;

    #[test]
    fn basic_matches_reference() {
        for d in [Dataset::Cond, Dataset::Kron] {
            let g = d.build(1.0 / 256.0, 3);
            let mut sys = System::with_scu(SystemKind::Tx1);
            let (dist, _) = run(&mut sys, &g, 0, false);
            assert_eq!(dist, reference::distances(&g, 0), "dataset {d}");
        }
    }

    #[test]
    fn enhanced_matches_reference() {
        for d in [Dataset::Cond, Dataset::Kron, Dataset::Ca] {
            let g = d.build(1.0 / 256.0, 3);
            let mut sys = System::with_scu(SystemKind::Tx1);
            let (dist, _) = run(&mut sys, &g, 0, true);
            assert_eq!(dist, reference::distances(&g, 0), "dataset {d}");
        }
    }

    #[test]
    fn enhanced_filters_reduce_gpu_workload() {
        let g = Dataset::Kron.build(1.0 / 64.0, 5);
        let mut base_sys = System::baseline(SystemKind::Tx1);
        let (_, base) = gpu::run(&mut base_sys, &g, 0);
        let mut scu_sys = System::with_scu(SystemKind::Tx1);
        let (_, enh) = run(&mut scu_sys, &g, 0, true);
        let ratio = enh.gpu_thread_insts() as f64 / base.gpu_thread_insts() as f64;
        assert!(ratio < 0.6, "GPU workload ratio {ratio} not reduced enough");
        assert!(enh.scu.filter.dropped > 0);
    }

    #[test]
    fn scu_runs_faster_than_baseline_on_tx1() {
        let g = Dataset::Kron.build(1.0 / 64.0, 5);
        let mut base_sys = System::baseline(SystemKind::Tx1);
        let (_, base) = gpu::run(&mut base_sys, &g, 0);
        let mut scu_sys = System::with_scu(SystemKind::Tx1);
        let (_, enh) = run(&mut scu_sys, &g, 0, true);
        let speedup = enh.speedup_vs(&base);
        assert!(speedup > 1.0, "speedup {speedup} <= 1");
    }

    #[test]
    #[should_panic(expected = "requires a System::with_scu")]
    fn baseline_system_rejected() {
        let g = Dataset::Cond.build(1.0 / 512.0, 1);
        let mut sys = System::baseline(SystemKind::Tx1);
        let _ = run(&mut sys, &g, 0, false);
    }
}

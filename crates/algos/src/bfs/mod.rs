//! Breadth-First Search (paper §2.1, §3.3, §4.4).
//!
//! * [`mod@reference`] — exact host BFS for validation.
//! * [`gpu`] — the baseline GPU implementation after Merrill et al.:
//!   expansion (setup + scan + gather) and contraction (mark with
//!   warp-culling + scan + scatter), with the scan/gather/scatter
//!   kernels classified as stream compaction (Figure 1).
//! * [`scu`] — Algorithm 1 (basic SCU: expansion and contraction
//!   compaction offloaded) and Algorithm 4 (enhanced SCU: filtering
//!   passes over both phases using the persistent visited hash).

pub mod gpu;
pub mod reference;
pub mod scu;

/// Distance marker for unreached nodes.
pub const UNREACHED: u32 = u32::MAX;

/// Which enhanced-SCU features a BFS run enables. The paper uses
/// filtering only for BFS — grouping "interferes with the warp culling
/// filtering efforts done in the GPU processing" (§4.4) — so
/// [`BfsVariant::enhanced`] enables filtering alone; the grouping knob
/// exists for the ablation that reproduces that finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BfsVariant {
    /// Unique-element filtering (expansion + contraction, §4.4).
    pub filtering: bool,
    /// Destination-line grouping of the node frontier (ablation only).
    pub grouping: bool,
}

impl BfsVariant {
    /// Basic SCU (Algorithm 1).
    pub fn basic() -> Self {
        BfsVariant {
            filtering: false,
            grouping: false,
        }
    }

    /// The paper's enhanced BFS (Algorithm 4): filtering only.
    pub fn enhanced() -> Self {
        BfsVariant {
            filtering: true,
            grouping: false,
        }
    }

    /// Filtering plus grouping — the configuration §4.4 rejects.
    pub fn with_grouping() -> Self {
        BfsVariant {
            filtering: true,
            grouping: true,
        }
    }
}

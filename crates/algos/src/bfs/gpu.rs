//! Baseline GPU BFS (Merrill et al., as summarised in paper §2.1).
//!
//! Each iteration runs an **expansion** (setup kernel, exclusive scan,
//! gather kernel) producing the edge frontier, and a **contraction**
//! (mark kernel with warp-culling and a parallel-read visited check,
//! exclusive scan, scatter kernel) producing the next node frontier.
//! The scan + gather + scatter kernels are the stream-compaction work
//! of Figure 1; the mark/setup kernels are graph processing.
//!
//! Parallel-read semantics: contraction threads check `dist` against a
//! snapshot taken at kernel launch, so duplicates inside one edge
//! frontier all appear unvisited (as on real hardware, where the
//! "best-effort bitmask ... may yield false negatives due to race
//! conditions") unless warp culling removes them.

use scu_gpu::buffer::DeviceArray;
use scu_graph::Csr;
use scu_trace::{IterGuard, PhaseGuard};

use crate::device_graph::DeviceGraph;
use crate::kernels::{edge_slot_map_into, gpu_exclusive_scan_into, ScanScratch, WarpCull};
use crate::report::{Phase, RunReport};
use crate::system::System;

use super::UNREACHED;

/// Runs baseline GPU BFS from `src`; returns exact distances and the
/// measured report.
///
/// # Panics
///
/// Panics if `src` is out of range or `sys` already executed work
/// (pass a fresh [`System`]).
pub fn run(sys: &mut System, g: &Csr, src: u32) -> (Vec<u32>, RunReport) {
    assert!((src as usize) < g.num_nodes(), "source {src} out of range");
    sys.begin_trace("bfs", false);
    let dg = DeviceGraph::upload(&mut sys.alloc, g);
    let n = g.num_nodes();
    let m = g.num_edges().max(1);

    let mut dist: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, n);
    let ef_cap = 4 * m + 64;
    let mut nf: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, ef_cap);
    let mut ef: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, ef_cap);
    let mut indexes: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, ef_cap);
    let mut counts: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, ef_cap);
    let mut flags: DeviceArray<u32> = DeviceArray::zeroed(&mut sys.alloc, ef_cap);

    // Init kernel: dist <- UNREACHED everywhere, then seed the source.
    {
        let _p = PhaseGuard::new(sys.probe(), Phase::Processing);
        sys.gpu.run(&mut sys.mem, "bfs-init", n, |tid, ctx| {
            ctx.store(&mut dist, tid, UNREACHED);
        });
        sys.gpu.run(&mut sys.mem, "bfs-seed", 1, |_, ctx| {
            ctx.store(&mut dist, src as usize, 0);
            ctx.store(&mut nf, 0, src);
        });
    }

    let mut frontier_len = 1usize;
    let mut level = 0u32;
    let mut iter = 0u32;

    // Host staging reused across iterations — the loop body allocates
    // nothing on the host; only device regrowth (below) ever allocates.
    let mut scan = ScanScratch::default();
    let mut rows: Vec<u32> = Vec::new();
    let mut pos: Vec<u32> = Vec::new();
    let mut visible: Vec<u32> = Vec::with_capacity(n);
    let mut pending: Vec<(usize, u32)> = Vec::new();
    let mut cull = WarpCull::new(n);

    while frontier_len > 0 {
        iter += 1;
        let _iter = IterGuard::new(sys.probe(), iter);
        if frontier_len > indexes.len() {
            let cap = frontier_len * 2;
            indexes = DeviceArray::zeroed(&mut sys.alloc, cap);
            counts = DeviceArray::zeroed(&mut sys.alloc, cap);
        }

        // ---- Expansion: setup (processing) ----
        {
            let _p = PhaseGuard::new(sys.probe(), Phase::Processing);
            sys.gpu.run(
                &mut sys.mem,
                "bfs-expand-setup",
                frontier_len,
                |tid, ctx| {
                    let v = ctx.load(&nf, tid) as usize;
                    let lo = ctx.load(&dg.row_offsets, v);
                    let hi = ctx.load(&dg.row_offsets, v + 1);
                    ctx.alu(1);
                    ctx.store(&mut indexes, tid, lo);
                    ctx.store(&mut counts, tid, hi - lo);
                },
            );
        }

        // ---- Expansion: scan + gather (compaction) ----
        let (offsets, total) = gpu_exclusive_scan_into(sys, &counts, frontier_len, &mut scan);
        let total = total as usize;
        if total == 0 {
            break;
        }
        // Dense graphs can transiently blow the edge frontier past the
        // usual bound (duplicate node-frontier entries each expand
        // their full adjacency); grow the buffers like a real
        // implementation would resize its worklists. `indexes` and
        // `counts` hold this iteration's setup output, so they grow at
        // the top of the next iteration instead.
        if total > ef.len() {
            let cap = total * 2;
            ef = DeviceArray::zeroed(&mut sys.alloc, cap);
            nf = DeviceArray::zeroed(&mut sys.alloc, cap);
            flags = DeviceArray::zeroed(&mut sys.alloc, cap);
        }
        // Load-balanced gather: one thread per edge-frontier slot,
        // locating its row via merge-path search over the offsets.
        edge_slot_map_into(&indexes, &counts, frontier_len, &mut rows, &mut pos);
        {
            let _p = PhaseGuard::new(sys.probe(), Phase::Compaction);
            sys.gpu
                .run(&mut sys.mem, "bfs-expand-gather", total, |e, ctx| {
                    ctx.alu(3); // merge-path binary search (amortised)
                    let row = rows[e] as usize;
                    ctx.load(&offsets, row);
                    let p = pos[e] as usize;
                    let v = ctx.load(&dg.edges, p);
                    ctx.store(&mut ef, e, v);
                });
        }

        // ---- Contraction mark (processing). Visited checks use
        // wave-granular visibility: threads resident together read the
        // same pre-wave `dist` (races let duplicates through, as with
        // the paper's best-effort bitmask), while later waves observe
        // earlier waves' updates — which is what bounds duplicate
        // amplification on real hardware. ----
        let wave = (sys.gpu.config().num_sms * sys.gpu.config().threads_per_sm) as usize;
        visible.clear();
        visible.extend_from_slice(dist.as_slice());
        pending.clear();
        let mut cur_wave = 0usize;
        cull.begin_launch();
        {
            let _p = PhaseGuard::new(sys.probe(), Phase::Processing);
            sys.gpu
                .run(&mut sys.mem, "bfs-contract-mark", total, |tid, ctx| {
                    let w = tid / wave;
                    if w != cur_wave {
                        for (i, v) in pending.drain(..) {
                            visible[i] = v;
                        }
                        cur_wave = w;
                    }
                    let e = ctx.load(&ef, tid) as usize;
                    ctx.alu(3); // warp-cull hashing
                    ctx.load(&dist, e); // visited check (value from `visible`)
                    let unvisited = visible[e] == UNREACHED;
                    let first = cull.first_in_warp(tid, e as u32);
                    let keep = unvisited && first;
                    ctx.store(&mut flags, tid, keep as u32);
                    if keep {
                        ctx.store(&mut dist, e, level + 1);
                        pending.push((e, level + 1));
                    }
                });
        }

        // ---- Contraction: scan + scatter (compaction) ----
        let (offsets2, kept) = gpu_exclusive_scan_into(sys, &flags, total, &mut scan);
        {
            let _p = PhaseGuard::new(sys.probe(), Phase::Compaction);
            sys.gpu
                .run(&mut sys.mem, "bfs-contract-scatter", total, |tid, ctx| {
                    let f = ctx.load(&flags, tid);
                    if f != 0 {
                        let e = ctx.load(&ef, tid);
                        let off = ctx.load(&offsets2, tid) as usize;
                        ctx.store(&mut nf, off, e);
                    }
                });
        }

        frontier_len = kept as usize;
        level += 1;
        assert!(level <= n as u32 + 1, "BFS failed to terminate");
    }

    let report = sys.finish_trace();
    (dist.into_vec(), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::reference;
    use crate::system::SystemKind;
    use scu_graph::Dataset;

    #[test]
    fn matches_reference_on_figure2() {
        let g = scu_graph::Csr::new(
            vec![0, 3, 5, 6, 8, 8, 8, 8],
            vec![1, 2, 3, 4, 5, 5, 2, 6],
            vec![2, 3, 1, 1, 1, 2, 1, 2],
        )
        .unwrap();
        let mut sys = System::baseline(SystemKind::Tx1);
        let (dist, report) = run(&mut sys, &g, 0);
        assert_eq!(dist, reference::distances(&g, 0));
        assert_eq!(report.iterations, 3);
    }

    #[test]
    fn matches_reference_on_datasets() {
        for d in [Dataset::Cond, Dataset::Kron, Dataset::Ca] {
            let g = d.build(1.0 / 256.0, 3);
            let mut sys = System::baseline(SystemKind::Tx1);
            let (dist, _) = run(&mut sys, &g, 0);
            assert_eq!(dist, reference::distances(&g, 0), "dataset {d}");
        }
    }

    #[test]
    fn compaction_takes_substantial_fraction() {
        // The Figure 1 motivation: scan/gather/scatter should be a
        // hefty share of baseline BFS time.
        // Note: at unit-test graph scales the node arrays fit in the
        // L2 while the streamed compaction arrays do not, which skews
        // the split above the paper's full-size 25-55%; the fig01
        // bench uses larger scales.
        let g = Dataset::Kron.build(1.0 / 64.0, 5);
        let mut sys = System::baseline(SystemKind::Tx1);
        let (_, report) = run(&mut sys, &g, 0);
        let f = report.compaction_fraction();
        assert!(f > 0.15 && f < 0.95, "compaction fraction {f}");
    }

    #[test]
    fn report_has_traffic_and_energy() {
        let g = Dataset::Cond.build(1.0 / 256.0, 3);
        let mut sys = System::baseline(SystemKind::Tx1);
        let (_, report) = run(&mut sys, &g, 0);
        assert!(report.energy.total_pj() > 0.0);
        assert!(report.dram_bytes() > 0);
        assert!(report.bandwidth_utilization() > 0.0);
        assert!(report.bandwidth_utilization() <= 1.0);
    }
}

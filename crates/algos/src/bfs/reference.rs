//! Exact host BFS.

use std::collections::VecDeque;

use scu_graph::Csr;

use super::UNREACHED;

/// Hop distances from `src` to every node ([`UNREACHED`] where no path
/// exists).
///
/// # Panics
///
/// Panics if `src` is out of range.
pub fn distances(g: &Csr, src: u32) -> Vec<u32> {
    assert!((src as usize) < g.num_nodes(), "source {src} out of range");
    let mut dist = vec![UNREACHED; g.num_nodes()];
    dist[src as usize] = 0;
    let mut q = VecDeque::new();
    q.push_back(src);
    while let Some(v) = q.pop_front() {
        let d = dist[v as usize];
        for &w in g.neighbors(v) {
            if dist[w as usize] == UNREACHED {
                dist[w as usize] = d + 1;
                q.push_back(w);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use scu_graph::GraphBuilder;

    fn line_graph(n: usize) -> Csr {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge(i as u32, i as u32 + 1, 1);
        }
        b.build()
    }

    #[test]
    fn line_graph_distances() {
        let g = line_graph(5);
        assert_eq!(distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(distances(&g, 2), vec![UNREACHED, UNREACHED, 0, 1, 2]);
    }

    #[test]
    fn figure2_distances() {
        // The paper's Figure 2c: BFS from A gives 0 1 1 1 2 2 2.
        let g = scu_graph::Csr::new(
            vec![0, 3, 5, 6, 8, 8, 8, 8],
            vec![1, 2, 3, 4, 5, 5, 2, 6],
            vec![2, 3, 1, 1, 1, 2, 1, 2],
        )
        .unwrap();
        assert_eq!(distances(&g, 0), vec![0, 1, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn disconnected_nodes_unreached() {
        let g = GraphBuilder::new(3).build();
        assert_eq!(distances(&g, 1), vec![UNREACHED, 0, UNREACHED]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_source_panics() {
        let g = line_graph(2);
        distances(&g, 5);
    }
}

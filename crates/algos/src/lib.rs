//! # scu-algos — BFS, SSSP and PageRank on the simulated GPU ± SCU
//!
//! Implements the three graph primitives of the paper's evaluation
//! (§2) in three forms each:
//!
//! * **reference** — plain host Rust (exact answers for validation);
//! * **GPU baseline** — the CUDA implementations the paper builds on
//!   (Merrill's BFS, Davidson's near-far SSSP, Geil's PR), expressed
//!   as kernels on the simulated GPU, *including* the scan/scatter
//!   stream-compaction kernels that motivate Figure 1;
//! * **SCU-offloaded** — the same algorithms with every compaction
//!   offloaded to the [`scu_core::ScuDevice`] per Algorithms 1–3, and
//!   optionally the *enhanced* filtering/grouping passes per
//!   Algorithms 4–5.
//!
//! Two extension primitives beyond the paper — [`cc`] (connected
//! components) and [`kcore`] (k-core peeling) — show the same five SCU
//! operations covering other frontier algorithms unchanged.
//!
//! [`system::System`] bundles the GPU engine, optional SCU, shared
//! memory system and energy model; [`report::RunReport`] collects the
//! per-phase time/energy/traffic split every figure of §6 is built
//! from; [`runner`] provides the one-call entry points used by the
//! benches and examples.
//!
//! ## Example
//!
//! ```
//! use scu_algos::runner::{run, Algorithm, Mode};
//! use scu_algos::system::SystemKind;
//! use scu_graph::Dataset;
//!
//! let g = Dataset::Cond.build(1.0 / 128.0, 7);
//! let base = run(Algorithm::Bfs, &g, SystemKind::Tx1, Mode::GpuBaseline);
//! let scu = run(Algorithm::Bfs, &g, SystemKind::Tx1, Mode::ScuEnhanced);
//! assert!(scu.report.total_time_ns() > 0.0 && base.report.total_time_ns() > 0.0);
//! // Same answers, different machines.
//! assert_eq!(base.values, scu.values);
//! ```

pub mod bfs;
pub mod cc;
pub mod cell;
pub mod device_graph;
pub mod experiment;
pub mod kcore;
pub mod kernels;
pub mod pagerank;
pub mod report;
pub mod runner;
pub mod sssp;
pub mod system;

pub use cell::{
    mount_graph_artifacts, shared_graph, Cell, CellResult, FUNCTIONAL_VERSION, MODEL_VERSION,
};
pub use experiment::{plan_cells, ExperimentConfig, ALL_MODES};
pub use report::{Phase, RunReport};
pub use runner::{run, Algorithm, Mode, RunOutput};
pub use scu_gpu::trace_cache;
pub use scu_gpu::SimThreads;
pub use scu_graph::artifact as graph_artifact;
pub use system::{System, SystemKind};
